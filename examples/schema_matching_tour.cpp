// A tour of the corpus-of-structures tools (§4): generate a corpus of
// perturbed university schemas, compute statistics over it, then drive
// the two advisors — DESIGN ADVISOR (schema retrieval, autocomplete,
// structural advice) and MATCHING ADVISOR (LSD-style multi-strategy
// matching scored against generator ground truth).

#include <cstdio>

#include "src/advisor/design_advisor.h"
#include "src/advisor/matcher.h"
#include "src/corpus/statistics.h"
#include "src/datagen/university.h"
#include "src/learn/multi_strategy.h"

using revere::advisor::ColumnsOf;
using revere::advisor::DesignAdvisor;
using revere::advisor::SchemaMatcher;
using revere::corpus::Corpus;
using revere::corpus::CorpusStatistics;
using revere::corpus::SchemaEntry;
using revere::datagen::UniversityGenerator;
using revere::datagen::UniversityGenOptions;

int main() {
  // 1. Build a 20-school corpus with realistic naming chaos.
  UniversityGenerator generator(UniversityGenOptions{.seed = 7});
  Corpus corpus;
  auto generated = generator.PopulateCorpus(&corpus, 20);
  std::printf("Corpus: %zu schemas, %zu known mappings\n\n", corpus.size(),
              corpus.known_mappings().size());

  // 2. Statistics over structures (§4.2).
  CorpusStatistics stats(corpus);
  std::printf("== Term usage ==\n");
  for (const char* term : {"title", "instructor", "course", "email"}) {
    auto usage = stats.Usage(term);
    std::printf(
        "  %-12s rel=%zu attr=%zu data=%zu (attr share %.0f%%)\n", term,
        usage.as_relation, usage.as_attribute, usage.as_data,
        100 * usage.AttributeShare());
  }
  std::printf("\n== Attributes co-occurring with 'title' ==\n");
  for (const auto& co : stats.CoOccurringAttributes("title", 5)) {
    std::printf("  %-12s P=%.2f\n", co.term.c_str(), co.score);
  }
  std::printf("\n== Distributional synonyms of 'instructor' ==\n");
  for (const auto& s : stats.SimilarAttributes("instructor", 5)) {
    std::printf("  %-12s cos=%.2f\n", s.term.c_str(), s.score);
  }
  std::printf("\n== Frequent partial structures (support >= 10) ==\n");
  size_t shown = 0;
  for (const auto& f : stats.FrequentAttributeSets(10, 3)) {
    if (f.attributes.size() < 2 || shown >= 5) continue;
    std::string set_str;
    for (const auto& a : f.attributes) set_str += a + " ";
    std::printf("  {%s} support=%zu\n", set_str.c_str(), f.support);
    ++shown;
  }

  // 3. DESIGN ADVISOR (§4.3.1): the DElearning coordinator starts a
  // schema and asks for help.
  DesignAdvisor advisor(&corpus);
  SchemaEntry partial{
      "draft", "university", {{"course", {"title", "instructor"}}}};
  std::printf("\n== DesignAdvisor: schemas similar to the draft ==\n");
  for (const auto& s : advisor.SuggestSchemas(partial, {}, 3)) {
    std::printf("  %-10s sim=%.2f fit=%.2f pref=%.2f (%zu matches)\n",
                s.schema_id.c_str(), s.similarity, s.fit, s.preference,
                s.correspondences.size());
  }
  std::printf("\n== DesignAdvisor: autocomplete for the course table ==\n");
  for (const auto& a :
       advisor.SuggestAttributes("course", {"title", "instructor"}, 5)) {
    std::printf("  add %-12s score=%.2f\n", a.term.c_str(), a.score);
  }
  std::printf("\n== DesignAdvisor: structural advice ==\n");
  SchemaEntry with_ta{"draft2",
                      "university",
                      {{"course", {"title", "instructor", "email"}}}};
  for (const auto& advice : advisor.AdviseStructure(with_ta)) {
    std::printf(
        "  '%s.%s' is usually modeled in a separate '%s' relation "
        "(confidence %.2f)\n",
        advice.relation.c_str(), advice.attribute.c_str(),
        advice.suggested_relation.c_str(), advice.confidence);
  }

  // 4. MATCHING ADVISOR (§4.3.2): train the LSD stack on half the
  // corpus (labels = canonical elements), match two held-out schemas,
  // and score against the generator's ground truth.
  std::vector<revere::learn::TrainingExample> training;
  for (size_t i = 0; i + 2 < generated.size(); ++i) {
    for (auto& column : ColumnsOf(corpus, generated[i].schema)) {
      auto gt = generated[i].ground_truth.find(column.QualifiedName());
      if (gt != generated[i].ground_truth.end()) {
        training.emplace_back(column, gt->second);
      }
    }
  }
  auto classifiers = revere::learn::MultiStrategyLearner::WithDefaultStack();
  if (!classifiers->Train(training).ok()) return 1;
  std::printf("\n== LSD stack learner weights ==\n");
  for (const auto& [name, weight] : classifiers->weights()) {
    std::printf("  %-12s %.2f\n", name.c_str(), weight);
  }

  const auto& left = generated[generated.size() - 2];
  const auto& right = generated[generated.size() - 1];
  revere::advisor::MatcherOptions mopts;
  mopts.corpus_classifiers = classifiers.get();
  SchemaMatcher matcher(mopts);
  auto matches =
      matcher.Match(ColumnsOf(corpus, left.schema),
                    ColumnsOf(corpus, right.schema));
  size_t correct = 0;
  for (const auto& m : matches) {
    auto ga = left.ground_truth.find(m.a);
    auto gb = right.ground_truth.find(m.b);
    bool ok = ga != left.ground_truth.end() &&
              gb != right.ground_truth.end() && ga->second == gb->second;
    if (ok) ++correct;
  }
  std::printf(
      "\n== MatchingAdvisor on held-out schemas '%s' vs '%s' ==\n",
      left.schema.id.c_str(), right.schema.id.c_str());
  for (const auto& m : matches) {
    std::printf("  %-24s <-> %-24s %.2f\n", m.a.c_str(), m.b.c_str(),
                m.score);
  }
  std::printf("match precision: %.0f%% (%zu/%zu)\n",
              matches.empty() ? 0.0
                              : 100.0 * static_cast<double>(correct) /
                                    static_cast<double>(matches.size()),
              correct, matches.size());
  return 0;
}
