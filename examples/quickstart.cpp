// Quickstart: cross the structure chasm in ~60 lines.
//
// An instructor has a plain HTML course page. We (1) annotate it with
// the MANGROVE tool, (2) publish it — the annotation repository updates
// instantly, (3) watch an instant-gratification application pick it up,
// and (4) run a structured search over what used to be free text.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "src/core/revere.h"
#include "src/mangrove/annotator.h"
#include "src/mangrove/apps.h"

using revere::core::Revere;
using revere::mangrove::AnnotationSearch;
using revere::mangrove::ConceptAnnotation;
using revere::mangrove::ConflictResolution;
using revere::mangrove::CourseCalendar;

int main() {
  auto uw = Revere::ForUniversity("uw");

  // The page as the instructor wrote it — pure U-WORLD.
  const std::string page =
      "<html><body>"
      "<h1>CSE 544: Principles of Database Systems</h1>"
      "<p>Taught by Alon Halevy. Meets MWF 10:30 in MGH 241.</p>"
      "</body></html>";

  // Highlight-and-tag, exactly like the GUI tool (§2.1).
  ConceptAnnotation request;
  request.concept_tag = "course";
  request.id = "cse544";
  request.region_start = "CSE 544";
  request.region_end = "MGH 241";
  request.fields = {{"number", "CSE 544"},
                    {"title", "Principles of Database Systems"},
                    {"instructor", "Alon Halevy"},
                    {"time", "MWF 10:30"},
                    {"room", "MGH 241"}};
  auto annotated = uw->annotator().AnnotateConcept(page, request);
  if (!annotated.ok()) {
    std::printf("annotation failed: %s\n",
                annotated.status().ToString().c_str());
    return 1;
  }
  std::printf("Annotated page:\n%s\n\n", annotated.value().c_str());

  // Publish: the repository updates the moment we do (§2.2).
  auto receipt = uw->PublishPage("http://uw.edu/cse544", annotated.value());
  if (!receipt.ok()) return 1;
  std::printf("Published %zu triples (instantly visible).\n\n",
              receipt.value().triples_added);

  // Instant gratification: the department calendar already lists it.
  CourseCalendar calendar(&uw->repository(),
                          {ConflictResolution::kAny, ""});
  for (const auto& entry : calendar.Refresh()) {
    std::printf("CALENDAR  %-28s %-12s %-10s %s\n", entry.title.c_str(),
                entry.time.c_str(), entry.room.c_str(),
                entry.instructor.c_str());
  }

  // Structured search over the annotations.
  AnnotationSearch search(&uw->repository());
  for (const auto& hit : search.Search("database halevy")) {
    std::printf("SEARCH    %s (score %.2f)\n", hit.subject.c_str(),
                hit.score);
  }

  // Graceful degradation (§4.4): export the data to the PDMS, then
  // query it with the WRONG vocabulary — the QueryAssistant repairs it.
  if (!uw->ExportConceptToPeer("course", {ConflictResolution::kAny, ""})
           .ok()) {
    return 1;
  }
  revere::advisor::QuerySuggestion used;
  auto rows = uw->QueryFlexibly(
      "q(S, T) :- uw:classes(S, T, N, I, M, R, B, D)", &used);
  if (rows.ok()) {
    std::printf("FLEXIBLE  \"uw:classes\" repaired via [%s]; %zu rows\n",
                used.repairs.empty() ? "" : used.repairs[0].c_str(),
                rows.value().size());
  }
  return 0;
}
