// A department runs MANGROVE (§2): faculty annotate their own pages,
// publishing feeds the shared repository, applications apply their own
// integrity policies to the (deliberately dirty) data, and a proactive
// checker finds conflicts to report back to authors.

#include <cstdio>

#include "src/core/revere.h"
#include "src/datagen/university.h"
#include "src/mangrove/apps.h"
#include "src/mangrove/cleaning.h"

using revere::Rng;
using revere::core::Revere;
using revere::mangrove::CleaningPolicy;
using revere::mangrove::ConflictResolution;
using revere::mangrove::CourseCalendar;
using revere::mangrove::FindInconsistencies;
using revere::mangrove::PublicationDatabase;
using revere::mangrove::WhosWho;

int main() {
  auto dept = Revere::ForUniversity("uw-cse");

  // Faculty publish their annotated course pages.
  Rng rng(42);
  for (const auto& course : revere::datagen::GenerateCourses(5, &rng)) {
    auto receipt =
        dept->PublishPage("http://cs.example.edu/" + course.id,
                          revere::datagen::RenderAnnotatedCoursePage(course));
    if (!receipt.ok()) return 1;
  }

  // Personal pages — including a malicious page that publishes a wrong
  // phone number for Alon (anyone can publish anything, §2.3).
  (void)dept->PublishPage(
      "http://cs.example.edu/alon",
      "<body><span m=\"person\" m-id=\"alon\">"
      "<span m=\"name\">Alon Halevy</span>"
      "<span m=\"phone\">206-543-1695</span>"
      "<span m=\"office\">MGH 591</span></span></body>");
  (void)dept->PublishPage(
      "http://cs.example.edu/directory",
      "<body><span m=\"person\" m-id=\"alon\">"
      "<span m=\"phone\">206-543-1695</span></span></body>");
  (void)dept->PublishPage(
      "http://evil.example.com/troll",
      "<body><span m=\"person\" m-id=\"alon\">"
      "<span m=\"phone\">555-0000</span></span></body>");
  (void)dept->PublishPage(
      "http://cs.example.edu/oren",
      "<body><span m=\"person\" m-id=\"oren\">"
      "<span m=\"name\">Oren Etzioni</span>"
      "<span m=\"publication\" m-id=\"p-chasm\">"
      "<span m=\"title\">Crossing the Structure Chasm</span>"
      "<span m=\"author\">Halevy, Etzioni, Doan, Ives, McDowell, "
      "Tatarinov, Madhavan</span>"
      "<span m=\"year\">2003</span><span m=\"venue\">CIDR</span>"
      "</span></span></body>");

  std::printf("Repository holds %zu triples from %s\n\n",
              dept->repository().size(), "7 published pages");

  // The course calendar tolerates dirt (kAny).
  CourseCalendar calendar(&dept->repository(),
                          {ConflictResolution::kAny, ""});
  std::printf("== Department calendar ==\n");
  for (const auto& e : calendar.Refresh()) {
    std::printf("  %-36s %-10s %s\n", e.title.c_str(), e.time.c_str(),
                e.room.c_str());
  }

  // The phone directory must be right: it trusts departmental pages
  // only, so the troll's 555-0000 never shows (§2.3's "extract a phone
  // number from the faculty's web space, rather than anywhere on the
  // web").
  std::printf("\n== Who's Who (trusted-source policy) ==\n");
  WhosWho who(&dept->repository(),
              {ConflictResolution::kTrustedSourceOnly,
               "http://cs.example.edu/"});
  for (const auto& e : who.Refresh()) {
    std::printf("  %-16s phone=%-14s office=%s\n", e.name.c_str(),
                e.phone.c_str(), e.office.c_str());
  }

  // Same data, naive policy — the troll can win here, which is exactly
  // why policy is the application's choice.
  WhosWho naive(&dept->repository(), {ConflictResolution::kAny, ""});
  for (const auto& e : naive.Refresh()) {
    if (e.person == "alon") {
      std::printf("  (kAny policy would report alon's phone as %s)\n",
                  e.phone.c_str());
    }
  }

  std::printf("\n== Publications ==\n");
  PublicationDatabase pubs(&dept->repository());
  for (const auto& p : pubs.Refresh()) {
    std::printf("  [%s] %s (%s)\n", p.year.c_str(), p.title.c_str(),
                p.venue.c_str());
  }

  // Proactive inconsistency detection for author notification.
  std::printf("\n== Inconsistency report ==\n");
  for (const auto& problem :
       FindInconsistencies(dept->repository(), dept->schema())) {
    std::printf("  %s.%s has %zu conflicting values from %zu sources\n",
                problem.subject.c_str(), problem.predicate.c_str(),
                problem.values.size(), problem.sources.size());
    for (const auto& src : problem.sources) {
      std::printf("    notify author of %s\n", src.c_str());
    }
  }
  return 0;
}
