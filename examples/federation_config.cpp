// A data-sharing federation bootstrapped from a version-controlled
// config file: peers, stored relations, data, and GLAV mappings all in
// one text artifact. Demonstrates LoadNetworkConfig/SaveNetworkConfig
// and query answering with vocabulary repair on the loaded network.

#include <cstdio>

#include "src/advisor/query_assistant.h"
#include "src/piazza/network_config.h"
#include "src/piazza/pdms.h"
#include "src/query/cq.h"
#include "src/text/synonyms.h"

using revere::piazza::LoadNetworkConfig;
using revere::piazza::PdmsNetwork;
using revere::piazza::SaveNetworkConfig;
using revere::query::ConjunctiveQuery;

constexpr char kFederation[] = R"(# DElearning federation, rev 3
peer uw
peer mit
peer roma

stored uw course id title instructor
stored mit subject id title instructor
stored roma corso id title instructor

row uw course cse544 | Principles of DBMS | Alon Halevy
row uw course cse403 | Software Engineering | Oren Etzioni
row mit subject 6.830 | Database Systems | Sam Madden
row mit subject 6.033 | Computer Systems | Frans Kaashoek
row roma corso st101 | Storia Antica | Anna Bianchi

mapping uw-mit uw mit bidirectional
  m(I, T, P) :- uw:course(I, T, P) => m(I, T, P) :- mit:subject(I, T, P)
mapping mit-roma mit roma bidirectional
  m(I, T, P) :- mit:subject(I, T, P) => m(I, T, P) :- roma:corso(I, T, P)
)";

int main() {
  PdmsNetwork net;
  auto status = LoadNetworkConfig(kFederation, &net);
  if (!status.ok()) {
    std::printf("config error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Loaded federation: %zu peers, %zu mappings\n\n",
              net.peer_count(), net.mappings().size());

  // Every peer sees the federation-wide inventory through its own
  // vocabulary.
  for (const char* probe :
       {"q(I, T) :- uw:course(I, T, P)", "q(I, T) :- mit:subject(I, T, P)",
        "q(I, T) :- roma:corso(I, T, P)"}) {
    auto q = ConjunctiveQuery::Parse(probe);
    if (!q.ok()) return 1;
    auto rows = net.Answer(q.value());
    if (!rows.ok()) return 1;
    std::printf("%-36s -> %zu courses\n", probe, rows.value().size());
  }

  // A Roman student types the Italian word with a typo-ish plural; the
  // assistant repairs it against the stored vocabulary.
  revere::text::SynonymTable table =
      revere::text::SynonymTable::UniversityDomainDefaults();
  revere::advisor::QueryAssistantOptions opts;
  opts.name_options.use_synonyms = true;
  opts.name_options.synonyms = &table;
  revere::advisor::QueryAssistant assistant(&net.storage(), opts);
  auto user_q =
      ConjunctiveQuery::Parse("q(T) :- roma:corsi(I, T, P)");  // "corsi"!
  if (user_q.ok()) {
    revere::advisor::QuerySuggestion used;
    auto rows = assistant.AnswerFlexibly(user_q.value(), &used);
    if (rows.ok()) {
      std::printf("\n\"roma:corsi\" repaired: %s (%zu local rows)\n",
                  used.repairs.empty() ? "-" : used.repairs[0].c_str(),
                  rows.value().size());
    }
  }

  // Round-trip the deployment back out (what an admin would commit).
  std::printf("\n--- SaveNetworkConfig ---\n%s",
              SaveNetworkConfig(net).c_str());
  return 0;
}
