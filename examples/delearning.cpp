// The paper's running example (Example 1.1/3.1): DElearning, an online
// education broker, weaves distance-learning courses from universities
// around the world into custom programs.
//
// We build the Figure-2 six-university PDMS (Stanford, Oxford, MIT,
// Tsinghua, Roma, Berkeley), each with its own vocabulary and local
// course data, connected only by *local* pairwise mappings — no global
// mediated schema anywhere. A student then shops for courses through
// their home university's schema and transparently sees the whole
// world's inventory.

#include <cstdio>
#include <map>

#include "src/datagen/topology.h"
#include "src/piazza/pdms.h"
#include "src/piazza/xml_mapping.h"
#include "src/query/cq.h"
#include "src/xml/parser.h"

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::Topology;
using revere::piazza::ExecutionStats;
using revere::piazza::PdmsNetwork;
using revere::piazza::XmlMapping;
using revere::query::ConjunctiveQuery;

int main() {
  PdmsNetwork net;
  PdmsGenOptions options;
  options.topology = Topology::kFigure2;
  options.rows_per_peer = 12;
  options.seed = 2003;  // CIDR 2003
  auto report = BuildUniversityPdms(&net, options);
  if (!report.ok()) {
    std::printf("network build failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  std::printf("Figure-2 PDMS: %zu peers, %zu mappings, %zu courses total\n\n",
              report.value().peer_names.size(),
              report.value().mapping_count, report.value().total_rows);

  // Every student queries in their LOCAL vocabulary; the PDMS chases the
  // transitive closure of mappings (§3).
  for (size_t i = 0; i < report.value().peer_names.size(); ++i) {
    ExecutionStats stats;
    auto rows = net.Answer(AllCoursesQuery(report.value(), i), {}, &stats);
    if (!rows.ok()) return 1;
    std::printf(
        "%-10s sees %3zu courses | rewritings=%zu peers_contacted=%zu "
        "simulated_net=%.1fms\n",
        report.value().peer_names[i].c_str(), rows.value().size(),
        stats.rewritings_evaluated, stats.peers_contacted,
        stats.simulated_network_ms);
  }

  // A Tsinghua student hunting for a database course anywhere on earth,
  // asked in Tsinghua's own vocabulary (relation name differs per peer).
  std::string rel = revere::piazza::QualifiedName(
      report.value().peer_names[3], report.value().relation_names[3]);
  auto query = ConjunctiveQuery::Parse(
      "q(I, P) :- " + rel + "(I, \"Principles of Database Systems\", P)");
  if (!query.ok()) return 1;
  auto rows = net.Answer(query.value());
  if (!rows.ok()) return 1;
  std::printf("\nDatabase courses visible from Tsinghua: %zu\n",
              rows.value().size());
  for (const auto& row : rows.value()) {
    std::printf("  %-16s taught by %s\n", row[0].as_string().c_str(),
                row[1].as_string().c_str());
  }

  // Bonus: the XML face of the same idea — the paper's Figure 4 mapping
  // translating Berkeley's course feed into MIT's catalog schema.
  const char* berkeley_feed =
      "<schedule><college><name>L&amp;S</name>"
      "<dept><name>History</name>"
      "<course><title>Ancient History</title><size>120</size></course>"
      "</dept></college></schedule>";
  auto doc = revere::xml::ParseXml(berkeley_feed);
  auto mapping = XmlMapping::Parse(
      "<catalog><course> {$c = document(\"Berkeley.xml\")/schedule/college"
      "/dept}\n<name> $c/name/text() </name>"
      "<subject> {$s = $c/course}\n<title> $s/title/text() </title>"
      "<enrollment> $s/size/text() </enrollment></subject>"
      "</course></catalog>");
  if (doc.ok() && mapping.ok()) {
    auto translated =
        mapping.value().Translate({{"Berkeley.xml", doc->get()}});
    if (translated.ok()) {
      std::printf("\nBerkeley feed through the Figure-4 mapping:\n%s\n",
                  revere::xml::Serialize(*translated.value(), true).c_str());
    }
  }
  return 0;
}
