file(REMOVE_RECURSE
  "CMakeFiles/piazza_test.dir/piazza_test.cc.o"
  "CMakeFiles/piazza_test.dir/piazza_test.cc.o.d"
  "piazza_test"
  "piazza_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piazza_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
