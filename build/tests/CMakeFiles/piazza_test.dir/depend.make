# Empty dependencies file for piazza_test.
# This may be replaced when dependencies are built.
