# Empty compiler generated dependencies file for mangrove_test.
# This may be replaced when dependencies are built.
