file(REMOVE_RECURSE
  "CMakeFiles/mangrove_test.dir/mangrove_test.cc.o"
  "CMakeFiles/mangrove_test.dir/mangrove_test.cc.o.d"
  "mangrove_test"
  "mangrove_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mangrove_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
