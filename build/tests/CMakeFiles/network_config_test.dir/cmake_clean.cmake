file(REMOVE_RECURSE
  "CMakeFiles/network_config_test.dir/network_config_test.cc.o"
  "CMakeFiles/network_config_test.dir/network_config_test.cc.o.d"
  "network_config_test"
  "network_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
