# Empty compiler generated dependencies file for assistant_test.
# This may be replaced when dependencies are built.
