file(REMOVE_RECURSE
  "CMakeFiles/assistant_test.dir/assistant_test.cc.o"
  "CMakeFiles/assistant_test.dir/assistant_test.cc.o.d"
  "assistant_test"
  "assistant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assistant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
