file(REMOVE_RECURSE
  "librevere.a"
)
