
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/design_advisor.cc" "src/CMakeFiles/revere.dir/advisor/design_advisor.cc.o" "gcc" "src/CMakeFiles/revere.dir/advisor/design_advisor.cc.o.d"
  "/root/repo/src/advisor/mapping_synthesis.cc" "src/CMakeFiles/revere.dir/advisor/mapping_synthesis.cc.o" "gcc" "src/CMakeFiles/revere.dir/advisor/mapping_synthesis.cc.o.d"
  "/root/repo/src/advisor/matcher.cc" "src/CMakeFiles/revere.dir/advisor/matcher.cc.o" "gcc" "src/CMakeFiles/revere.dir/advisor/matcher.cc.o.d"
  "/root/repo/src/advisor/query_assistant.cc" "src/CMakeFiles/revere.dir/advisor/query_assistant.cc.o" "gcc" "src/CMakeFiles/revere.dir/advisor/query_assistant.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/revere.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/revere.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/revere.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/revere.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/revere.dir/common/status.cc.o" "gcc" "src/CMakeFiles/revere.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/revere.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/revere.dir/common/strings.cc.o.d"
  "/root/repo/src/core/revere.cc" "src/CMakeFiles/revere.dir/core/revere.cc.o" "gcc" "src/CMakeFiles/revere.dir/core/revere.cc.o.d"
  "/root/repo/src/corpus/corpus.cc" "src/CMakeFiles/revere.dir/corpus/corpus.cc.o" "gcc" "src/CMakeFiles/revere.dir/corpus/corpus.cc.o.d"
  "/root/repo/src/corpus/serialization.cc" "src/CMakeFiles/revere.dir/corpus/serialization.cc.o" "gcc" "src/CMakeFiles/revere.dir/corpus/serialization.cc.o.d"
  "/root/repo/src/corpus/statistics.cc" "src/CMakeFiles/revere.dir/corpus/statistics.cc.o" "gcc" "src/CMakeFiles/revere.dir/corpus/statistics.cc.o.d"
  "/root/repo/src/datagen/topology.cc" "src/CMakeFiles/revere.dir/datagen/topology.cc.o" "gcc" "src/CMakeFiles/revere.dir/datagen/topology.cc.o.d"
  "/root/repo/src/datagen/university.cc" "src/CMakeFiles/revere.dir/datagen/university.cc.o" "gcc" "src/CMakeFiles/revere.dir/datagen/university.cc.o.d"
  "/root/repo/src/html/annotation.cc" "src/CMakeFiles/revere.dir/html/annotation.cc.o" "gcc" "src/CMakeFiles/revere.dir/html/annotation.cc.o.d"
  "/root/repo/src/html/parser.cc" "src/CMakeFiles/revere.dir/html/parser.cc.o" "gcc" "src/CMakeFiles/revere.dir/html/parser.cc.o.d"
  "/root/repo/src/learn/context_learner.cc" "src/CMakeFiles/revere.dir/learn/context_learner.cc.o" "gcc" "src/CMakeFiles/revere.dir/learn/context_learner.cc.o.d"
  "/root/repo/src/learn/format_learner.cc" "src/CMakeFiles/revere.dir/learn/format_learner.cc.o" "gcc" "src/CMakeFiles/revere.dir/learn/format_learner.cc.o.d"
  "/root/repo/src/learn/learner.cc" "src/CMakeFiles/revere.dir/learn/learner.cc.o" "gcc" "src/CMakeFiles/revere.dir/learn/learner.cc.o.d"
  "/root/repo/src/learn/multi_strategy.cc" "src/CMakeFiles/revere.dir/learn/multi_strategy.cc.o" "gcc" "src/CMakeFiles/revere.dir/learn/multi_strategy.cc.o.d"
  "/root/repo/src/learn/naive_bayes.cc" "src/CMakeFiles/revere.dir/learn/naive_bayes.cc.o" "gcc" "src/CMakeFiles/revere.dir/learn/naive_bayes.cc.o.d"
  "/root/repo/src/learn/name_learner.cc" "src/CMakeFiles/revere.dir/learn/name_learner.cc.o" "gcc" "src/CMakeFiles/revere.dir/learn/name_learner.cc.o.d"
  "/root/repo/src/mangrove/annotator.cc" "src/CMakeFiles/revere.dir/mangrove/annotator.cc.o" "gcc" "src/CMakeFiles/revere.dir/mangrove/annotator.cc.o.d"
  "/root/repo/src/mangrove/apps.cc" "src/CMakeFiles/revere.dir/mangrove/apps.cc.o" "gcc" "src/CMakeFiles/revere.dir/mangrove/apps.cc.o.d"
  "/root/repo/src/mangrove/cleaning.cc" "src/CMakeFiles/revere.dir/mangrove/cleaning.cc.o" "gcc" "src/CMakeFiles/revere.dir/mangrove/cleaning.cc.o.d"
  "/root/repo/src/mangrove/export.cc" "src/CMakeFiles/revere.dir/mangrove/export.cc.o" "gcc" "src/CMakeFiles/revere.dir/mangrove/export.cc.o.d"
  "/root/repo/src/mangrove/publisher.cc" "src/CMakeFiles/revere.dir/mangrove/publisher.cc.o" "gcc" "src/CMakeFiles/revere.dir/mangrove/publisher.cc.o.d"
  "/root/repo/src/mangrove/schema.cc" "src/CMakeFiles/revere.dir/mangrove/schema.cc.o" "gcc" "src/CMakeFiles/revere.dir/mangrove/schema.cc.o.d"
  "/root/repo/src/piazza/network_config.cc" "src/CMakeFiles/revere.dir/piazza/network_config.cc.o" "gcc" "src/CMakeFiles/revere.dir/piazza/network_config.cc.o.d"
  "/root/repo/src/piazza/pdms.cc" "src/CMakeFiles/revere.dir/piazza/pdms.cc.o" "gcc" "src/CMakeFiles/revere.dir/piazza/pdms.cc.o.d"
  "/root/repo/src/piazza/peer.cc" "src/CMakeFiles/revere.dir/piazza/peer.cc.o" "gcc" "src/CMakeFiles/revere.dir/piazza/peer.cc.o.d"
  "/root/repo/src/piazza/placement.cc" "src/CMakeFiles/revere.dir/piazza/placement.cc.o" "gcc" "src/CMakeFiles/revere.dir/piazza/placement.cc.o.d"
  "/root/repo/src/piazza/views.cc" "src/CMakeFiles/revere.dir/piazza/views.cc.o" "gcc" "src/CMakeFiles/revere.dir/piazza/views.cc.o.d"
  "/root/repo/src/piazza/xml_mapping.cc" "src/CMakeFiles/revere.dir/piazza/xml_mapping.cc.o" "gcc" "src/CMakeFiles/revere.dir/piazza/xml_mapping.cc.o.d"
  "/root/repo/src/query/containment.cc" "src/CMakeFiles/revere.dir/query/containment.cc.o" "gcc" "src/CMakeFiles/revere.dir/query/containment.cc.o.d"
  "/root/repo/src/query/cq.cc" "src/CMakeFiles/revere.dir/query/cq.cc.o" "gcc" "src/CMakeFiles/revere.dir/query/cq.cc.o.d"
  "/root/repo/src/query/evaluate.cc" "src/CMakeFiles/revere.dir/query/evaluate.cc.o" "gcc" "src/CMakeFiles/revere.dir/query/evaluate.cc.o.d"
  "/root/repo/src/query/glav.cc" "src/CMakeFiles/revere.dir/query/glav.cc.o" "gcc" "src/CMakeFiles/revere.dir/query/glav.cc.o.d"
  "/root/repo/src/query/rewrite.cc" "src/CMakeFiles/revere.dir/query/rewrite.cc.o" "gcc" "src/CMakeFiles/revere.dir/query/rewrite.cc.o.d"
  "/root/repo/src/query/unfold.cc" "src/CMakeFiles/revere.dir/query/unfold.cc.o" "gcc" "src/CMakeFiles/revere.dir/query/unfold.cc.o.d"
  "/root/repo/src/rdf/graph_query.cc" "src/CMakeFiles/revere.dir/rdf/graph_query.cc.o" "gcc" "src/CMakeFiles/revere.dir/rdf/graph_query.cc.o.d"
  "/root/repo/src/rdf/triple_store.cc" "src/CMakeFiles/revere.dir/rdf/triple_store.cc.o" "gcc" "src/CMakeFiles/revere.dir/rdf/triple_store.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/revere.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/revere.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/executor.cc" "src/CMakeFiles/revere.dir/storage/executor.cc.o" "gcc" "src/CMakeFiles/revere.dir/storage/executor.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/revere.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/revere.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/revere.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/revere.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/revere.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/revere.dir/storage/value.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/CMakeFiles/revere.dir/text/similarity.cc.o" "gcc" "src/CMakeFiles/revere.dir/text/similarity.cc.o.d"
  "/root/repo/src/text/stemmer.cc" "src/CMakeFiles/revere.dir/text/stemmer.cc.o" "gcc" "src/CMakeFiles/revere.dir/text/stemmer.cc.o.d"
  "/root/repo/src/text/synonyms.cc" "src/CMakeFiles/revere.dir/text/synonyms.cc.o" "gcc" "src/CMakeFiles/revere.dir/text/synonyms.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/revere.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/revere.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/revere.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/revere.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/xml/dtd.cc" "src/CMakeFiles/revere.dir/xml/dtd.cc.o" "gcc" "src/CMakeFiles/revere.dir/xml/dtd.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/revere.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/revere.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/revere.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/revere.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/path.cc" "src/CMakeFiles/revere.dir/xml/path.cc.o" "gcc" "src/CMakeFiles/revere.dir/xml/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
