# Empty compiler generated dependencies file for revere.
# This may be replaced when dependencies are built.
