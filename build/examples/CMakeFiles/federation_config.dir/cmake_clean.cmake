file(REMOVE_RECURSE
  "CMakeFiles/federation_config.dir/federation_config.cpp.o"
  "CMakeFiles/federation_config.dir/federation_config.cpp.o.d"
  "federation_config"
  "federation_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
