# Empty compiler generated dependencies file for federation_config.
# This may be replaced when dependencies are built.
