file(REMOVE_RECURSE
  "CMakeFiles/delearning.dir/delearning.cpp.o"
  "CMakeFiles/delearning.dir/delearning.cpp.o.d"
  "delearning"
  "delearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
