# Empty dependencies file for delearning.
# This may be replaced when dependencies are built.
