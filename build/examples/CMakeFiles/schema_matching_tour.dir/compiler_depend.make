# Empty compiler generated dependencies file for schema_matching_tour.
# This may be replaced when dependencies are built.
