file(REMOVE_RECURSE
  "CMakeFiles/schema_matching_tour.dir/schema_matching_tour.cpp.o"
  "CMakeFiles/schema_matching_tour.dir/schema_matching_tour.cpp.o.d"
  "schema_matching_tour"
  "schema_matching_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_matching_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
