file(REMOVE_RECURSE
  "CMakeFiles/bench_view_placement.dir/bench_view_placement.cc.o"
  "CMakeFiles/bench_view_placement.dir/bench_view_placement.cc.o.d"
  "bench_view_placement"
  "bench_view_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
