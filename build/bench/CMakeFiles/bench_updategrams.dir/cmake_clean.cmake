file(REMOVE_RECURSE
  "CMakeFiles/bench_updategrams.dir/bench_updategrams.cc.o"
  "CMakeFiles/bench_updategrams.dir/bench_updategrams.cc.o.d"
  "bench_updategrams"
  "bench_updategrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updategrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
