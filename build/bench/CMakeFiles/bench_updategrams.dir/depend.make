# Empty dependencies file for bench_updategrams.
# This may be replaced when dependencies are built.
