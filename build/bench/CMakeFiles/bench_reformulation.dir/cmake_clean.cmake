file(REMOVE_RECURSE
  "CMakeFiles/bench_reformulation.dir/bench_reformulation.cc.o"
  "CMakeFiles/bench_reformulation.dir/bench_reformulation.cc.o.d"
  "bench_reformulation"
  "bench_reformulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reformulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
