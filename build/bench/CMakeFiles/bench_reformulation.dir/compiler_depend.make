# Empty compiler generated dependencies file for bench_reformulation.
# This may be replaced when dependencies are built.
