file(REMOVE_RECURSE
  "CMakeFiles/bench_lsd_accuracy.dir/bench_lsd_accuracy.cc.o"
  "CMakeFiles/bench_lsd_accuracy.dir/bench_lsd_accuracy.cc.o.d"
  "bench_lsd_accuracy"
  "bench_lsd_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsd_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
