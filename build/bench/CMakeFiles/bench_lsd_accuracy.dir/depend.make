# Empty dependencies file for bench_lsd_accuracy.
# This may be replaced when dependencies are built.
