file(REMOVE_RECURSE
  "CMakeFiles/bench_query_rewriting.dir/bench_query_rewriting.cc.o"
  "CMakeFiles/bench_query_rewriting.dir/bench_query_rewriting.cc.o.d"
  "bench_query_rewriting"
  "bench_query_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
