file(REMOVE_RECURSE
  "CMakeFiles/bench_query_assistant.dir/bench_query_assistant.cc.o"
  "CMakeFiles/bench_query_assistant.dir/bench_query_assistant.cc.o.d"
  "bench_query_assistant"
  "bench_query_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
