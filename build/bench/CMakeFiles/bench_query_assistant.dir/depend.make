# Empty dependencies file for bench_query_assistant.
# This may be replaced when dependencies are built.
