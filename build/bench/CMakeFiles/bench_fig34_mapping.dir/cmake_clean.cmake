file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34_mapping.dir/bench_fig34_mapping.cc.o"
  "CMakeFiles/bench_fig34_mapping.dir/bench_fig34_mapping.cc.o.d"
  "bench_fig34_mapping"
  "bench_fig34_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
