# Empty dependencies file for bench_fig34_mapping.
# This may be replaced when dependencies are built.
