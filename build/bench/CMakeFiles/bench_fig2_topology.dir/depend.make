# Empty dependencies file for bench_fig2_topology.
# This may be replaced when dependencies are built.
