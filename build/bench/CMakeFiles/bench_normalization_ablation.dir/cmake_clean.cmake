file(REMOVE_RECURSE
  "CMakeFiles/bench_normalization_ablation.dir/bench_normalization_ablation.cc.o"
  "CMakeFiles/bench_normalization_ablation.dir/bench_normalization_ablation.cc.o.d"
  "bench_normalization_ablation"
  "bench_normalization_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_normalization_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
