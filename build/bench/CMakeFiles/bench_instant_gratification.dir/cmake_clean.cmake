file(REMOVE_RECURSE
  "CMakeFiles/bench_instant_gratification.dir/bench_instant_gratification.cc.o"
  "CMakeFiles/bench_instant_gratification.dir/bench_instant_gratification.cc.o.d"
  "bench_instant_gratification"
  "bench_instant_gratification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instant_gratification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
