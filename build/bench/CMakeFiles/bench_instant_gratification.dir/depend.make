# Empty dependencies file for bench_instant_gratification.
# This may be replaced when dependencies are built.
