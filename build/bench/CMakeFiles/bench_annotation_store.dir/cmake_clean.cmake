file(REMOVE_RECURSE
  "CMakeFiles/bench_annotation_store.dir/bench_annotation_store.cc.o"
  "CMakeFiles/bench_annotation_store.dir/bench_annotation_store.cc.o.d"
  "bench_annotation_store"
  "bench_annotation_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotation_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
