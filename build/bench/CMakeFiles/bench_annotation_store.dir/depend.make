# Empty dependencies file for bench_annotation_store.
# This may be replaced when dependencies are built.
