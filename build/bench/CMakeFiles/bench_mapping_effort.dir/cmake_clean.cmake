file(REMOVE_RECURSE
  "CMakeFiles/bench_mapping_effort.dir/bench_mapping_effort.cc.o"
  "CMakeFiles/bench_mapping_effort.dir/bench_mapping_effort.cc.o.d"
  "bench_mapping_effort"
  "bench_mapping_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapping_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
