# Empty compiler generated dependencies file for bench_mapping_effort.
# This may be replaced when dependencies are built.
