// Experiment C6: the annotation repository versus querying HTML at
// query time (§2.2: "A system that would access the HTML content at
// query time would be impractical ... the annotations on web pages are
// stored in a repository for querying and access by applications").
//
// Compares a structured query ("instructor of a specific course") run
// (a) against the indexed triple repository and (b) by parsing and
// extracting every page at query time — the gateway/wrapper design the
// paper argues against. Paper-predicted shape: the repository answers
// in ~constant time; scan-at-query-time grows linearly with the site
// and is orders of magnitude slower already at modest sizes.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/datagen/university.h"
#include "src/html/annotation.h"
#include "src/html/parser.h"
#include "src/mangrove/publisher.h"
#include "src/mangrove/schema.h"
#include "src/rdf/graph_query.h"
#include "src/rdf/triple_store.h"

namespace {

using revere::Rng;
using revere::datagen::GenerateCourses;
using revere::datagen::RenderAnnotatedCoursePage;
using revere::mangrove::MangroveSchema;
using revere::mangrove::Publisher;
using revere::rdf::GraphQuery;
using revere::rdf::TripleStore;

struct Site {
  explicit Site(size_t pages) {
    Rng rng(11);
    auto courses = GenerateCourses(pages, &rng);
    target_id = courses[pages / 2].id;
    for (auto& c : courses) {
      html.push_back(RenderAnnotatedCoursePage(c));
    }
  }
  std::vector<std::string> html;
  std::string target_id;
};

void BM_RepositoryQuery(benchmark::State& state) {
  Site site(static_cast<size_t>(state.range(0)));
  MangroveSchema schema = MangroveSchema::UniversityDefaults();
  TripleStore store;
  Publisher publisher(&schema, &store);
  for (size_t i = 0; i < site.html.size(); ++i) {
    (void)publisher.Publish("http://u/" + std::to_string(i), site.html[i]);
  }
  size_t hits = 0;
  for (auto _ : state) {
    GraphQuery q;
    q.Where(site.target_id, "instructor", "?who");
    hits = q.Run(store).size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["pages"] = static_cast<double>(site.html.size());
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["stored_triples"] = static_cast<double>(store.size());
}
BENCHMARK(BM_RepositoryQuery)->Arg(10)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

// The gateway design: no repository; each query parses every page and
// inspects its annotations.
void BM_ScanHtmlAtQueryTime(benchmark::State& state) {
  Site site(static_cast<size_t>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const auto& page : site.html) {
      auto doc = revere::html::ParseHtml(page);
      if (!doc.ok()) continue;
      for (const auto& region :
           revere::html::FindAnnotations(*doc.value())) {
        if (region.tag == "course" && region.id == site.target_id) {
          // Found the course block; dig out the instructor span.
          for (const auto& inner :
               revere::html::FindAnnotations(*region.node)) {
            if (inner.tag == "instructor") ++hits;
          }
        }
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["pages"] = static_cast<double>(site.html.size());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_ScanHtmlAtQueryTime)->Arg(10)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

// Multi-pattern join query against the repository (the kind the
// department schedule app runs).
void BM_RepositoryJoinQuery(benchmark::State& state) {
  Site site(static_cast<size_t>(state.range(0)));
  MangroveSchema schema = MangroveSchema::UniversityDefaults();
  TripleStore store;
  Publisher publisher(&schema, &store);
  for (size_t i = 0; i < site.html.size(); ++i) {
    (void)publisher.Publish("http://u/" + std::to_string(i), site.html[i]);
  }
  size_t rows = 0;
  for (auto _ : state) {
    GraphQuery q;
    q.Where("?c", "rdf:type", "course")
        .Where("?c", "title", "?t")
        .Where("?c", "instructor", "?i");
    rows = q.Run(store).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["pages"] = static_cast<double>(site.html.size());
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_RepositoryJoinQuery)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
