// Fuzz-harness throughput (ISSUE 5): cases generated, built, and fully
// oracle-checked per second. These numbers size the CI time box — a
// 30-second bounded pass at N cases/sec covers 30*N seeds — and catch
// regressions that would quietly shrink fuzz coverage (CheckCase runs
// ~a dozen networks per case, so engine slowdowns show up here first).

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "src/fuzz/fuzzer.h"

namespace {

using revere::fuzz::CaseReport;
using revere::fuzz::CheckCase;
using revere::fuzz::FuzzCase;
using revere::fuzz::FuzzRunOptions;
using revere::fuzz::FuzzRunReport;
using revere::fuzz::GenerateCase;
using revere::fuzz::ParseCase;
using revere::fuzz::RunFuzz;
using revere::fuzz::SerializeCase;

void BM_GenerateCase(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    FuzzCase c = GenerateCase(seed++);
    benchmark::DoNotOptimize(c.tables.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateCase);

void BM_SerializeParseRoundTrip(benchmark::State& state) {
  FuzzCase c = GenerateCase(42);
  for (auto _ : state) {
    auto parsed = ParseCase(SerializeCase(c));
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerializeParseRoundTrip);

// The end-to-end unit CI pays per seed: generate + ~a dozen engine
// configurations + every oracle comparison.
void BM_CheckCase(benchmark::State& state) {
  uint64_t seed = 1;
  size_t checks = 0;
  for (auto _ : state) {
    FuzzCase c = GenerateCase(seed++);
    CaseReport report = CheckCase(c);
    checks += report.oracle_checks;
    if (!report.ok()) state.SkipWithError("oracle mismatch during bench");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["oracle_checks_per_case"] =
      state.iterations() > 0
          ? static_cast<double>(checks) / state.iterations()
          : 0.0;
}
BENCHMARK(BM_CheckCase);

void BM_FuzzCampaign(benchmark::State& state) {
  bool smoke = std::getenv("REVERE_BENCH_SMOKE") != nullptr;
  FuzzRunOptions options;
  options.cases = smoke ? 3 : static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    options.seed++;
    FuzzRunReport report = RunFuzz(options);
    if (report.mismatches != 0) {
      state.SkipWithError("oracle mismatch during bench");
    }
    benchmark::DoNotOptimize(report.oracle_checks);
  }
  state.SetItemsProcessed(state.iterations() * options.cases);
}
BENCHMARK(BM_FuzzCampaign)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
