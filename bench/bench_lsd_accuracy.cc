// Experiment C1: the paper's one quantitative claim — "The results of
// applying LSD on some real-world domain show matching accuracies in
// the 70%-90% range" (§4.3.2).
//
// We train the multi-strategy stack on generated university schemas
// (labels = canonical domain elements) and measure classification
// accuracy on held-out schemas, sweeping schema-perturbation severity
// and ablating the learner stack. Paper-predicted shape: the full
// multi-strategy combination lands in (or above) the 70-90% band at
// realistic perturbation and beats every single learner.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/advisor/matcher.h"
#include "src/datagen/university.h"
#include "src/learn/context_learner.h"
#include "src/learn/format_learner.h"
#include "src/learn/multi_strategy.h"
#include "src/learn/name_learner.h"
#include "src/learn/naive_bayes.h"

namespace {

using revere::advisor::ColumnsOf;
using revere::corpus::Corpus;
using revere::datagen::GeneratedSchema;
using revere::datagen::UniversityGenerator;
using revere::datagen::UniversityGenOptions;
using revere::learn::BaseLearner;
using revere::learn::TrainingExample;

constexpr size_t kSchools = 24;
constexpr size_t kTrainSchools = 16;

struct Dataset {
  std::vector<TrainingExample> train;
  std::vector<TrainingExample> test;
};

Dataset MakeDataset(double perturbation) {
  UniversityGenOptions options;
  options.seed = 1234;
  options.synonym_prob = perturbation;
  options.abbrev_prob = perturbation * 0.6;
  options.drop_attr_prob = perturbation * 0.4;
  options.extra_attr_prob = perturbation * 0.5;
  UniversityGenerator generator(options);
  Corpus corpus;
  auto generated = generator.PopulateCorpus(&corpus, kSchools);
  Dataset data;
  for (size_t i = 0; i < generated.size(); ++i) {
    for (auto& column : ColumnsOf(corpus, generated[i].schema)) {
      auto gt = generated[i].ground_truth.find(column.QualifiedName());
      if (gt == generated[i].ground_truth.end()) continue;  // noise attr
      auto& bucket = i < kTrainSchools ? data.train : data.test;
      bucket.emplace_back(column, gt->second);
    }
  }
  return data;
}

double Accuracy(const BaseLearner& learner,
                const std::vector<TrainingExample>& test) {
  size_t correct = 0;
  for (const auto& [column, label] : test) {
    if (learner.Predict(column).Best() == label) ++correct;
  }
  return test.empty() ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test.size());
}

std::unique_ptr<BaseLearner> MakeLearner(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<revere::learn::NameLearner>();
    case 1:
      return std::make_unique<revere::learn::NaiveBayesLearner>();
    case 2:
      return std::make_unique<revere::learn::FormatLearner>();
    case 3:
      return std::make_unique<revere::learn::ContextLearner>();
    default:
      return revere::learn::MultiStrategyLearner::WithDefaultStack(99);
  }
}

const char* LearnerName(int kind) {
  switch (kind) {
    case 0:
      return "name-only";
    case 1:
      return "bayes-only";
    case 2:
      return "format-only";
    case 3:
      return "context-only";
    default:
      return "multi-strategy";
  }
}

// arg0: learner kind (0-4), arg1: perturbation (percent).
void BM_LsdAccuracy(benchmark::State& state) {
  double perturbation = static_cast<double>(state.range(1)) / 100.0;
  Dataset data = MakeDataset(perturbation);
  double accuracy = 0.0;
  for (auto _ : state) {
    auto learner = MakeLearner(static_cast<int>(state.range(0)));
    if (!learner->Train(data.train).ok()) {
      state.SkipWithError("training failed");
      return;
    }
    accuracy = Accuracy(*learner, data.test);
    benchmark::DoNotOptimize(accuracy);
  }
  state.SetLabel(std::string(LearnerName(static_cast<int>(state.range(0)))) +
                 "/perturb=" + std::to_string(state.range(1)) + "%");
  state.counters["accuracy"] = accuracy;
  state.counters["in_paper_band_70_90"] =
      accuracy >= 0.70 ? 1.0 : 0.0;
  state.counters["train_columns"] = static_cast<double>(data.train.size());
  state.counters["test_columns"] = static_cast<double>(data.test.size());
}
BENCHMARK(BM_LsdAccuracy)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {15, 35, 60}})
    ->Unit(benchmark::kMillisecond);

// Learning curve: accuracy of the full stack vs the number of manually
// mapped training schools — LSD's premise is that "the first few data
// sources be manually mapped ... the system should be able to predict
// mappings for subsequent data sources", so a steep early curve is the
// claim to check. arg0: training schools.
void BM_LsdLearningCurve(benchmark::State& state) {
  UniversityGenOptions options;
  options.seed = 555;
  options.synonym_prob = 0.35;
  UniversityGenerator generator(options);
  Corpus corpus;
  auto generated = generator.PopulateCorpus(&corpus, kSchools);
  size_t train_schools = static_cast<size_t>(state.range(0));
  std::vector<TrainingExample> train, test;
  for (size_t i = 0; i < generated.size(); ++i) {
    for (auto& column : ColumnsOf(corpus, generated[i].schema)) {
      auto gt = generated[i].ground_truth.find(column.QualifiedName());
      if (gt == generated[i].ground_truth.end()) continue;
      if (i < train_schools) {
        train.emplace_back(column, gt->second);
      } else if (i >= kTrainSchools) {  // fixed test set for all points
        test.emplace_back(column, gt->second);
      }
    }
  }
  double accuracy = 0.0;
  for (auto _ : state) {
    auto learner = revere::learn::MultiStrategyLearner::WithDefaultStack(5);
    if (!learner->Train(train).ok()) {
      state.SkipWithError("training failed");
      return;
    }
    accuracy = Accuracy(*learner, test);
    benchmark::DoNotOptimize(accuracy);
  }
  state.counters["train_schools"] = static_cast<double>(train_schools);
  state.counters["accuracy"] = accuracy;
}
BENCHMARK(BM_LsdLearningCurve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
