// Experiment F2 (paper Figure 2): the six-university PDMS.
//
// Measures, for a query posed at each peer, the end-to-end answering
// cost over the transitive closure of mappings, plus answer
// completeness (fraction of the global course inventory reached).
// Paper-predicted shape: every peer sees 100% of the data with only a
// linear number of mappings, with cost growing with the peer's mapping
// distance from the rest of the network.

#include <benchmark/benchmark.h>

#include "src/datagen/topology.h"
#include "src/piazza/pdms.h"
#include "src/piazza/peer.h"
#include "src/query/cq.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::ExecutionStats;
using revere::piazza::PdmsNetwork;

struct Fig2Fixture {
  Fig2Fixture() {
    PdmsGenOptions options;
    options.topology = Topology::kFigure2;
    options.rows_per_peer = 200;
    options.seed = 2003;
    auto r = BuildUniversityPdms(&net, options);
    if (r.ok()) report = r.value();
  }
  PdmsNetwork net;
  PdmsGenReport report;
};

Fig2Fixture& Fixture() {
  static Fig2Fixture* fixture = new Fig2Fixture();
  return *fixture;
}

void BM_Fig2_AnswerAtPeer(benchmark::State& state) {
  Fig2Fixture& f = Fixture();
  size_t peer = static_cast<size_t>(state.range(0));
  auto query = AllCoursesQuery(f.report, peer);
  size_t answers = 0;
  ExecutionStats stats;
  for (auto _ : state) {
    auto rows = f.net.Answer(query, {}, &stats);
    answers = rows.ok() ? rows.value().size() : 0;
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel(f.report.peer_names[peer]);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["completeness"] =
      static_cast<double>(answers) /
      static_cast<double>(f.report.total_rows);
  state.counters["rewritings"] =
      static_cast<double>(stats.rewritings_evaluated);
  state.counters["peers_contacted"] =
      static_cast<double>(stats.peers_contacted);
  state.counters["simulated_net_ms"] = stats.simulated_network_ms;
  state.counters["mappings_total"] =
      static_cast<double>(f.report.mapping_count);
}
BENCHMARK(BM_Fig2_AnswerAtPeer)->DenseRange(0, 5, 1);

// Reformulation cost alone (no evaluation) at each peer.
void BM_Fig2_ReformulateAtPeer(benchmark::State& state) {
  Fig2Fixture& f = Fixture();
  size_t peer = static_cast<size_t>(state.range(0));
  auto query = AllCoursesQuery(f.report, peer);
  revere::piazza::ReformulationStats stats;
  for (auto _ : state) {
    auto r = f.net.Reformulate(query, {}, &stats);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(f.report.peer_names[peer]);
  state.counters["nodes_expanded"] =
      static_cast<double>(stats.nodes_expanded);
  state.counters["rewritings"] = static_cast<double>(stats.rewritings);
}
BENCHMARK(BM_Fig2_ReformulateAtPeer)->DenseRange(0, 5, 1);

// Ablation A2: ship-query vs ship-data execution (§3.1.2 "distribute
// each query in the PDMS to the peer that will provide the best
// performance"). arg0: 0 = ship-query, 1 = ship-data; arg1: 0 =
// selective query, 1 = full sweep.
void BM_Fig2_ExecutionStrategy(benchmark::State& state) {
  Fig2Fixture& f = Fixture();
  revere::piazza::NetworkCostModel cost;
  cost.strategy = state.range(0) == 0
                      ? revere::piazza::ExecutionStrategy::kShipQuery
                      : revere::piazza::ExecutionStrategy::kShipData;
  cost.per_row_ms = 0.1;
  std::string rel = revere::piazza::QualifiedName(
      f.report.peer_names[0], f.report.relation_names[0]);
  auto query =
      state.range(1) == 0
          ? revere::query::ConjunctiveQuery::Parse(
                "q(I, P) :- " + rel + "(I, \"Mechanics\", P)")
                .value()
          : AllCoursesQuery(f.report, 0);
  ExecutionStats stats;
  for (auto _ : state) {
    auto rows = f.net.Answer(query, {}, &stats, cost);
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(std::string(state.range(0) == 0 ? "ship-query"
                                                 : "ship-data") +
                 (state.range(1) == 0 ? "/selective" : "/full-sweep"));
  state.counters["rows_shipped"] = static_cast<double>(stats.rows_shipped);
  state.counters["simulated_net_ms"] = stats.simulated_network_ms;
}
BENCHMARK(BM_Fig2_ExecutionStrategy)->ArgsProduct({{0, 1}, {0, 1}});

// A selective query (one specific course title) from the most remote
// peer — constants must push through the mapping chain.
void BM_Fig2_SelectiveQuery(benchmark::State& state) {
  Fig2Fixture& f = Fixture();
  std::string rel = revere::piazza::QualifiedName(
      f.report.peer_names[3], f.report.relation_names[3]);
  auto q = revere::query::ConjunctiveQuery::Parse(
      "q(I, P) :- " + rel + "(I, \"Mechanics\", P)");
  size_t answers = 0;
  for (auto _ : state) {
    auto rows = f.net.Answer(q.value());
    answers = rows.ok() ? rows.value().size() : 0;
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Fig2_SelectiveQuery);

}  // namespace
