// Experiment C11 (§4.4 extension): "facilitating the querying of
// unfamiliar data ... a tool that uses the corpus to propose
// reformulations of the user's query that are well formed w.r.t. the
// schema at hand."
//
// A user poses queries against a schema they have never seen, using
// vocabulary drawn from the canonical domain model while the actual
// schema is a perturbed variant (synonyms, abbreviations). Measures the
// fraction of queries the assistant repairs to the right relation and
// the answering overhead. Expected shape: repair rate stays high under
// synonym+abbreviation noise when the assistant has the synonym table;
// drops without it (the ablation).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/advisor/query_assistant.h"
#include "src/datagen/university.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"
#include "src/text/synonyms.h"

namespace {

using revere::advisor::QueryAssistant;
using revere::advisor::QueryAssistantOptions;
using revere::advisor::QuerySuggestion;
using revere::datagen::GeneratedSchema;
using revere::datagen::UniversityGenerator;
using revere::datagen::UniversityGenOptions;
using revere::query::ConjunctiveQuery;
using revere::storage::Catalog;
using revere::storage::TableSchema;

// Builds a catalog holding one generated (perturbed) schema; returns the
// canonical->actual relation name map for scoring.
struct Scenario {
  Catalog catalog;
  std::vector<std::pair<std::string, std::string>> canonical_to_actual;
  std::vector<size_t> arities;
};

void BuildScenario(double perturbation, uint64_t seed, Scenario* out) {
  UniversityGenOptions options;
  options.seed = seed;
  options.synonym_prob = perturbation;
  options.abbrev_prob = perturbation * 0.7;
  options.drop_attr_prob = 0.0;  // keep arities predictable per relation
  options.extra_attr_prob = 0.0;
  options.split_ta_prob = 1.0;
  UniversityGenerator generator(options);
  GeneratedSchema g = generator.GenerateSchema("target");
  const char* canonical_names[] = {"course", "ta", "person"};
  for (size_t r = 0; r < g.schema.relations.size(); ++r) {
    const auto& rel = g.schema.relations[r];
    (void)out->catalog.CreateTable(
        TableSchema::AllStrings(rel.name, rel.attributes));
    out->canonical_to_actual.emplace_back(canonical_names[r], rel.name);
    out->arities.push_back(rel.attributes.size());
  }
}

// arg0: perturbation percent; arg1: synonyms available (0/1).
void BM_QueryRepairRate(benchmark::State& state) {
  Scenario scenario;
  double repaired = 0.0;
  double total = 0.0;
  revere::text::SynonymTable table =
      revere::text::SynonymTable::UniversityDomainDefaults();
  for (auto _ : state) {
    repaired = 0.0;
    total = 0.0;
    // 20 deterministic scenarios per iteration.
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      Scenario s;
      BuildScenario(static_cast<double>(state.range(0)) / 100.0, seed, &s);
      QueryAssistantOptions opts;
      if (state.range(1) != 0) {
        opts.name_options.use_synonyms = true;
        opts.name_options.synonyms = &table;
      }
      QueryAssistant assistant(&s.catalog, opts);
      for (size_t r = 0; r < s.canonical_to_actual.size(); ++r) {
        // The user queries with the canonical relation name.
        std::string head_vars, body_vars;
        for (size_t i = 0; i < s.arities[r]; ++i) {
          if (i > 0) body_vars += ", ";
          body_vars += "X" + std::to_string(i);
        }
        auto q = ConjunctiveQuery::Parse(
            "q(X0) :- " + s.canonical_to_actual[r].first + "(" + body_vars +
            ")");
        if (!q.ok()) continue;
        ++total;
        auto suggestions = assistant.Reformulate(q.value());
        if (!suggestions.empty() &&
            suggestions[0].query.body()[0].relation ==
                s.canonical_to_actual[r].second) {
          ++repaired;
        }
      }
    }
    benchmark::DoNotOptimize(repaired);
  }
  state.SetLabel(state.range(1) ? "with-synonyms" : "names-only");
  state.counters["repair_rate"] = total == 0.0 ? 0.0 : repaired / total;
  state.counters["queries"] = total;
}
BENCHMARK(BM_QueryRepairRate)
    ->ArgsProduct({{0, 30, 60}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
