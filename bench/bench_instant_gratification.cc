// Experiment C5: instant gratification versus periodic crawling (§2.2:
// "This feedback cycle would be crippled if changes relied upon periodic
// web crawls before they took effect.").
//
// Measures (a) the cost of MANGROVE's publish path — the price of
// immediacy, paid once per edit — and (b) the cost of a crawl cycle
// over the whole page population — the price a crawler pays *per
// period*, regardless of how little changed. Staleness under crawling
// is period/2 on average; under publish it is one publish latency.
// Paper-predicted shape: publish cost is O(page), crawl cost is
// O(site), so immediacy gets cheaper relative to crawling as the site
// grows.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/datagen/university.h"
#include "src/mangrove/apps.h"
#include "src/mangrove/publisher.h"
#include "src/mangrove/schema.h"
#include "src/rdf/triple_store.h"

namespace {

using revere::Rng;
using revere::datagen::CourseRecord;
using revere::datagen::GenerateCourses;
using revere::datagen::RenderAnnotatedCoursePage;
using revere::mangrove::ConflictResolution;
using revere::mangrove::CourseCalendar;
using revere::mangrove::MangroveSchema;
using revere::mangrove::Publisher;
using revere::rdf::TripleStore;

struct Site {
  explicit Site(size_t pages) {
    schema = MangroveSchema::UniversityDefaults();
    Rng rng(3);
    courses = GenerateCourses(pages, &rng);
    for (auto& c : courses) {
      urls.push_back("http://u.example.edu/" + c.id);
      html.push_back(RenderAnnotatedCoursePage(c));
    }
  }
  MangroveSchema schema;
  std::vector<CourseRecord> courses;
  std::vector<std::string> urls;
  std::vector<std::string> html;
};

// One author edit becoming visible: publish one page + refresh the app.
void BM_PublishToVisible(benchmark::State& state) {
  Site site(static_cast<size_t>(state.range(0)));
  TripleStore store;
  Publisher publisher(&site.schema, &store);
  for (size_t i = 0; i < site.urls.size(); ++i) {
    (void)publisher.Publish(site.urls[i], site.html[i]);
  }
  CourseCalendar calendar(&store, {ConflictResolution::kAny, ""});
  size_t i = 0;
  size_t visible = 0;
  for (auto _ : state) {
    // Re-publish one page (an edit) and refresh the application.
    (void)publisher.Publish(site.urls[i % site.urls.size()],
                            site.html[i % site.urls.size()]);
    visible = calendar.Refresh().size();
    benchmark::DoNotOptimize(visible);
    ++i;
  }
  state.counters["site_pages"] = static_cast<double>(site.urls.size());
  state.counters["visible_courses"] = static_cast<double>(visible);
  state.counters["staleness_edits"] = 0.0;  // change visible immediately
}
BENCHMARK(BM_PublishToVisible)->Arg(10)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

// One crawl cycle: re-fetch + re-extract every page of the site (what a
// periodic crawler pays per period, even for one changed page).
void BM_CrawlCycle(benchmark::State& state) {
  Site site(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TripleStore store;
    Publisher publisher(&site.schema, &store);
    for (size_t i = 0; i < site.urls.size(); ++i) {
      (void)publisher.Publish(site.urls[i], site.html[i]);
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["site_pages"] = static_cast<double>(site.urls.size());
  // With crawl period P the expected staleness of a random edit is P/2;
  // we report the cycle cost so EXPERIMENTS.md can derive the tradeoff.
  state.counters["pages_per_cycle"] =
      static_cast<double>(site.urls.size());
}
BENCHMARK(BM_CrawlCycle)->Arg(10)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
