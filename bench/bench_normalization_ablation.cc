// Experiment C12 (ablation for §4.2.1): the paper keeps statistics in
// "different versions, depending on whether we take into consideration
// word stemming, synonym tables, inter-language dictionaries, or any
// combination of these three". This ablation quantifies what each
// normalization layer buys for element matching.
//
// Protocol: name-based matching of generated schema pairs against
// ground truth under the four combinations of {stemming, synonyms}.
// Expected shape: each layer adds accuracy; together they dominate.

#include <benchmark/benchmark.h>

#include "src/advisor/matcher.h"
#include "src/datagen/university.h"
#include "src/text/synonyms.h"

namespace {

using revere::advisor::ColumnsOf;
using revere::advisor::MatcherOptions;
using revere::advisor::SchemaMatcher;
using revere::corpus::Corpus;
using revere::datagen::GeneratedSchema;
using revere::datagen::UniversityGenerator;
using revere::datagen::UniversityGenOptions;

// arg0: use_stemming, arg1: use_synonyms.
void BM_NormalizationAblation(benchmark::State& state) {
  UniversityGenOptions options;
  options.seed = 404;
  options.synonym_prob = 0.5;
  options.abbrev_prob = 0.25;
  UniversityGenerator generator(options);
  Corpus corpus;
  auto generated = generator.PopulateCorpus(&corpus, 12);

  revere::text::SynonymTable table =
      revere::text::SynonymTable::UniversityDomainDefaults();
  MatcherOptions mopts;
  mopts.name_options.use_stemming = state.range(0) != 0;
  mopts.name_options.use_synonyms = state.range(1) != 0;
  mopts.name_options.synonyms = state.range(1) != 0 ? &table : nullptr;
  mopts.use_values = false;  // isolate the name signal
  SchemaMatcher matcher(mopts);

  double precision = 0.0, recall = 0.0;
  for (auto _ : state) {
    size_t proposed = 0, correct = 0, possible = 0;
    for (size_t i = 0; i + 1 < generated.size(); i += 2) {
      const GeneratedSchema& a = generated[i];
      const GeneratedSchema& b = generated[i + 1];
      auto matches = matcher.Match(ColumnsOf(corpus, a.schema),
                                   ColumnsOf(corpus, b.schema));
      proposed += matches.size();
      for (const auto& m : matches) {
        auto ga = a.ground_truth.find(m.a);
        auto gb = b.ground_truth.find(m.b);
        if (ga != a.ground_truth.end() && gb != b.ground_truth.end() &&
            ga->second == gb->second) {
          ++correct;
        }
      }
      // Possible pairs: elements sharing a canonical label.
      for (const auto& [ea, ca] : a.ground_truth) {
        for (const auto& [eb, cb] : b.ground_truth) {
          if (ca == cb) {
            ++possible;
            break;
          }
        }
      }
    }
    precision = proposed == 0 ? 0.0
                              : static_cast<double>(correct) /
                                    static_cast<double>(proposed);
    recall = possible == 0 ? 0.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(possible);
    benchmark::DoNotOptimize(precision);
  }
  std::string label;
  label += state.range(0) ? "stem" : "nostem";
  label += state.range(1) ? "+syn" : "+nosyn";
  state.SetLabel(label);
  state.counters["precision"] = precision;
  state.counters["recall"] = recall;
  state.counters["f1"] =
      precision + recall == 0.0
          ? 0.0
          : 2 * precision * recall / (precision + recall);
}
BENCHMARK(BM_NormalizationAblation)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
