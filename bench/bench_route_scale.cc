// Experiment R3 (extends C3): reformulation at thousand-peer scale
// (ISSUE 9). §3 of the paper argues a PDMS "will scale to large numbers
// of peers" only if query answering prunes "redundant and irrelevant
// paths through the space of mappings"; this bench measures exactly
// that trade on the overlay shapes real P2P deployments grow
// (Watts-Strogatz small-world, Barabasi-Albert scale-free):
//
//  - PrunedVsExhaustive: the C3 all-courses query per (topology, peers,
//    budget) cell. Budget 0 is the pre-route exhaustive BFS; nonzero
//    budgets run the cost-bounded best-first route search (mapping
//    index + hop budget + redundant-path elimination). Counters report
//    recall against the generator's ground truth, so the wall-clock
//    ratio between a pruned cell and its exhaustive row IS the
//    acceptance measurement (>= 5x at >= 95% recall on the 1000-peer
//    small-world cell).
//  - ChurnWarmCache: peers join (AddPeer + AddMapping) and leave
//    (FaultInjector SetDown/Restore) mid-workload while a fixed query
//    working set replays through the plan cache. mode 0 runs scoped
//    per-peer invalidation, mode 1 forces the legacy global generation
//    bump. The hit_rate counter is the acceptance number: scoped stays
//    warm (> 0.5) because a join only touches plans whose bounded peer
//    path crosses the attach point; global decays toward 0.
//
// REVERE_BENCH_SMOKE=1 shrinks peer counts so CI exercises every cell
// in milliseconds.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/datagen/topology.h"
#include "src/piazza/fault.h"
#include "src/piazza/pdms.h"
#include "src/piazza/peer.h"
#include "src/query/cq.h"
#include "src/query/glav.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::ExecutionStats;
using revere::piazza::FaultInjector;
using revere::piazza::NetworkCostModel;
using revere::piazza::PdmsNetwork;
using revere::piazza::PeerMapping;
using revere::piazza::QualifiedName;
using revere::piazza::ReformulationOptions;
using revere::piazza::ReformulationStats;
using revere::query::ConjunctiveQuery;

bool SmokeRun() { return std::getenv("REVERE_BENCH_SMOKE") != nullptr; }

const char* TopologyName(int t) {
  return t == 0 ? "small_world" : "scale_free";
}

Topology TopologyOf(int t) {
  return t == 0 ? Topology::kSmallWorld : Topology::kScaleFree;
}

/// The route-search options used for every "pruned" arm: hop-budgeted
/// (uniform costs: budget == reachable hops), cycle-eliminated.
ReformulationOptions PrunedOptions(double budget) {
  ReformulationOptions opts;
  opts.use_route_search = true;
  opts.max_path_cost = budget;
  opts.prune_redundant_paths = true;
  opts.max_depth = 64;  // the budget is the binding limit
  opts.max_rewritings = 8192;
  return opts;
}

/// The exhaustive arm: the pre-route BFS, depth-limited only by the
/// network's reach.
ReformulationOptions ExhaustiveOptions() {
  ReformulationOptions opts;
  opts.max_depth = 64;
  opts.max_rewritings = 8192;
  return opts;
}

// arg0: topology, arg1: peers, arg2: hop budget (0 = exhaustive BFS).
void BM_RouteScale_PrunedVsExhaustive(benchmark::State& state) {
  PdmsNetwork net;
  net.set_metrics_enabled(false);
  PdmsGenOptions options;
  options.topology = TopologyOf(static_cast<int>(state.range(0)));
  size_t peers = static_cast<size_t>(state.range(1));
  if (SmokeRun()) peers = std::min<size_t>(peers, 24);
  options.peers = peers;
  options.rows_per_peer = 1;  // search cost, not evaluation cost
  options.seed = 2003;
  auto report = BuildUniversityPdms(&net, options);
  if (!report.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  ConjunctiveQuery query = AllCoursesQuery(report.value(), 0);
  // Uniform costs make the budget a hop radius; the sweep charts the
  // recall/wall-clock trade the paper's §3 pruning argument promises.
  int budget = static_cast<int>(state.range(2));
  bool pruned = budget != 0;
  ReformulationOptions opts =
      pruned ? PrunedOptions(static_cast<double>(budget))
             : ExhaustiveOptions();

  ReformulationStats stats;
  for (auto _ : state) {
    auto r = net.Reformulate(query, opts, &stats);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError("reformulate failed");
  }

  // Recall against the generator's ground truth (one evaluation outside
  // the timed loop: every course id is globally unique, so row count /
  // total_rows is exact answer recall).
  auto rows = net.Answer(query, opts);
  double recall =
      rows.ok() && report.value().total_rows > 0
          ? static_cast<double>(rows.value().size()) /
                static_cast<double>(report.value().total_rows)
          : 0.0;
  state.SetLabel(std::string(TopologyName(static_cast<int>(state.range(0)))) +
                 (pruned ? "/pruned_b" + std::to_string(budget)
                         : "/exhaustive"));
  state.counters["peers"] = static_cast<double>(peers);
  state.counters["recall"] = recall;
  state.counters["nodes_expanded"] = static_cast<double>(stats.nodes_expanded);
  state.counters["rewritings"] = static_cast<double>(stats.rewritings);
  state.counters["pruned_cost"] = static_cast<double>(stats.pruned_cost);
  state.counters["pruned_redundant"] =
      static_cast<double>(stats.pruned_redundant);
}
BENCHMARK(BM_RouteScale_PrunedVsExhaustive)
    ->ArgsProduct({{0, 1}, {100, 300, 1000}, {0, 8, 16, 20}})
    ->Unit(benchmark::kMillisecond);

/// One churn event: a new peer joins, stores a (empty) course relation,
/// and maps itself onto an existing attach point — the only region of
/// the overlay whose plans should go cold.
bool JoinPeer(PdmsNetwork* net, const PdmsGenReport& report, size_t serial,
              size_t attach) {
  std::string name = "joiner" + std::to_string(serial);
  const std::string& rel =
      report.relation_names[attach % report.relation_names.size()];
  if (!net->AddPeer(name).ok()) return false;
  auto table = net->AddStoredRelation(
      name, revere::storage::TableSchema::AllStrings(
                "course", {"id", "title", "instructor"}));
  if (!table.ok()) return false;
  std::string qualified_new = QualifiedName(name, "course");
  std::string qualified_old = QualifiedName(report.peer_names[attach], rel);
  auto source = ConjunctiveQuery::Parse("m(I, T, P) :- " + qualified_new +
                                        "(I, T, P)");
  auto target = ConjunctiveQuery::Parse("m(I, T, P) :- " + qualified_old +
                                        "(I, T, P)");
  if (!source.ok() || !target.ok()) return false;
  return net
      ->AddMapping(PeerMapping{{name + "-join", source.value(),
                                target.value()},
                               name,
                               report.peer_names[attach],
                               true})
      .ok();
}

// arg0: mode (0 scoped invalidation, 1 legacy global generation).
void BM_RouteScale_ChurnWarmCache(benchmark::State& state) {
  bool global_mode = state.range(0) != 0;
  size_t peers = SmokeRun() ? 24 : 300;
  size_t working_set = SmokeRun() ? 8 : 40;

  PdmsNetwork net;
  net.set_metrics_enabled(false);
  net.set_scoped_invalidation(!global_mode);
  PdmsGenOptions options;
  options.topology = Topology::kSmallWorld;
  options.peers = peers;
  options.rows_per_peer = 1;
  options.seed = 2003;
  auto report = BuildUniversityPdms(&net, options);
  if (!report.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  // Hop-budgeted plans touch only their neighborhood — the property
  // scoped invalidation converts into churn survival.
  ReformulationOptions opts = PrunedOptions(3.0);
  opts.use_plan_cache = true;

  std::vector<ConjunctiveQuery> queries;
  for (size_t i = 0; i < working_set; ++i) {
    queries.push_back(
        AllCoursesQuery(report.value(), (i * peers) / working_set));
  }
  FaultInjector faults(7);
  NetworkCostModel cost;
  cost.faults = &faults;

  // Warm every plan once.
  for (const auto& q : queries) {
    if (!net.Answer(q, opts, nullptr, cost).ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
  }

  size_t hits = 0, answers = 0, serial = 0;
  for (auto _ : state) {
    // Join: one new peer maps onto a rotating attach point. Leave: the
    // previous joiner drops off the network (fault), then recovers —
    // contact-level churn that scoped invalidation ignores entirely.
    JoinPeer(&net, report.value(), serial, (serial * 13) % peers);
    if (serial > 0) {
      std::string prev = "joiner" + std::to_string(serial - 1);
      faults.SetDown(prev);
      faults.Restore(prev);
    }
    ++serial;
    for (const auto& q : queries) {
      ExecutionStats stats;
      auto rows = net.Answer(q, opts, &stats, cost);
      if (!rows.ok()) state.SkipWithError("answer failed");
      hits += stats.plan_cache_hits;
      ++answers;
    }
  }
  state.SetLabel(global_mode ? "global" : "scoped");
  state.counters["peers"] = static_cast<double>(peers);
  state.counters["hit_rate"] =
      answers > 0 ? static_cast<double>(hits) / answers : 0.0;
  state.counters["churn_events"] = static_cast<double>(serial);
}
BENCHMARK(BM_RouteScale_ChurnWarmCache)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
