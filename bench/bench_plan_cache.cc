// Experiment P2: the reformulation plan cache on the Figure-2
// six-university PDMS.
//
// Three questions, per EXPERIMENTS.md:
//
//   1. Warm-vs-cold: how much reformulation latency does a plan-cache
//      hit save? (Acceptance: >=10x at 100% repeat rate.)
//   2. Hit-rate curve: sweeping the fraction of repeated queries in a
//      served stream from 0% to 100%, the measured hit rate must track
//      the repeat rate monotonically and throughput must rise with it.
//   3. Serving path: AnswerBatch over a mixed stream, the end-to-end
//      number a deployment would see.
//
// The workload models a portal serving a query stream: a small "hot
// set" of recurring queries mixed with one-off queries that pin a
// never-repeated course id constant (distinct constants are distinct
// canonical forms, so they can never hit). Hot and one-off queries
// share the same single-atom lookup shape — identical reformulation
// and evaluation cost — so the sweep isolates exactly what the cache
// saves; only the repeat rate varies. Streams are drawn from a seeded
// mt19937: every iteration and every run sees the same sequence.
//
// All numbers are single-process reformulation/serving costs — the
// network cost model's simulated milliseconds never touch wall time.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "src/datagen/topology.h"
#include "src/piazza/pdms.h"
#include "src/query/cq.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::ExecutionStats;
using revere::piazza::PdmsNetwork;
using revere::piazza::PlanCache;
using revere::piazza::ReformulationOptions;
using revere::piazza::ReformulationStats;
using revere::query::ConjunctiveQuery;

bool SmokeRun() { return std::getenv("REVERE_BENCH_SMOKE") != nullptr; }

struct PlanCacheFixture {
  PlanCacheFixture() {
    PdmsGenOptions options;
    options.topology = Topology::kFigure2;
    options.rows_per_peer = SmokeRun() ? 20 : 200;
    options.seed = 2003;
    auto r = BuildUniversityPdms(&net, options);
    if (r.ok()) report = r.value();
    // One hot shape per peer: a network-wide lookup for a specific
    // course id. Same shape as the one-offs below, so a stream's cost
    // differs only in how often reformulation is a cache hit.
    for (size_t p = 0; p < report.peer_names.size(); ++p) {
      hot_set.push_back(LookupQuery(p, "hot" + std::to_string(p)));
    }
  }

  /// "Which title/instructor has course id `id`?" in `peer`'s
  /// vocabulary. Reformulation chases the full mapping closure exactly
  /// like the all-courses query (same atom shape); evaluation is an
  /// indexed point lookup.
  ConjunctiveQuery LookupQuery(size_t peer, const std::string& id) const {
    std::string text = "q(T, P) :- " + report.peer_names[peer] + ":" +
                       report.relation_names[peer] + "(\"" + id +
                       "\", T, P)";
    return ConjunctiveQuery::Parse(text).value();
  }

  /// A one-off: a never-repeated course id. The constant lands in the
  /// canonical text, so every distinct id is a distinct plan-cache key
  /// — a guaranteed cold reformulation of hot-set difficulty.
  ConjunctiveQuery UniqueQuery(size_t n) const {
    return LookupQuery(n % report.peer_names.size(),
                       "oneoff" + std::to_string(n));
  }

  PdmsNetwork net;
  PdmsGenReport report;
  std::vector<ConjunctiveQuery> hot_set;
};

PlanCacheFixture& Fixture() {
  static PlanCacheFixture* fixture = new PlanCacheFixture();
  return *fixture;
}

/// A deterministic stream of `length` queries in which each slot is a
/// hot-set query with probability `repeat_pct`/100, else a fresh
/// one-off. `salt` keeps one-off ids unique across iterations so they
/// never accidentally warm up.
std::vector<ConjunctiveQuery> MakeStream(const PlanCacheFixture& f,
                                         int repeat_pct, size_t length,
                                         size_t salt) {
  std::mt19937 rng(12345 + static_cast<uint32_t>(repeat_pct));
  std::uniform_int_distribution<int> coin(0, 99);
  std::uniform_int_distribution<size_t> pick(0, f.hot_set.size() - 1);
  std::vector<ConjunctiveQuery> stream;
  stream.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (coin(rng) < repeat_pct) {
      stream.push_back(f.hot_set[pick(rng)]);
    } else {
      stream.push_back(f.UniqueQuery(salt * length + i));
    }
  }
  return stream;
}

void ReportReformulation(benchmark::State& state,
                         const ReformulationStats& stats) {
  state.counters["nodes_expanded"] =
      static_cast<double>(stats.nodes_expanded);
  state.counters["rewritings"] = static_cast<double>(stats.rewritings);
}

// ---------------------------------------------------- warm vs. cold

/// The cache-off baseline: every Reformulate pays the full transitive
/// mapping-closure search. This is the denominator of the >=10x
/// acceptance ratio.
void BM_PlanCache_ColdReformulate(benchmark::State& state) {
  PlanCacheFixture& f = Fixture();
  ConjunctiveQuery q = AllCoursesQuery(f.report, 0);
  ReformulationOptions options;
  options.use_plan_cache = false;
  ReformulationStats stats;
  for (auto _ : state) {
    auto rewritings = f.net.Reformulate(q, options, &stats);
    benchmark::DoNotOptimize(rewritings);
  }
  ReportReformulation(state, stats);
}
BENCHMARK(BM_PlanCache_ColdReformulate);

/// The 100%-repeat-rate hit path: canonicalize, fingerprint, one
/// sharded lookup. Warm-up happens outside the timed loop.
void BM_PlanCache_WarmReformulate(benchmark::State& state) {
  PlanCacheFixture& f = Fixture();
  ConjunctiveQuery q = AllCoursesQuery(f.report, 0);
  f.net.ClearPlanCache();
  benchmark::DoNotOptimize(f.net.Reformulate(q));  // warm the entry
  ReformulationStats stats;
  for (auto _ : state) {
    auto rewritings = f.net.Reformulate(q, {}, &stats);
    benchmark::DoNotOptimize(rewritings);
  }
  ReportReformulation(state, stats);
  state.counters["plan_cache_hit"] =
      static_cast<double>(stats.plan_cache_hits);
}
BENCHMARK(BM_PlanCache_WarmReformulate);

// ------------------------------------------------- repeat-rate sweep

/// arg0: percentage of stream slots drawn from the hot set (0..100).
/// Each iteration serves a fresh 32-query stream end to end (Answer,
/// reformulation + evaluation) against a cache cleared at iteration
/// start, so the measured hit rate is the steady-state value for that
/// repeat rate, not an artifact of accumulation across iterations.
void BM_PlanCache_RepeatRateSweep(benchmark::State& state) {
  PlanCacheFixture& f = Fixture();
  int repeat_pct = static_cast<int>(state.range(0));
  const size_t kStream = SmokeRun() ? 8 : 64;
  size_t salt = 0;
  uint64_t hits = 0, misses = 0;
  size_t served = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ConjunctiveQuery> stream =
        MakeStream(f, repeat_pct, kStream, salt++);
    f.net.ClearPlanCache();
    PlanCache::Stats before = f.net.PlanCacheStats();
    state.ResumeTiming();
    for (const auto& q : stream) {
      auto rows = f.net.Answer(q);
      benchmark::DoNotOptimize(rows);
    }
    state.PauseTiming();
    PlanCache::Stats after = f.net.PlanCacheStats();
    hits += after.hits - before.hits;
    misses += after.misses - before.misses;
    served += stream.size();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  state.counters["hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  state.counters["queries"] = static_cast<double>(served);
}
BENCHMARK(BM_PlanCache_RepeatRateSweep)->DenseRange(0, 100, 25);

// ------------------------------------------------ batch serving path

/// The sustained-throughput path: AnswerBatch over a mixed stream at a
/// fixed 75% repeat rate, cache warm across the whole run — the number
/// a long-lived portal process would see.
void BM_PlanCache_AnswerBatchServing(benchmark::State& state) {
  PlanCacheFixture& f = Fixture();
  const size_t kStream = SmokeRun() ? 8 : 32;
  f.net.ClearPlanCache();
  size_t salt = 0;
  size_t served = 0;
  // Steady-state hit rate = the last iteration's hits/(hits+misses).
  // Every iteration's stream draws the same hot/one-off pattern (the
  // rng is seeded per repeat rate, salt only varies the one-off ids),
  // so once warm this is a constant — independent of how many
  // iterations the benchmark runner chooses.
  uint64_t last_hits = 0, last_misses = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ConjunctiveQuery> stream = MakeStream(f, 75, kStream, salt++);
    PlanCache::Stats before = f.net.PlanCacheStats();
    state.ResumeTiming();
    auto results = f.net.AnswerBatch(stream);
    benchmark::DoNotOptimize(results);
    state.PauseTiming();
    PlanCache::Stats after = f.net.PlanCacheStats();
    last_hits = after.hits - before.hits;
    last_misses = after.misses - before.misses;
    served += stream.size();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
  state.counters["hit_rate"] =
      last_hits + last_misses == 0
          ? 0.0
          : static_cast<double>(last_hits) /
                static_cast<double>(last_hits + last_misses);
}
BENCHMARK(BM_PlanCache_AnswerBatchServing);

}  // namespace
