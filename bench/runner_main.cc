// Shared main() for every bench_* binary: standard google-benchmark
// flags plus `--json <path>` (or --json=<path>), which appends one
// machine-readable JSON line per run via JsonLinesReporter so bench
// trajectories can be tracked across PRs, `--metrics <path>` (or
// --metrics=<path>), which dumps the process-wide obs::MetricsRegistry
// as JSONL after the benchmarks finish, and `--engine <name>` (or
// --engine=<name>), which restricts the run to benchmarks registered
// with an `engine_<name>` suffix (the convention the evaluation-engine
// sweeps use) by installing the matching --benchmark_filter.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/json_lines_reporter.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"

int main(int argc, char** argv) {
  std::string json_path;
  std::string metrics_path;
  std::string engine;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg == "--engine" && i + 1 < argc) {
      engine = argv[++i];
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine = arg.substr(9);
    } else {
      args.push_back(argv[i]);
    }
  }
  // Benchmark names carry the engine as an `engine_<name>` suffix, so
  // the sweep reduces to a name filter. Last flag wins if the caller
  // also passes an explicit --benchmark_filter. Unknown names are an
  // error — a typo'd filter would otherwise silently run nothing.
  static const std::vector<std::string> kEngines = {
      "map", "slots", "columnar", "columnar_scalar"};
  std::string engine_filter;
  if (!engine.empty()) {
    bool known = false;
    for (const std::string& e : kEngines) known = known || e == engine;
    if (!known) {
      std::fprintf(stderr, "unknown --engine '%s'; expected one of:",
                   engine.c_str());
      for (const std::string& e : kEngines) {
        std::fprintf(stderr, " %s", e.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    engine_filter = "--benchmark_filter=engine_" + engine + "$";
    args.push_back(engine_filter.data());
  }
  bool format_flag = false;
  for (char* arg : args) {
    if (std::string(arg).rfind("--benchmark_format", 0) == 0) {
      format_flag = true;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (json_path.empty() && format_flag) {
    // Let --benchmark_format=csv/json pick the display reporter; our
    // console-based reporter would override it.
    benchmark::RunSpecifiedBenchmarks();
  } else {
    revere::bench::JsonLinesReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  if (!metrics_path.empty()) {
    std::string dump = revere::obs::MetricsToJsonLines(
        revere::obs::MetricsRegistry::Default());
    if (!revere::obs::WriteFileOrFalse(metrics_path, dump)) {
      std::fprintf(stderr, "failed to write metrics dump to %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}
