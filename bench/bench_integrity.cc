// Experiment C10: deferred integrity constraints (§2.3). MANGROVE lets
// anyone publish anything; applications clean at read time with a
// policy of their choice. We plant a ground truth, inject conflicting
// and malicious values at a controlled rate, and measure
//   - precision of each conflict-resolution policy (fraction of
//     entities whose resolved value equals the ground truth),
//   - the read-time cost of cleaning,
//   - the cost the *publish path* would pay if constraints were checked
//     eagerly on every publish (the design the paper rejects).
// Paper-predicted shape: trusted-source filtering restores precision
// under adversarial noise where majority voting degrades; deferring the
// check keeps publish O(page) instead of O(database).

#include <benchmark/benchmark.h>

#include <string>

#include "src/common/rng.h"
#include "src/mangrove/cleaning.h"
#include "src/mangrove/publisher.h"
#include "src/mangrove/schema.h"
#include "src/rdf/triple_store.h"

namespace {

using revere::Rng;
using revere::mangrove::CleaningPolicy;
using revere::mangrove::ConflictResolution;
using revere::mangrove::FindInconsistencies;
using revere::mangrove::MangroveSchema;
using revere::mangrove::ResolveValue;
using revere::rdf::TripleStore;

constexpr size_t kPeople = 200;

// Builds a store where every person has a true phone number published
// from their own page, plus duplicate and malicious publications at the
// given rates.
struct DirtyStore {
  DirtyStore(double duplicate_rate, double malicious_rate, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = 0; i < kPeople; ++i) {
      std::string person = "person" + std::to_string(i);
      std::string truth = "206-" + std::to_string(1000 + i);
      truths.push_back(truth);
      std::string home = "http://cs.example.edu/" + person;
      (void)store.Add(person, "rdf:type", "person", home);
      // Publication order is adversary-controlled half the time, so the
      // naive "first value wins" policy has no positional advantage.
      bool adversary_first = rng.Bernoulli(0.5);
      bool attacked = rng.Bernoulli(malicious_rate);
      auto add_truth = [&] {
        (void)store.Add(person, "phone", truth, home);
        if (rng.Bernoulli(duplicate_rate)) {  // correct duplicate elsewhere
          (void)store.Add(person, "phone", truth,
                          "http://cs.example.edu/directory");
        }
      };
      auto add_attack = [&] {
        if (!attacked) return;
        // The adversary publishes twice to beat naive majority voting.
        std::string bad = "555-0000";
        (void)store.Add(person, "phone", bad, "http://evil.example.com/a");
        (void)store.Add(person, "phone", bad, "http://evil.example.com/b");
      };
      if (adversary_first) {
        add_attack();
        add_truth();
      } else {
        add_truth();
        add_attack();
      }
    }
  }
  TripleStore store;
  std::vector<std::string> truths;
};

double Precision(const DirtyStore& dirty, const CleaningPolicy& policy) {
  size_t correct = 0;
  for (size_t i = 0; i < kPeople; ++i) {
    auto v = ResolveValue(dirty.store, "person" + std::to_string(i), "phone",
                          policy);
    if (v.has_value() && *v == dirty.truths[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(kPeople);
}

// arg0: policy, arg1: malicious rate percent.
void BM_CleaningPolicyPrecision(benchmark::State& state) {
  double malicious = static_cast<double>(state.range(1)) / 100.0;
  DirtyStore dirty(0.4, malicious, 77);
  CleaningPolicy policy;
  const char* name = "?";
  switch (state.range(0)) {
    case 0:
      policy = {ConflictResolution::kAny, ""};
      name = "any";
      break;
    case 1:
      policy = {ConflictResolution::kMajority, ""};
      name = "majority";
      break;
    case 2:
      policy = {ConflictResolution::kTrustedSourceOnly,
                "http://cs.example.edu/"};
      name = "trusted-source";
      break;
    default:
      policy = {ConflictResolution::kRejectConflicts, ""};
      name = "reject-conflicts";
  }
  double precision = 0.0;
  for (auto _ : state) {
    precision = Precision(dirty, policy);
    benchmark::DoNotOptimize(precision);
  }
  state.SetLabel(std::string(name) + "/malicious=" +
                 std::to_string(state.range(1)) + "%");
  state.counters["precision"] = precision;
}
BENCHMARK(BM_CleaningPolicyPrecision)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 20, 50}})
    ->Unit(benchmark::kMicrosecond);

// Proactive inconsistency detection over the whole store (run once a
// night, per the paper's suggestion — not on every publish).
void BM_InconsistencySweep(benchmark::State& state) {
  DirtyStore dirty(0.4, 0.3, 78);
  MangroveSchema schema = MangroveSchema::UniversityDefaults();
  size_t found = 0;
  for (auto _ : state) {
    found = FindInconsistencies(dirty.store, schema).size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["inconsistencies"] = static_cast<double>(found);
}
BENCHMARK(BM_InconsistencySweep)->Unit(benchmark::kMillisecond);

// Deferred vs eager constraint checking on the publish path: eager
// publishing re-validates the affected subject against the whole store
// on every publish.
void BM_PublishDeferred(benchmark::State& state) {
  MangroveSchema schema = MangroveSchema::UniversityDefaults();
  TripleStore store;
  revere::mangrove::Publisher publisher(&schema, &store);
  // Preload a sizable store.
  DirtyStore preload(0.4, 0.2, 79);
  for (const auto& t : preload.store.Match({})) {
    (void)store.Add(t);
  }
  size_t i = 0;
  for (auto _ : state) {
    std::string page =
        "<body><span m=\"person\" m-id=\"p" + std::to_string(i) + "\">"
        "<span m=\"phone\">206-555</span></span></body>";
    (void)publisher.Publish("http://u/p" + std::to_string(i), page);
    ++i;
  }
  state.counters["store_triples"] = static_cast<double>(store.size());
  state.SetLabel("deferred (paper's design)");
}
BENCHMARK(BM_PublishDeferred)->Unit(benchmark::kMicrosecond);

void BM_PublishEagerChecking(benchmark::State& state) {
  MangroveSchema schema = MangroveSchema::UniversityDefaults();
  TripleStore store;
  revere::mangrove::Publisher publisher(&schema, &store);
  DirtyStore preload(0.4, 0.2, 79);
  for (const auto& t : preload.store.Match({})) {
    (void)store.Add(t);
  }
  size_t i = 0;
  for (auto _ : state) {
    std::string page =
        "<body><span m=\"person\" m-id=\"p" + std::to_string(i) + "\">"
        "<span m=\"phone\">206-555</span></span></body>";
    (void)publisher.Publish("http://u/p" + std::to_string(i), page);
    // Eager design: validate the whole database's single-valued
    // constraints before acknowledging the publish.
    auto problems = FindInconsistencies(store, schema);
    benchmark::DoNotOptimize(problems);
    ++i;
  }
  state.counters["store_triples"] = static_cast<double>(store.size());
  state.SetLabel("eager (rejected design)");
}
BENCHMARK(BM_PublishEagerChecking)->Unit(benchmark::kMicrosecond);

}  // namespace
