// Experiments P1 (parallel, allocation-lean query answering, ISSUE 2)
// and P3 (columnar vectorized execution, ISSUE 7).
//
// Sweeps (a) the binding representation — legacy string-keyed map
// copies vs slot-compiled vector<Value> bindings — and the on-demand
// hash-index path, single-threaded; and (b) the thread-pool worker
// count (1/2/4/8) for the parallel union evaluator and the parallel
// rewriting evaluation inside PdmsNetwork::Answer. Workloads: the
// Figure-2 six-university network and a scaled random-topology
// universe (datagen), with a full-sweep union, and a per-peer
// title-self-join union whose inner atom has a bound-but-unindexed
// position — the case the on-demand index builder exists for.
//
// Determinism contract under test: every parallel configuration must
// produce byte-identical rows to the serial evaluator (merge happens
// in rewriting order through one dedup set); the `identical` counter
// is 1.0 when the last measured run matched the serial reference.
//
// Counters: rows (result size), identical (determinism check),
// indexes (total indexed columns after the run — shows memoization).
//
// P3 sweeps the evaluation engine itself — map vs slots vs columnar —
// over the same title-self-join union P1 measures, one isolated
// fixture per engine. The benchmark names carry an `engine_<name>`
// suffix so the runner's --engine flag (and the smoke_engine_sweep CI
// target) can select one engine per process.
//
// REVERE_BENCH_SMOKE=1 in the environment shrinks the scaled universe
// so the REVERE_BENCH_SMOKE CMake target stays fast.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/datagen/topology.h"
#include "src/piazza/pdms.h"
#include "src/piazza/peer.h"
#include "src/query/cq.h"
#include "src/query/evaluate.h"
#include "src/storage/column_table.h"

namespace {

using revere::ThreadPool;
using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::NetworkCostModel;
using revere::piazza::PdmsNetwork;
using revere::piazza::QualifiedName;
using revere::query::Atom;
using revere::query::ConjunctiveQuery;
using revere::query::EvalEngine;
using revere::query::EvalOptions;
using revere::query::QTerm;
using revere::storage::Row;

bool SmokeRun() { return std::getenv("REVERE_BENCH_SMOKE") != nullptr; }

/// All pairs of same-title courses at peer `i` — a two-atom join whose
/// second atom gets its title position bound by the first, exercising
/// the probe-vs-scan (and on-demand index) decision.
ConjunctiveQuery TitleSelfJoin(const PdmsGenReport& report, size_t i) {
  std::string rel =
      QualifiedName(report.peer_names[i], report.relation_names[i]);
  Atom first{rel, {QTerm::Var("X"), QTerm::Var("T"), QTerm::Var("A")}};
  Atom second{rel, {QTerm::Var("Y"), QTerm::Var("T"), QTerm::Var("B")}};
  return ConjunctiveQuery("samet" + std::to_string(i),
                          {QTerm::Var("X"), QTerm::Var("Y")},
                          {first, second});
}

/// One scaled-universe instance. Benchmarks that must not share
/// memoized on-demand indexes (the binding-representation sweep) each
/// get their own copy; the worker sweeps intentionally share one.
struct EvalFixture {
  EvalFixture() {
    PdmsGenOptions options;
    options.topology = Topology::kRandom;
    options.peers = SmokeRun() ? 6 : 12;
    options.rows_per_peer = SmokeRun() ? 50 : 400;
    options.seed = 2003;
    auto r = BuildUniversityPdms(&net, options);
    if (r.ok()) report = r.value();
    auto rewritings = net.Reformulate(AllCoursesQuery(report, 0));
    if (rewritings.ok()) sweep = rewritings.value();
    for (size_t i = 0; i < report.peer_names.size(); ++i) {
      joins.push_back(TitleSelfJoin(report, i));
    }
  }

  size_t TotalIndexes() const {
    size_t n = 0;
    for (const auto& name : net.storage().TableNames()) {
      n += net.storage().GetTable(name).value()->index_count();
    }
    return n;
  }

  PdmsNetwork net;
  PdmsGenReport report;
  std::vector<ConjunctiveQuery> sweep;  // all-courses rewritings
  std::vector<ConjunctiveQuery> joins;  // one title self-join per peer
};

/// repr argument decoding for the binding sweeps.
EvalOptions ReprOptions(int repr) {
  EvalOptions options;
  options.engine = repr >= 1 ? EvalEngine::kSlots : EvalEngine::kMap;
  options.on_demand_indexes = repr >= 2;
  return options;
}

/// Fixtures isolated per repr so one configuration's memoized indexes
/// cannot speed up another's measurement.
EvalFixture& ReprFixture(int repr) {
  static EvalFixture* fixtures[3] = {nullptr, nullptr, nullptr};
  if (fixtures[repr] == nullptr) fixtures[repr] = new EvalFixture();
  return *fixtures[repr];
}

/// Shared fixture for the worker sweeps (slots + on-demand indexes;
/// the first run pays the index build, every run after probes).
EvalFixture& WorkerFixture() {
  static EvalFixture* fixture = new EvalFixture();
  return *fixture;
}

// --------------------------------------------------------------------
// (a) Binding representation, single-threaded.
//     arg0: 0 = legacy map bindings, 1 = slot bindings,
//           2 = slot bindings + on-demand indexes.
// --------------------------------------------------------------------

/// Full-sweep union: every rewriting scans one base table — isolates
/// the per-row binding cost with no join or index in sight.
void BM_P1_SweepBinding(benchmark::State& state) {
  int repr = static_cast<int>(state.range(0));
  EvalFixture& f = ReprFixture(repr);
  EvalOptions options = ReprOptions(repr);
  size_t rows = 0;
  for (auto _ : state) {
    auto result = revere::query::EvaluateUnion(f.net.storage(), f.sweep,
                                               options);
    rows = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["rewritings"] = static_cast<double>(f.sweep.size());
}
BENCHMARK(BM_P1_SweepBinding)->DenseRange(0, 1, 1)
    ->Unit(benchmark::kMillisecond);

/// Join union: the second atom's title position is bound but not
/// indexed — repr 2 builds the index on demand and probes, repr 0/1
/// rescan the table for every outer row.
void BM_P1_JoinBinding(benchmark::State& state) {
  int repr = static_cast<int>(state.range(0));
  EvalFixture& f = ReprFixture(repr);
  EvalOptions options = ReprOptions(repr);
  size_t rows = 0;
  for (auto _ : state) {
    auto result = revere::query::EvaluateUnion(f.net.storage(), f.joins,
                                               options);
    rows = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["indexes"] = static_cast<double>(f.TotalIndexes());
}
BENCHMARK(BM_P1_JoinBinding)->DenseRange(0, 2, 1)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------
// (b) Thread-pool scaling. arg0: worker count.
// --------------------------------------------------------------------

void BM_P1_UnionWorkers(benchmark::State& state) {
  EvalFixture& f = WorkerFixture();
  EvalOptions serial;  // slots + on-demand (defaults)
  auto reference = revere::query::EvaluateUnion(f.net.storage(), f.joins,
                                                serial);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  EvalOptions options;
  options.pool = &pool;
  std::vector<Row> rows;
  for (auto _ : state) {
    auto result =
        revere::query::EvaluateUnion(f.net.storage(), f.joins, options);
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["identical"] =
      reference.ok() && rows == reference.value() ? 1.0 : 0.0;
}
BENCHMARK(BM_P1_UnionWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_P1_AnswerWorkers(benchmark::State& state) {
  EvalFixture& f = WorkerFixture();
  auto query = AllCoursesQuery(f.report, 0);
  auto reference = f.net.Answer(query);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  NetworkCostModel cost;
  cost.eval.pool = &pool;
  std::vector<Row> rows;
  for (auto _ : state) {
    auto result = f.net.Answer(query, {}, nullptr, cost);
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["identical"] =
      reference.ok() && rows == reference.value() ? 1.0 : 0.0;
}
BENCHMARK(BM_P1_AnswerWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Figure-2 network, full Answer path with parallel rewriting
/// evaluation — the paper topology the rest of EXPERIMENTS.md uses.
void BM_P1_Fig2AnswerWorkers(benchmark::State& state) {
  static PdmsNetwork* net = nullptr;
  static PdmsGenReport* report = nullptr;
  if (net == nullptr) {
    net = new PdmsNetwork();
    report = new PdmsGenReport();
    PdmsGenOptions options;
    options.topology = Topology::kFigure2;
    options.rows_per_peer = SmokeRun() ? 50 : 200;
    options.seed = 2003;
    auto r = BuildUniversityPdms(net, options);
    if (r.ok()) *report = r.value();
  }
  auto query = AllCoursesQuery(*report, 0);
  auto reference = net->Answer(query);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  NetworkCostModel cost;
  cost.eval.pool = &pool;
  std::vector<Row> rows;
  for (auto _ : state) {
    auto result = net->Answer(query, {}, nullptr, cost);
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["identical"] =
      reference.ok() && rows == reference.value() ? 1.0 : 0.0;
}
BENCHMARK(BM_P1_Fig2AnswerWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --------------------------------------------------------------------
// Experiment P3 (ISSUE 7): the evaluation engine sweep over the P1
// title-self-join union. One isolated fixture per engine so the slot
// engine's memoized on-demand indexes (or the columnar engine's
// snapshots) cannot subsidize another engine's measurement, and one
// shared reference fixture whose slot-engine answer pins correctness.
// --------------------------------------------------------------------

EvalOptions EngineOptions(int engine_id) {
  EvalOptions options;
  switch (engine_id) {
    case 0:
      options.engine = EvalEngine::kMap;
      options.on_demand_indexes = false;
      break;
    case 1:
      options.engine = EvalEngine::kSlots;
      options.on_demand_index_min_rows = 0;
      break;
    case 3:  // columnar on the forced-scalar kernel table (ISSUE 8)
      options.engine = EvalEngine::kColumnar;
      options.use_simd = false;
      break;
    default:
      options.engine = EvalEngine::kColumnar;
      break;
  }
  return options;
}

EvalFixture& P3Fixture(int engine_id) {
  static EvalFixture* fixtures[4] = {nullptr, nullptr, nullptr, nullptr};
  if (fixtures[engine_id] == nullptr) fixtures[engine_id] = new EvalFixture();
  return *fixtures[engine_id];
}

/// Slot-engine rows computed once on a dedicated fixture: comparing
/// against it never builds indexes inside a measured fixture.
const std::vector<Row>& P3Reference() {
  static std::vector<Row>* reference = [] {
    static EvalFixture fixture;
    EvalOptions options = EngineOptions(1);
    auto result =
        revere::query::EvaluateUnion(fixture.net.storage(), fixture.joins,
                                     options);
    return new std::vector<Row>(result.ok() ? std::move(result).value()
                                            : std::vector<Row>{});
  }();
  return *reference;
}

void BM_P3_EngineJoin(benchmark::State& state, int engine_id) {
  EvalFixture& f = P3Fixture(engine_id);
  EvalOptions options = EngineOptions(engine_id);
  std::vector<Row> rows;
  for (auto _ : state) {
    auto result =
        revere::query::EvaluateUnion(f.net.storage(), f.joins, options);
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["identical"] = rows == P3Reference() ? 1.0 : 0.0;
}
BENCHMARK_CAPTURE(BM_P3_EngineJoin, engine_map, 0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_P3_EngineJoin, engine_slots, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_P3_EngineJoin, engine_columnar, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_P3_EngineJoin, engine_columnar_scalar, 3)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------
// Experiment P4 (ISSUE 8): decomposing the columnar runtime into join
// pipeline vs output boundary, scalar vs SIMD kernels. The join-only
// probe runs the identical pipeline but a constant head, so the
// boundary neither gathers codes nor decodes dictionaries; subtracting
// it from the full BM_P3_EngineJoin time isolates the boundary.
// --------------------------------------------------------------------

/// Title self-join with a constant head: same candidate streams, same
/// joins, near-free boundary (every surviving tuple dedups to one row).
ConjunctiveQuery TitleSelfJoinMarker(const PdmsGenReport& report, size_t i) {
  std::string rel =
      QualifiedName(report.peer_names[i], report.relation_names[i]);
  Atom first{rel, {QTerm::Var("X"), QTerm::Var("T"), QTerm::Var("A")}};
  Atom second{rel, {QTerm::Var("Y"), QTerm::Var("T"), QTerm::Var("B")}};
  return ConjunctiveQuery("marker" + std::to_string(i),
                          {QTerm::Const(revere::storage::Value("hit"))},
                          {first, second});
}

void BM_P4_JoinPipeline(benchmark::State& state, int engine_id) {
  EvalFixture& f = P3Fixture(engine_id);
  std::vector<ConjunctiveQuery> markers;
  for (size_t i = 0; i < f.report.peer_names.size(); ++i) {
    markers.push_back(TitleSelfJoinMarker(f.report, i));
  }
  EvalOptions options = EngineOptions(engine_id);
  std::vector<Row> rows;
  for (auto _ : state) {
    auto result =
        revere::query::EvaluateUnion(f.net.storage(), markers, options);
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
}
BENCHMARK_CAPTURE(BM_P4_JoinPipeline, engine_columnar, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_P4_JoinPipeline, engine_columnar_scalar, 3)
    ->Unit(benchmark::kMillisecond);

/// Cold-start cost the columnar engine pays once per table generation:
/// dictionary-encode + counting-sort every table in the fixture.
void BM_P3_ColumnarBuild(benchmark::State& state) {
  EvalFixture& f = P3Fixture(2);
  size_t rows = 0, dicts = 0;
  for (auto _ : state) {
    rows = dicts = 0;
    for (const auto& name : f.net.storage().TableNames()) {
      const auto* table = f.net.storage().GetTable(name).value();
      auto pinned = table->Snapshot();
      auto snap = revere::storage::ColumnTable::Build(
          pinned->size(),
          [&pinned](size_t i) -> const revere::storage::Row& {
            return pinned->row(i);
          },
          table->schema().arity(), 0);
      rows += snap->row_count();
      dicts += snap->dict_entries();
      benchmark::DoNotOptimize(snap);
    }
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["dict_entries"] = static_cast<double>(dicts);
}
BENCHMARK(BM_P3_ColumnarBuild)->Unit(benchmark::kMillisecond);

/// Columnar engine under the parallel union evaluator: rewritings fan
/// out across the pool, results merge in rewriting order — output must
/// stay byte-identical to the serial slot engine at any worker count.
void BM_P3_ColumnarWorkers(benchmark::State& state) {
  EvalFixture& f = P3Fixture(2);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  EvalOptions options = EngineOptions(2);
  options.pool = &pool;
  std::vector<Row> rows;
  for (auto _ : state) {
    auto result =
        revere::query::EvaluateUnion(f.net.storage(), f.joins, options);
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["identical"] = rows == P3Reference() ? 1.0 : 0.0;
}
BENCHMARK(BM_P3_ColumnarWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
