// Substrate micro-benchmarks: the relational executor and triple store
// underlying every REVERE component. Not tied to a paper claim; they
// bound what the higher layers can possibly achieve and catch substrate
// regressions.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/rdf/triple_store.h"
#include "src/storage/executor.h"
#include "src/storage/table.h"

namespace {

using revere::Rng;
using revere::storage::AggFunc;
using revere::storage::AggregateOp;
using revere::storage::CompareOp;
using revere::storage::FilterOp;
using revere::storage::HashJoinOp;
using revere::storage::IndexLookupOp;
using revere::storage::ScanOp;
using revere::storage::Table;
using revere::storage::TableSchema;
using revere::storage::Value;

std::unique_ptr<Table> MakeTable(size_t rows, size_t distinct_keys,
                                 uint64_t seed) {
  auto table = std::make_unique<Table>(TableSchema(
      "t", {{"k", revere::storage::ValueType::kString},
            {"v", revere::storage::ValueType::kInt}}));
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    (void)table->Insert(
        {Value("k" + std::to_string(rng.Uniform(distinct_keys))),
         Value(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  return table;
}

void BM_Scan(benchmark::State& state) {
  auto table = MakeTable(static_cast<size_t>(state.range(0)), 64, 1);
  for (auto _ : state) {
    ScanOp scan(table.get());
    auto rows = Collect(&scan);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Scan)->Arg(1000)->Arg(100000);

void BM_FilterSelectivity(benchmark::State& state) {
  auto table = MakeTable(100000, 64, 2);
  int64_t cutoff = state.range(0);  // selectivity knob: v < cutoff
  for (auto _ : state) {
    auto plan = FilterOp::Compare(std::make_unique<ScanOp>(table.get()), 1,
                                  CompareOp::kLt, Value(cutoff));
    auto rows = Collect(plan.get());
    benchmark::DoNotOptimize(rows);
  }
  state.counters["cutoff"] = static_cast<double>(cutoff);
}
BENCHMARK(BM_FilterSelectivity)->Arg(10)->Arg(500)->Arg(1000);

void BM_IndexLookupVsScan(benchmark::State& state) {
  auto table = MakeTable(static_cast<size_t>(state.range(0)), 1024, 3);
  bool use_index = state.range(1) != 0;
  if (use_index) {
    (void)table->CreateIndex(0);
  }
  for (auto _ : state) {
    if (use_index) {
      IndexLookupOp lookup(table.get(), 0, Value("k7"));
      auto rows = Collect(&lookup);
      benchmark::DoNotOptimize(rows);
    } else {
      auto plan = FilterOp::Compare(std::make_unique<ScanOp>(table.get()),
                                    0, CompareOp::kEq, Value("k7"));
      auto rows = Collect(plan.get());
      benchmark::DoNotOptimize(rows);
    }
  }
  state.SetLabel(use_index ? "indexed" : "scan");
}
BENCHMARK(BM_IndexLookupVsScan)
    ->ArgsProduct({{10000, 100000}, {0, 1}});

void BM_HashJoin(benchmark::State& state) {
  auto left = MakeTable(static_cast<size_t>(state.range(0)), 256, 4);
  auto right = MakeTable(static_cast<size_t>(state.range(0)) / 4, 256, 5);
  size_t out = 0;
  for (auto _ : state) {
    HashJoinOp join(std::make_unique<ScanOp>(left.get()),
                    std::make_unique<ScanOp>(right.get()), 0, 0);
    out = Collect(&join).size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["output_rows"] = static_cast<double>(out);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);

void BM_GroupByAggregate(benchmark::State& state) {
  auto table = MakeTable(100000, static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    AggregateOp agg(std::make_unique<ScanOp>(table.get()), {0},
                    {{AggFunc::kCount, 0, "n"}, {AggFunc::kAvg, 1, "avg"}});
    auto rows = Collect(&agg);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["groups"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GroupByAggregate)->Arg(8)->Arg(4096);

void BM_TripleStoreInsert(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    revere::rdf::TripleStore store;
    for (int i = 0; i < state.range(0); ++i) {
      (void)store.Add("s" + std::to_string(rng.Uniform(1000)), "p",
                      "o" + std::to_string(i), "src");
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TripleStoreInsert)->Arg(1000)->Arg(10000);

void BM_TripleStoreMatch(benchmark::State& state) {
  revere::rdf::TripleStore store;
  Rng rng(8);
  size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    (void)store.Add("s" + std::to_string(rng.Uniform(n / 10 + 1)),
                    "p" + std::to_string(rng.Uniform(8)),
                    "o" + std::to_string(rng.Uniform(100)), "src");
  }
  for (auto _ : state) {
    auto hits = store.Match({"s7", "p1", std::nullopt});
    benchmark::DoNotOptimize(hits);
  }
  state.counters["triples"] = static_cast<double>(store.size());
}
BENCHMARK(BM_TripleStoreMatch)->Arg(10000)->Arg(100000);

}  // namespace
