// Experiment R2: SLOs of the overload-safe serving front end (ISSUE 6)
// on the Figure-2 six-university PDMS.
//
// Three questions, per EXPERIMENTS.md:
//
//   1. Load sweep: closed-loop clients (zero think time) against a
//      fixed worker pool — how do interactive p50/p99, throughput, and
//      the shed rate move as offered concurrency crosses saturation?
//      (Acceptance: the server sheds instead of queueing without bound;
//      whatever it admits, it finishes.)
//   2. Graceful degradation: 2x saturating load plus 20% flaky peers
//      and tight interactive deadlines. Interactive p99 must stay
//      bounded and every submitted request must be accounted exactly
//      (admitted + shed == submitted; completed + deadline_exceeded +
//      failed == admitted).
//   3. Breaker contact cut: same overload with dead peers, breakers on
//      vs off. Open breakers must cut contacts to dead peers by >= 90%
//      (computed from the dead_contacts counters of the two rows).
//
// The workload is the plan-cache bench's serving mix, zipfian-skewed: a
// hot set of per-peer lookups (cached plans after first touch) plus
// never-repeated one-off lookups (guaranteed plan-cache misses), drawn
// from a seeded Rng so every run sees the same stream. Clients are
// closed-loop — each thread submits, waits, submits again — so offered
// load is controlled by the client count, and the queue can never grow
// beyond (clients - workers) even before shedding.
//
// Wall-clock latencies here are real (the serving path is measured end
// to end); the fault model's simulated milliseconds still never touch
// wall time.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/datagen/topology.h"
#include "src/piazza/fault.h"
#include "src/piazza/pdms.h"
#include "src/query/cq.h"
#include "src/serve/server.h"

namespace {

using revere::Rng;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::FailurePolicy;
using revere::piazza::FaultInjector;
using revere::piazza::PdmsNetwork;
using revere::query::ConjunctiveQuery;
using revere::serve::Lane;
using revere::serve::LaneSlo;
using revere::serve::RevereServer;
using revere::serve::ServeOptions;
using revere::serve::ServeRequest;
using revere::serve::ServeResult;
using revere::serve::ServerStats;

bool SmokeRun() { return std::getenv("REVERE_BENCH_SMOKE") != nullptr; }

constexpr size_t kWorkers = 2;

struct ServeFixture {
  ServeFixture() {
    PdmsGenOptions options;
    options.topology = Topology::kFigure2;
    options.rows_per_peer = SmokeRun() ? 10 : 60;
    options.seed = 2003;
    auto r = BuildUniversityPdms(&net, options);
    if (r.ok()) report = r.value();
    for (size_t p = 0; p < report.peer_names.size(); ++p) {
      hot_set.push_back(LookupQuery(p, "hot" + std::to_string(p)));
    }
  }

  ConjunctiveQuery LookupQuery(size_t peer, const std::string& id) const {
    std::string text = "q(T, P) :- " + report.peer_names[peer] + ":" +
                       report.relation_names[peer] + "(\"" + id + "\", T, P)";
    return ConjunctiveQuery::Parse(text).value();
  }

  /// Zipf-skewed serving mix: mostly hot-set queries (rank drawn with
  /// theta = 0.9), occasionally a fresh one-off that can never hit the
  /// plan cache. `salt` keeps one-off ids globally unique.
  ConjunctiveQuery Draw(Rng* rng, size_t salt) const {
    if (rng->Bernoulli(0.2)) {
      return LookupQuery(salt % report.peer_names.size(),
                         "oneoff" + std::to_string(salt));
    }
    return hot_set[rng->Zipf(hot_set.size(), 0.9)];
  }

  PdmsNetwork net;
  PdmsGenReport report;
  std::vector<ConjunctiveQuery> hot_set;
};

ServeFixture& Fixture() {
  static ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

struct StormResult {
  ServerStats stats;
  LaneSlo interactive;
  LaneSlo batch;
  size_t degraded = 0;  // ok results with an incomplete answer
  double wall_seconds = 0.0;
};

/// Runs `clients` closed-loop threads, each firing `per_client`
/// requests back to back, and snapshots the server afterwards.
StormResult RunStorm(RevereServer* server, const ServeFixture& f,
                     size_t clients, size_t per_client, double deadline_ms,
                     double batch_fraction, uint64_t seed) {
  std::atomic<size_t> degraded{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + 1000 * t);
      for (size_t i = 0; i < per_client; ++i) {
        ServeRequest req;
        req.query = f.Draw(&rng, t * per_client + i);
        bool batch = rng.UniformDouble() < batch_fraction;
        req.lane = batch ? Lane::kBatch : Lane::kInteractive;
        // Only interactive traffic carries the tight deadline; batch
        // work is deadline-free and rides the low-priority lane.
        if (!batch && deadline_ms > 0.0) req.deadline_ms = deadline_ms;
        ServeResult r = server->SubmitAndWait(std::move(req));
        if (r.status.ok() && !r.stats.completeness.complete()) {
          degraded.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  StormResult out;
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  out.stats = server->Snapshot();
  out.interactive = server->Slo(Lane::kInteractive);
  out.batch = server->Slo(Lane::kBatch);
  out.degraded = degraded.load();
  return out;
}

bool AccountingExact(const ServerStats& s, size_t submitted) {
  return s.submitted == submitted &&
         s.submitted ==
             s.admitted + s.shed_queue_full + s.shed_unmeetable &&
         s.admitted == s.completed + s.deadline_exceeded + s.failed;
}

void ReportStorm(benchmark::State& state, const StormResult& r) {
  const ServerStats& s = r.stats;
  double submitted = static_cast<double>(s.submitted);
  state.counters["qps"] =
      r.wall_seconds > 0.0
          ? static_cast<double>(s.completed) / r.wall_seconds
          : 0.0;
  state.counters["interactive_p50_us"] = r.interactive.p50_us;
  state.counters["interactive_p99_us"] = r.interactive.p99_us;
  state.counters["batch_p99_us"] = r.batch.p99_us;
  state.counters["shed_rate"] =
      submitted > 0.0
          ? static_cast<double>(s.shed_queue_full + s.shed_unmeetable) /
                submitted
          : 0.0;
  state.counters["deadline_rate"] =
      submitted > 0.0 ? static_cast<double>(s.deadline_exceeded) / submitted
                      : 0.0;
  state.counters["degraded"] = static_cast<double>(r.degraded);
  state.counters["breaker_skips"] = static_cast<double>(s.breaker_skips);
}

// ------------------------------------------------------- 1. load sweep

/// arg0: closed-loop client count. kWorkers workers throughout, so the
/// saturation knee sits at arg0 == kWorkers; beyond it the queue and
/// then the shed rate absorb the excess.
void BM_ServeSlo_LoadSweep(benchmark::State& state) {
  ServeFixture& f = Fixture();
  size_t clients = static_cast<size_t>(state.range(0));
  size_t per_client = SmokeRun() ? 4 : 40;
  size_t storms = 0;
  StormResult last;
  for (auto _ : state) {
    ServeOptions opts;
    opts.workers = kWorkers;
    opts.queue_capacity = 8;
    opts.metrics = false;
    RevereServer server(&f.net, opts);
    last = RunStorm(&server, f, clients, per_client, /*deadline_ms=*/0.0,
                    /*batch_fraction=*/0.25, /*seed=*/7 + storms);
    ++storms;
    benchmark::DoNotOptimize(last.stats.completed);
  }
  ReportStorm(state, last);
  state.counters["accounting_exact"] =
      AccountingExact(last.stats, clients * per_client) ? 1.0 : 0.0;
  state.SetItemsProcessed(
      static_cast<int64_t>(storms * clients * per_client));
}
BENCHMARK(BM_ServeSlo_LoadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// --------------------------------------- 2. graceful degradation at 2x

/// 2x saturating closed-loop load (4 clients on 2 workers), 20% of
/// peers flaky (40% drop rate), tight interactive deadlines. This is
/// the R2 acceptance row: p99 bounded by the deadline + one service
/// time, exact accounting, honest CompletenessReports.
void BM_ServeSlo_GracefulDegradation(benchmark::State& state) {
  ServeFixture& f = Fixture();
  size_t clients = 2 * kWorkers;
  size_t per_client = SmokeRun() ? 4 : 50;
  size_t storms = 0;
  StormResult last;
  for (auto _ : state) {
    FaultInjector injector(41 + storms);
    // "20% flaky peers": 1-2 of the six universities drop 40% of
    // contacts (seeded, so every run flakes the same peers).
    injector.InjectFraction(f.report.peer_names, 0.2,
                            {revere::piazza::FaultMode::kFlaky, 0.4, 0.0});
    ServeOptions opts;
    opts.workers = kWorkers;
    opts.queue_capacity = 8;
    opts.breaker.min_samples = 4;
    opts.metrics = false;
    opts.cost.faults = &injector;
    opts.cost.failure_policy = FailurePolicy::kBestEffort;
    opts.cost.retry.max_attempts = 2;
    opts.cost.retry.jitter = 0.5;  // decorrelate the retry waves
    opts.cost.retry.jitter_seed = 17;
    RevereServer server(&f.net, opts);
    // ~10x the typical end-to-end latency: loose enough that most
    // requests make it, tight enough that overload actually trips the
    // unmeetable-shed and deadline-exceeded paths being measured.
    last = RunStorm(&server, f, clients, per_client, /*deadline_ms=*/0.25,
                    /*batch_fraction=*/0.25, /*seed=*/100 + storms);
    ++storms;
    benchmark::DoNotOptimize(last.stats.completed);
  }
  ReportStorm(state, last);
  state.counters["accounting_exact"] =
      AccountingExact(last.stats, clients * per_client) ? 1.0 : 0.0;
  state.SetItemsProcessed(
      static_cast<int64_t>(storms * clients * per_client));
}
BENCHMARK(BM_ServeSlo_GracefulDegradation);

// ------------------------------------------- 3. breaker contact cut

/// arg0: breakers on (1) / off (0). One university is down; every
/// request's reformulation still reaches it. The dead_contacts counter
/// is the R2 numerator: on-row contacts must be <= 10% of the off-row's
/// (>= 90% cut).
void BM_ServeSlo_BreakerContactCut(benchmark::State& state) {
  ServeFixture& f = Fixture();
  bool breakers = state.range(0) == 1;
  size_t clients = 2 * kWorkers;
  size_t per_client = SmokeRun() ? 4 : 50;
  size_t storms = 0;
  size_t dead_contacts = 0, requests = 0;
  StormResult last;
  for (auto _ : state) {
    FaultInjector injector(5);
    const std::string& dead = f.report.peer_names.back();
    injector.SetDown(dead);
    ServeOptions opts;
    opts.workers = kWorkers;
    opts.queue_capacity = 8;
    opts.use_breakers = breakers;
    opts.breaker.min_samples = 4;
    opts.breaker.probe_after_skips = 32;
    opts.metrics = false;
    opts.cost.faults = &injector;
    opts.cost.failure_policy = FailurePolicy::kBestEffort;
    opts.cost.retry.max_attempts = 3;
    RevereServer server(&f.net, opts);
    last = RunStorm(&server, f, clients, per_client, /*deadline_ms=*/0.0,
                    /*batch_fraction=*/0.0, /*seed=*/55 + storms);
    ++storms;
    dead_contacts += injector.contacts_to(dead);
    requests += clients * per_client;
  }
  ReportStorm(state, last);
  state.counters["dead_contacts"] =
      static_cast<double>(dead_contacts) / static_cast<double>(storms);
  state.counters["dead_contacts_per_req"] =
      requests > 0
          ? static_cast<double>(dead_contacts) / static_cast<double>(requests)
          : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(requests));
}
BENCHMARK(BM_ServeSlo_BreakerContactCut)->Arg(0)->Arg(1);

}  // namespace
