// Experiment C4: updategram-based incremental view maintenance versus
// recompute (§3.1.2: "we would prefer to make incremental updates
// versus simply invalidating views and re-reading data ... the query
// optimizer decides which updategrams to use in a cost-based fashion").
//
// Sweeps base-table size and delta size for a two-way join view.
// Paper-predicted shape: incremental wins for small deltas and loses to
// recompute as the delta approaches the base size — a crossover the
// cost model must land on the right side of.

#include <benchmark/benchmark.h>

#include <string>

#include "src/common/rng.h"
#include "src/piazza/views.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"

namespace {

using revere::Rng;
using revere::piazza::ApplyToBase;
using revere::piazza::EstimateRefreshCost;
using revere::piazza::MaterializedView;
using revere::piazza::RefreshChoice;
using revere::piazza::Updategram;
using revere::query::ConjunctiveQuery;
using revere::storage::Catalog;
using revere::storage::Row;
using revere::storage::TableSchema;
using revere::storage::Value;

ConjunctiveQuery ViewDef() {
  return ConjunctiveQuery::Parse("v(A, C) :- r(A, B), s(B, C)").value();
}

void FillBase(Catalog* catalog, size_t rows, Rng* rng) {
  auto r = catalog->CreateTable(TableSchema::AllStrings("r", {"a", "b"}));
  auto s = catalog->CreateTable(TableSchema::AllStrings("s", {"b", "c"}));
  size_t join_keys = rows / 4 + 1;
  for (size_t i = 0; i < rows; ++i) {
    (void)(*r)->Insert({Value("a" + std::to_string(i)),
                        Value("k" + std::to_string(rng->Index(join_keys)))});
    (void)(*s)->Insert({Value("k" + std::to_string(rng->Index(join_keys))),
                        Value("c" + std::to_string(i))});
  }
}

Updategram MakeDelta(size_t inserts, size_t base, Rng* rng) {
  Updategram u;
  u.relation = "r";
  size_t join_keys = base / 4 + 1;
  for (size_t i = 0; i < inserts; ++i) {
    u.inserts.push_back(
        {Value("new" + std::to_string(i)),
         Value("k" + std::to_string(rng->Index(join_keys)))});
  }
  return u;
}

// arg0: base rows, arg1: delta rows.
void BM_IncrementalMaintain(benchmark::State& state) {
  size_t base = static_cast<size_t>(state.range(0));
  size_t delta_size = static_cast<size_t>(state.range(1));
  Rng rng(7);
  Catalog catalog;
  FillBase(&catalog, base, &rng);
  MaterializedView view(ViewDef());
  if (!view.Recompute(catalog).ok()) {
    state.SkipWithError("recompute failed");
    return;
  }
  Updategram delta = MakeDelta(delta_size, base, &rng);
  if (!ApplyToBase(&catalog, delta).ok()) {
    state.SkipWithError("apply failed");
    return;
  }
  for (auto _ : state) {
    MaterializedView working = view;  // copy: same pre-delta state
    auto status = working.ApplyUpdategram(catalog, delta);
    benchmark::DoNotOptimize(status);
  }
  auto estimate = EstimateRefreshCost(catalog, ViewDef(), delta);
  state.counters["view_rows"] = static_cast<double>(view.size());
  state.counters["cost_model_says_incremental"] =
      estimate.choice == RefreshChoice::kIncremental ? 1.0 : 0.0;
}
BENCHMARK(BM_IncrementalMaintain)
    ->ArgsProduct({{1000, 10000}, {1, 10, 100, 1000}})
    ->Unit(benchmark::kMicrosecond);

void BM_FullRecompute(benchmark::State& state) {
  size_t base = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Catalog catalog;
  FillBase(&catalog, base, &rng);
  MaterializedView view(ViewDef());
  for (auto _ : state) {
    auto status = view.Recompute(catalog);
    benchmark::DoNotOptimize(status);
  }
  state.counters["view_rows"] = static_cast<double>(view.size());
}
BENCHMARK(BM_FullRecompute)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

// Updategram propagation to a downstream peer: derive the view-level
// delta instead of shipping the whole view (§3.1.2: "Updategrams on
// base data can be combined to create updategrams for views").
void BM_DeriveViewDelta(benchmark::State& state) {
  size_t base = static_cast<size_t>(state.range(0));
  Rng rng(9);
  Catalog catalog;
  FillBase(&catalog, base, &rng);
  MaterializedView view(ViewDef());
  if (!view.Recompute(catalog).ok()) {
    state.SkipWithError("recompute failed");
    return;
  }
  Updategram delta = MakeDelta(10, base, &rng);
  if (!ApplyToBase(&catalog, delta).ok()) {
    state.SkipWithError("apply failed");
    return;
  }
  size_t forwarded = 0;
  for (auto _ : state) {
    auto view_delta = view.DeriveViewDelta(catalog, delta);
    forwarded = view_delta.ok() ? view_delta.value().size() : 0;
    benchmark::DoNotOptimize(view_delta);
  }
  state.counters["forwarded_rows"] = static_cast<double>(forwarded);
  state.counters["full_view_rows"] = static_cast<double>(view.size());
}
BENCHMARK(BM_DeriveViewDelta)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
