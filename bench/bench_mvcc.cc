// Experiment C4-under-load (ISSUE 10): MVCC snapshot storage — readers
// never block while updategrams land.
//
// The pre-MVCC Table demanded quiescence: every unguarded rows() read
// raced concurrent writers, so C4's "updategrams vs recompute" numbers
// could only be measured with the writer stopped. This bench measures
// the claim the snapshot refactor makes instead:
//
//  - SnapshotPin: the cost of pinning one immutable version — a
//    shared-lock pointer copy, O(1) in table size, the whole price a
//    reader pays for isolation.
//  - ReaderQuiesced: the P1 title-self-join union with no writer — the
//    baseline reader latency distribution (p50/p99 counters).
//  - ReaderUnderWriter: the same union while a writer thread applies
//    updategram batches (insert batch i, delete batch i-1 — one
//    publish each) to every peer's relation. arg0 paces the writer:
//    the microseconds it sleeps between updategrams (0 = saturation —
//    a flat-out busy loop that also measures how hard per-version
//    index rebuilds can possibly get). Acceptance reads the paced arm
//    (a sustained ~1k updategrams/sec stream): reader p99 within 2x of
//    the quiesced baseline with writer throughput > 0 — readers never
//    block writers, writers never stall readers.
//  - WriterUnderReaders: the inverse arm — measured updategram
//    application throughput while reader threads continuously pin
//    snapshots and run the join union against them.
//
// Counters: p50_ms / p99_ms (per-iteration reader latency quantiles),
// updategrams_per_sec (writer progress during the measured window),
// rows (result size sanity), versions (head version advance — proof
// the writer actually published during the run).
//
// REVERE_BENCH_SMOKE=1 shrinks the universe so CI smoke-runs every arm
// in milliseconds.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/datagen/topology.h"
#include "src/piazza/pdms.h"
#include "src/piazza/peer.h"
#include "src/piazza/views.h"
#include "src/query/cq.h"
#include "src/query/evaluate.h"
#include "src/storage/table.h"

namespace {

using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::ApplyToBase;
using revere::piazza::PdmsNetwork;
using revere::piazza::QualifiedName;
using revere::piazza::Updategram;
using revere::query::Atom;
using revere::query::ConjunctiveQuery;
using revere::query::QTerm;
using revere::storage::Row;
using revere::storage::Table;
using revere::storage::Value;

bool SmokeRun() { return std::getenv("REVERE_BENCH_SMOKE") != nullptr; }

/// The P1 reader workload: all pairs of same-title courses at peer `i`.
ConjunctiveQuery TitleSelfJoin(const PdmsGenReport& report, size_t i) {
  std::string rel =
      QualifiedName(report.peer_names[i], report.relation_names[i]);
  Atom first{rel, {QTerm::Var("X"), QTerm::Var("T"), QTerm::Var("A")}};
  Atom second{rel, {QTerm::Var("Y"), QTerm::Var("T"), QTerm::Var("B")}};
  return ConjunctiveQuery("samet" + std::to_string(i),
                          {QTerm::Var("X"), QTerm::Var("Y")},
                          {first, second});
}

struct MvccFixture {
  MvccFixture() {
    PdmsGenOptions options;
    options.topology = Topology::kRandom;
    options.peers = SmokeRun() ? 4 : 12;
    options.rows_per_peer = SmokeRun() ? 40 : 400;
    options.seed = 2010;
    auto r = BuildUniversityPdms(&net, options);
    if (r.ok()) report = r.value();
    for (size_t i = 0; i < report.peer_names.size(); ++i) {
      joins.push_back(TitleSelfJoin(report, i));
      relations.push_back(
          QualifiedName(report.peer_names[i], report.relation_names[i]));
    }
  }

  uint64_t TotalVersions() const {
    uint64_t v = 0;
    for (const auto& rel : relations) {
      auto t = net.storage().GetTable(rel);
      if (t.ok()) v += t.value()->generation();
    }
    return v;
  }

  PdmsNetwork net;
  PdmsGenReport report;
  std::vector<ConjunctiveQuery> joins;
  std::vector<std::string> relations;
};

MvccFixture& Fixture() {
  static MvccFixture* fixture = new MvccFixture();
  return *fixture;
}

/// One updategram for `rel`, round `round`: inserts a fresh 3-row batch
/// and deletes round-1's batch, so tables stay bounded while every
/// application publishes exactly one new version per ApplyToBase step.
Updategram ChurnGram(const std::string& rel, uint64_t round) {
  Updategram u;
  u.relation = rel;
  for (int j = 0; j < 3; ++j) {
    std::string id = "w" + std::to_string(round) + "_" + std::to_string(j);
    u.inserts.push_back({Value(id), Value("Churn Title"), Value("writer")});
    if (round > 0) {
      std::string old =
          "w" + std::to_string(round - 1) + "_" + std::to_string(j);
      u.deletes.push_back({Value(old), Value("Churn Title"), Value("writer")});
    }
  }
  return u;
}

/// Latency quantile over per-iteration samples (nearest-rank).
double QuantileMs(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
  return samples[std::min(rank, samples.size() - 1)];
}

// --------------------------------------------------------------------
// Snapshot pinning is O(1): the same pointer-copy cost at any size.
// arg0: rows in the table.
// --------------------------------------------------------------------
void BM_MVCC_SnapshotPin(benchmark::State& state) {
  Table table(revere::storage::TableSchema::AllStrings(
      "pin", {"id", "title", "instructor"}));
  std::vector<Row> rows;
  for (int64_t i = 0; i < state.range(0); ++i) {
    rows.push_back({Value("r" + std::to_string(i)), Value("t"), Value("x")});
  }
  if (!table.InsertAll(rows).ok()) {
    state.SkipWithError("fixture insert failed");
    return;
  }
  for (auto _ : state) {
    auto snap = table.Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MVCC_SnapshotPin)->Arg(256)->Arg(16384)
    ->Unit(benchmark::kNanosecond);

// --------------------------------------------------------------------
// Reader baseline: the P1 join union, quiesced.
// --------------------------------------------------------------------
void BM_MVCC_ReaderQuiesced(benchmark::State& state) {
  MvccFixture& f = Fixture();
  std::vector<double> latencies_ms;
  std::vector<Row> rows;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = revere::query::EvaluateUnion(f.net.storage(), f.joins);
    auto end = std::chrono::steady_clock::now();
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["p50_ms"] = QuantileMs(latencies_ms, 0.50);
  state.counters["p99_ms"] = QuantileMs(latencies_ms, 0.99);
}
BENCHMARK(BM_MVCC_ReaderQuiesced)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --------------------------------------------------------------------
// The headline arm: the same reader while a writer thread applies
// updategram batches to every relation, round-robin, flat out.
// --------------------------------------------------------------------
void BM_MVCC_ReaderUnderWriter(benchmark::State& state) {
  MvccFixture& f = Fixture();
  const auto pace = std::chrono::microseconds(state.range(0));
  std::atomic<bool> done{false};
  std::atomic<uint64_t> applied{0};
  uint64_t versions_before = f.TotalVersions();
  std::thread writer([&] {
    uint64_t round = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::string& rel = f.relations[round % f.relations.size()];
      if (ApplyToBase(f.net.mutable_storage(),
                      ChurnGram(rel, round / f.relations.size()))
              .ok()) {
        applied.fetch_add(1, std::memory_order_relaxed);
      }
      ++round;
      if (pace.count() > 0) std::this_thread::sleep_for(pace);
    }
  });

  std::vector<double> latencies_ms;
  std::vector<Row> rows;
  auto window_start = std::chrono::steady_clock::now();
  uint64_t applied_start = applied.load();
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = revere::query::EvaluateUnion(f.net.storage(), f.joins);
    auto end = std::chrono::steady_clock::now();
    rows = result.ok() ? std::move(result).value() : std::vector<Row>{};
    benchmark::DoNotOptimize(rows);
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  double window_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - window_start)
                        .count();
  uint64_t applied_in_window = applied.load() - applied_start;
  done.store(true, std::memory_order_release);
  writer.join();

  state.counters["rows"] = static_cast<double>(rows.size());
  state.counters["p50_ms"] = QuantileMs(latencies_ms, 0.50);
  state.counters["p99_ms"] = QuantileMs(latencies_ms, 0.99);
  state.counters["updategrams_per_sec"] =
      window_s > 0 ? static_cast<double>(applied_in_window) / window_s : 0;
  state.counters["versions"] =
      static_cast<double>(f.TotalVersions() - versions_before);
}
BENCHMARK(BM_MVCC_ReaderUnderWriter)->Arg(1000)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --------------------------------------------------------------------
// Inverse arm: measured writer throughput while reader threads pin and
// join continuously. arg0: concurrent reader threads.
// --------------------------------------------------------------------
void BM_MVCC_WriterUnderReaders(benchmark::State& state) {
  MvccFixture& f = Fixture();
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int64_t r = 0; r < state.range(0); ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto result = revere::query::EvaluateUnion(f.net.storage(), f.joins);
        benchmark::DoNotOptimize(result);
      }
    });
  }

  uint64_t round = 0;
  uint64_t applied = 0;
  for (auto _ : state) {
    const std::string& rel = f.relations[round % f.relations.size()];
    if (ApplyToBase(f.net.mutable_storage(),
                    ChurnGram(rel, round / f.relations.size()))
            .ok()) {
      ++applied;
    }
    ++round;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  state.counters["updategrams_applied"] = static_cast<double>(applied);
  state.counters["readers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MVCC_WriterUnderReaders)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
