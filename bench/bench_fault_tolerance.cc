// Experiment R1: fault-tolerant query answering on the Figure-2
// six-university PDMS.
//
// Sweeps the peer failure rate from 0% to 50% and measures answer
// completeness and simulated latency under three policies:
//
//   fail-fast            — any unreachable peer aborts the answer
//   best-effort          — skip rewritings touching dead peers
//   best-effort + retry  — 4 attempts, exponential backoff
//
// Predicted shape (recorded in EXPERIMENTS.md): fail-fast returns
// kUnavailable at any nonzero permanent-failure rate; best-effort
// completeness degrades smoothly and monotonically (each down peer
// costs exactly its share of the inventory, never wrong rows); under
// purely *transient* (flaky) failures, retries restore >=90%
// completeness at a bounded simulated-latency cost.
//
// Every run is deterministic: failures are drawn from a seeded
// FaultInjector and all time is simulated through NetworkCostModel, so
// counters are byte-identical across runs with the same seed.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/datagen/topology.h"
#include "src/piazza/fault.h"
#include "src/piazza/pdms.h"
#include "src/query/cq.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::ExecutionStats;
using revere::piazza::FailurePolicy;
using revere::piazza::FaultInjector;
using revere::piazza::FaultMode;
using revere::piazza::NetworkCostModel;
using revere::piazza::PdmsNetwork;
using revere::piazza::PeerFault;
using revere::StatusCode;

constexpr uint64_t kFaultSeed = 4242;

struct FaultFixture {
  FaultFixture() {
    PdmsGenOptions options;
    options.topology = Topology::kFigure2;
    options.rows_per_peer = 200;
    options.seed = 2003;
    auto r = BuildUniversityPdms(&net, options);
    if (r.ok()) report = r.value();
  }
  PdmsNetwork net;
  PdmsGenReport report;
};

FaultFixture& Fixture() {
  static FaultFixture* fixture = new FaultFixture();
  return *fixture;
}

/// Peers other than the querying peer (index 0) — the candidates for
/// failure injection.
std::vector<std::string> RemotePeers(const FaultFixture& f) {
  return {f.report.peer_names.begin() + 1, f.report.peer_names.end()};
}

struct RunResult {
  StatusCode code = StatusCode::kOk;
  size_t answers = 0;
  ExecutionStats stats;
};

/// One deterministic Answer at peer 0. A fresh injector per call (same
/// seed) keeps every invocation — and every benchmark iteration —
/// byte-identical.
RunResult RunOnce(FaultFixture& f, double rate, FaultMode mode,
                  FailurePolicy policy, int max_attempts) {
  FaultInjector inj(kFaultSeed);
  std::vector<std::string> remote = RemotePeers(f);
  if (mode == FaultMode::kDown) {
    // Deterministic failure *count* — round(rate * 5) peers down; the
    // shared seed makes the down-sets nested across rates, so the
    // completeness sweep is exactly monotone.
    inj.InjectFraction(remote, rate, PeerFault{FaultMode::kDown, 0.0, 0.0});
  } else {
    // Transient: every remote peer drops each contact with prob `rate`.
    for (const auto& peer : remote) inj.SetFlaky(peer, rate);
  }
  NetworkCostModel cost;
  cost.faults = &inj;
  cost.failure_policy = policy;
  cost.retry.max_attempts = max_attempts;
  cost.retry.base_backoff_ms = 1.0;
  cost.retry.deadline_ms = 50.0;

  RunResult result;
  auto rows = f.net.Answer(AllCoursesQuery(f.report, 0), {}, &result.stats,
                           cost);
  result.code = rows.ok() ? StatusCode::kOk : rows.status().code();
  result.answers = rows.ok() ? rows.value().size() : 0;
  return result;
}

void ReportCounters(benchmark::State& state, FaultFixture& f,
                    const RunResult& r) {
  state.counters["completeness"] =
      static_cast<double>(r.answers) / static_cast<double>(f.report.total_rows);
  state.counters["unavailable"] = r.code == StatusCode::kOk ? 0.0 : 1.0;
  state.counters["skipped"] =
      static_cast<double>(r.stats.completeness.rewritings_skipped);
  state.counters["retries"] =
      static_cast<double>(r.stats.completeness.retries_attempted);
  state.counters["simulated_net_ms"] = r.stats.simulated_network_ms;
  state.counters["backoff_ms"] = r.stats.completeness.backoff_ms;
  state.counters["unreachable_peers"] =
      static_cast<double>(r.stats.completeness.unreachable_peers.size());
}

/// arg0: permanent-failure rate in tenths (0..5 -> 0%..50%).
void BM_Fault_PermanentFailFast(benchmark::State& state) {
  FaultFixture& f = Fixture();
  double rate = static_cast<double>(state.range(0)) / 10.0;
  RunResult r;
  for (auto _ : state) {
    r = RunOnce(f, rate, FaultMode::kDown, FailurePolicy::kFailFast, 1);
    benchmark::DoNotOptimize(r.answers);
  }
  ReportCounters(state, f, r);
}
BENCHMARK(BM_Fault_PermanentFailFast)->DenseRange(0, 5, 1);

void BM_Fault_PermanentBestEffort(benchmark::State& state) {
  FaultFixture& f = Fixture();
  double rate = static_cast<double>(state.range(0)) / 10.0;
  RunResult r;
  for (auto _ : state) {
    r = RunOnce(f, rate, FaultMode::kDown, FailurePolicy::kBestEffort, 1);
    benchmark::DoNotOptimize(r.answers);
  }
  ReportCounters(state, f, r);
}
BENCHMARK(BM_Fault_PermanentBestEffort)->DenseRange(0, 5, 1);

/// Retries cannot resurrect a permanently down peer; they only add
/// bounded backoff latency. Included to show that cost.
void BM_Fault_PermanentBestEffortRetry(benchmark::State& state) {
  FaultFixture& f = Fixture();
  double rate = static_cast<double>(state.range(0)) / 10.0;
  RunResult r;
  for (auto _ : state) {
    r = RunOnce(f, rate, FaultMode::kDown, FailurePolicy::kBestEffort, 4);
    benchmark::DoNotOptimize(r.answers);
  }
  ReportCounters(state, f, r);
}
BENCHMARK(BM_Fault_PermanentBestEffortRetry)->DenseRange(0, 5, 1);

/// Transient (flaky) failures without retry: completeness tracks the
/// per-contact survival rate.
void BM_Fault_TransientBestEffort(benchmark::State& state) {
  FaultFixture& f = Fixture();
  double rate = static_cast<double>(state.range(0)) / 10.0;
  RunResult r;
  for (auto _ : state) {
    r = RunOnce(f, rate, FaultMode::kFlaky, FailurePolicy::kBestEffort, 1);
    benchmark::DoNotOptimize(r.answers);
  }
  ReportCounters(state, f, r);
}
BENCHMARK(BM_Fault_TransientBestEffort)->DenseRange(0, 5, 1);

/// Transient failures with 4 attempts + exponential backoff: the
/// acceptance shape — >=90% completeness restored at every rate.
void BM_Fault_TransientBestEffortRetry(benchmark::State& state) {
  FaultFixture& f = Fixture();
  double rate = static_cast<double>(state.range(0)) / 10.0;
  RunResult r;
  for (auto _ : state) {
    r = RunOnce(f, rate, FaultMode::kFlaky, FailurePolicy::kBestEffort, 4);
    benchmark::DoNotOptimize(r.answers);
  }
  ReportCounters(state, f, r);
}
BENCHMARK(BM_Fault_TransientBestEffortRetry)->DenseRange(0, 5, 1);

}  // namespace
