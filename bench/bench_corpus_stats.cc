// Experiment C7: cost of computing the statistics over structures
// (§4.2) as the corpus grows — basic statistics (one scan) and the
// Apriori mining of frequent partial structures (§4.2.2).
// Paper-predicted shape: basic statistics linear in corpus size; mining
// cost governed by support threshold (lower support => more candidate
// sets).

#include <benchmark/benchmark.h>

#include "src/corpus/statistics.h"
#include "src/datagen/university.h"

namespace {

using revere::corpus::Corpus;
using revere::corpus::CorpusStatistics;
using revere::datagen::UniversityGenerator;
using revere::datagen::UniversityGenOptions;

Corpus MakeCorpus(size_t schemas) {
  UniversityGenerator generator(UniversityGenOptions{.seed = 21});
  Corpus corpus;
  generator.PopulateCorpus(&corpus, schemas);
  return corpus;
}

void BM_BasicStatistics(benchmark::State& state) {
  Corpus corpus = MakeCorpus(static_cast<size_t>(state.range(0)));
  size_t vocab = 0;
  for (auto _ : state) {
    CorpusStatistics stats(corpus);
    vocab = stats.vocabulary_size();
    benchmark::DoNotOptimize(vocab);
  }
  state.counters["schemas"] = static_cast<double>(corpus.size());
  state.counters["vocabulary"] = static_cast<double>(vocab);
}
BENCHMARK(BM_BasicStatistics)->Arg(8)->Arg(32)->Arg(128)->Unit(
    benchmark::kMicrosecond);

// arg0: schemas; arg1: min support as percent of relations.
void BM_FrequentStructureMining(benchmark::State& state) {
  Corpus corpus = MakeCorpus(static_cast<size_t>(state.range(0)));
  CorpusStatistics stats(corpus);
  size_t min_support =
      std::max<size_t>(1, stats.relation_count() *
                              static_cast<size_t>(state.range(1)) / 100);
  size_t found = 0;
  for (auto _ : state) {
    auto frequent = stats.FrequentAttributeSets(min_support, 4);
    found = frequent.size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["schemas"] = static_cast<double>(corpus.size());
  state.counters["min_support"] = static_cast<double>(min_support);
  state.counters["frequent_sets"] = static_cast<double>(found);
}
BENCHMARK(BM_FrequentStructureMining)
    ->ArgsProduct({{16, 64}, {10, 30, 60}})
    ->Unit(benchmark::kMicrosecond);

void BM_SimilarNameQueries(benchmark::State& state) {
  Corpus corpus = MakeCorpus(static_cast<size_t>(state.range(0)));
  CorpusStatistics stats(corpus);
  size_t results = 0;
  for (auto _ : state) {
    results = stats.SimilarAttributes("instructor", 10).size() +
              stats.CoOccurringAttributes("title", 10).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["schemas"] = static_cast<double>(corpus.size());
}
BENCHMARK(BM_SimilarNameQueries)->Arg(16)->Arg(128)->Unit(
    benchmark::kMicrosecond);

// Support estimation for unseen partial structures versus exact count.
void BM_SupportEstimation(benchmark::State& state) {
  Corpus corpus = MakeCorpus(64);
  CorpusStatistics stats(corpus);
  double est = 0;
  for (auto _ : state) {
    est = stats.EstimateSupport({stats.Normalize("title"),
                                 stats.Normalize("instructor"),
                                 stats.Normalize("room")});
    benchmark::DoNotOptimize(est);
  }
  state.counters["estimated_support"] = est;
}
BENCHMARK(BM_SupportEstimation)->Unit(benchmark::kMicrosecond);

}  // namespace
