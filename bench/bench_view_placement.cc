// Ablation A1 (DESIGN.md design-choice benches): intelligent data
// placement (§3.1.2 / the paper's [21]): "materialize the best views at
// each peer to allow answering queries most efficiently, given network
// constraints."
//
// Measures the planner's cost and the workload network-cost reduction
// it achieves as the network and workload grow. Expected shape: planning
// is cheap relative to even one run of the workload; the optimized cost
// collapses toward the per-view maintenance charge for hot, skewed
// workloads.

#include <benchmark/benchmark.h>

#include "src/datagen/topology.h"
#include "src/piazza/placement.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::PdmsNetwork;
using revere::piazza::PlacementOptions;
using revere::piazza::PlacementPlan;
using revere::piazza::PlanViewPlacement;
using revere::piazza::WorkloadEntry;

// arg0: peers.
void BM_PlanPlacement(benchmark::State& state) {
  PdmsNetwork net;
  PdmsGenOptions options;
  options.topology = Topology::kChain;
  options.peers = static_cast<size_t>(state.range(0));
  options.rows_per_peer = 5;
  auto report = BuildUniversityPdms(&net, options);
  if (!report.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  // Zipf-flavored workload: the first peers query far more often.
  std::vector<WorkloadEntry> workload;
  for (size_t i = 0; i < report.value().peer_names.size(); ++i) {
    workload.push_back({report.value().peer_names[i],
                        AllCoursesQuery(report.value(), i),
                        100.0 / static_cast<double>(i + 1)});
  }
  PlacementPlan plan;
  for (auto _ : state) {
    plan = PlanViewPlacement(net, workload, PlacementOptions{});
    benchmark::DoNotOptimize(plan);
  }
  state.counters["peers"] = static_cast<double>(options.peers);
  state.counters["views_placed"] =
      static_cast<double>(plan.decisions.size());
  state.counters["baseline_cost_ms"] = plan.baseline_cost;
  state.counters["optimized_cost_ms"] = plan.optimized_cost;
  state.counters["saving_pct"] =
      plan.baseline_cost == 0.0
          ? 0.0
          : 100.0 * (plan.baseline_cost - plan.optimized_cost) /
                plan.baseline_cost;
}
BENCHMARK(BM_PlanPlacement)->Arg(4)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);

// Maintenance-cost sensitivity: as refresh gets more expensive, the
// planner should materialize fewer views.
void BM_PlacementMaintenanceSweep(benchmark::State& state) {
  PdmsNetwork net;
  PdmsGenOptions options;
  options.topology = Topology::kChain;
  options.peers = 8;
  options.rows_per_peer = 5;
  auto report = BuildUniversityPdms(&net, options);
  if (!report.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  std::vector<WorkloadEntry> workload;
  for (size_t i = 0; i < 8; ++i) {
    workload.push_back({report.value().peer_names[i],
                        AllCoursesQuery(report.value(), i),
                        100.0 / static_cast<double>(i + 1)});
  }
  PlacementOptions popts;
  popts.maintenance_cost_per_view = static_cast<double>(state.range(0));
  PlacementPlan plan;
  for (auto _ : state) {
    plan = PlanViewPlacement(net, workload, popts);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["maintenance_cost"] = popts.maintenance_cost_per_view;
  state.counters["views_placed"] =
      static_cast<double>(plan.decisions.size());
}
BENCHMARK(BM_PlacementMaintenanceSweep)
    ->Arg(1)
    ->Arg(100)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
