// Experiment F3/F4 (paper Figures 3-4): the Berkeley/MIT peer schemas
// and the Berkeley-to-MIT XML template mapping.
//
// Measures translation throughput of the Figure-4 mapping as the source
// document grows, and validates every output against the MIT DTD of
// Figure 3. Paper-predicted shape: linear in source size (the template
// language was designed "to keep query translation tractable").

#include <benchmark/benchmark.h>

#include <string>

#include "src/piazza/xml_mapping.h"
#include "src/xml/dtd.h"
#include "src/xml/parser.h"

namespace {

using revere::piazza::XmlMapping;
using revere::xml::Dtd;
using revere::xml::ParseXml;
using revere::xml::XmlNode;

constexpr char kFig4Mapping[] =
    "<catalog>\n"
    "  <course> {$c = document(\"Berkeley.xml\")/schedule/college/dept}\n"
    "    <name> $c/name/text() </name>\n"
    "    <subject> {$s = $c/course}\n"
    "      <title> $s/title/text() </title>\n"
    "      <enrollment> $s/size/text() </enrollment>\n"
    "    </subject>\n"
    "  </course>\n"
    "</catalog>\n";

constexpr char kMitDtd[] =
    "Element catalog(course*)\n"
    "Element course(name, subject*)\n"
    "Element subject(title, enrollment)\n";

std::string MakeBerkeleyDoc(size_t depts, size_t courses_per_dept) {
  std::string out = "<schedule><college><name>College</name>";
  for (size_t d = 0; d < depts; ++d) {
    out += "<dept><name>Dept" + std::to_string(d) + "</name>";
    for (size_t c = 0; c < courses_per_dept; ++c) {
      out += "<course><title>Course " + std::to_string(d) + "-" +
             std::to_string(c) + "</title><size>" +
             std::to_string(30 + (c * 7) % 200) + "</size></course>";
    }
    out += "</dept>";
  }
  out += "</college></schedule>";
  return out;
}

void BM_Fig4_Translate(benchmark::State& state) {
  size_t depts = static_cast<size_t>(state.range(0));
  size_t courses = static_cast<size_t>(state.range(1));
  auto doc = ParseXml(MakeBerkeleyDoc(depts, courses));
  auto mapping = XmlMapping::Parse(kFig4Mapping);
  if (!doc.ok() || !mapping.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  size_t out_nodes = 0;
  for (auto _ : state) {
    auto result = mapping.value().Translate({{"Berkeley.xml", doc->get()}});
    if (!result.ok()) {
      state.SkipWithError("translation failed");
      return;
    }
    out_nodes = result.value()->SubtreeSize();
    benchmark::DoNotOptimize(result);
  }
  state.counters["source_courses"] =
      static_cast<double>(depts * courses);
  state.counters["output_nodes"] = static_cast<double>(out_nodes);
  state.counters["courses_per_sec"] = benchmark::Counter(
      static_cast<double>(depts * courses),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Fig4_Translate)
    ->Args({2, 3})      // the paper's toy scale
    ->Args({10, 20})
    ->Args({50, 40})
    ->Args({200, 50});

void BM_Fig4_TranslateAndValidate(benchmark::State& state) {
  auto doc = ParseXml(MakeBerkeleyDoc(20, 20));
  auto mapping = XmlMapping::Parse(kFig4Mapping);
  auto dtd = Dtd::Parse(kMitDtd);
  if (!doc.ok() || !mapping.ok() || !dtd.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  size_t valid = 0;
  for (auto _ : state) {
    auto result = mapping.value().Translate({{"Berkeley.xml", doc->get()}});
    if (result.ok() && dtd.value().Validate(*result.value()).ok()) ++valid;
    benchmark::DoNotOptimize(result);
  }
  state.counters["all_outputs_valid"] =
      valid == static_cast<size_t>(state.iterations()) ? 1.0 : 0.0;
}
BENCHMARK(BM_Fig4_TranslateAndValidate);

void BM_Fig3_DtdValidation(benchmark::State& state) {
  size_t depts = static_cast<size_t>(state.range(0));
  auto dtd = Dtd::Parse(
      "Element schedule(college*)\nElement college(name, dept*)\n"
      "Element dept(name, course*)\nElement course(title, size)\n");
  auto doc = ParseXml(MakeBerkeleyDoc(depts, 20));
  if (!dtd.ok() || !doc.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto status = dtd.value().Validate(*doc.value());
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_Fig3_DtdValidation)->Arg(10)->Arg(100);

}  // namespace
