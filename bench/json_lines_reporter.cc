#include "bench/json_lines_reporter.h"

#include <cctype>
#include <sstream>

namespace revere::bench {

namespace {

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool IsInteger(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

JsonLinesReporter::JsonLinesReporter(const std::string& path) {
  if (!path.empty()) {
    out_.open(path, std::ios::out | std::ios::trunc);
    enabled_ = out_.is_open();
  }
}

void JsonLinesReporter::ReportRuns(const std::vector<Run>& runs) {
  ConsoleReporter::ReportRuns(runs);
  if (!enabled_) return;
  for (const auto& run : runs) WriteRun(run);
}

void JsonLinesReporter::WriteRun(const Run& run) {
  const std::string full_name = run.benchmark_name();
  // "BM_Name/4/2" -> bench "BM_Name", args [4, 2]. Non-numeric
  // segments (named args, "min_time:..." suffixes) stay as strings.
  std::vector<std::string> segments;
  std::string current;
  for (char c : full_name) {
    if (c == '/') {
      segments.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  segments.push_back(current);

  std::ostringstream line;
  line << "{\"bench\": \"" << Escape(segments[0]) << "\"";
  line << ", \"params\": {\"name\": \"" << Escape(full_name) << "\"";
  line << ", \"args\": [";
  for (size_t i = 1; i < segments.size(); ++i) {
    if (i > 1) line << ", ";
    if (IsInteger(segments[i])) {
      line << segments[i];
    } else {
      line << "\"" << Escape(segments[i]) << "\"";
    }
  }
  line << "]";
  if (run.run_type == Run::RT_Aggregate) {
    line << ", \"aggregate\": \"" << Escape(run.aggregate_name) << "\"";
  }
  line << "}";
  line << ", \"metrics\": {";
  line << "\"real_time\": " << run.GetAdjustedRealTime();
  line << ", \"cpu_time\": " << run.GetAdjustedCPUTime();
  line << ", \"time_unit\": \""
       << benchmark::GetTimeUnitString(run.time_unit) << "\"";
  line << ", \"iterations\": " << run.iterations;
  for (const auto& [name, counter] : run.counters) {
    line << ", \"" << Escape(name) << "\": " << counter.value;
  }
  line << "}}";
  // Flush per record: a crashed or killed bench run (OOM, timeout in
  // CI) keeps every line already emitted instead of losing the tail of
  // the buffered stream.
  out_ << line.str() << "\n" << std::flush;
}

}  // namespace revere::bench
