#ifndef REVERE_BENCH_JSON_LINES_REPORTER_H_
#define REVERE_BENCH_JSON_LINES_REPORTER_H_

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

namespace revere::bench {

/// Console reporter that additionally appends one JSON object per run
/// to a file — the machine-readable trajectory behind every bench's
/// `--json <path>` flag. Each line is:
///
///   {"bench": "BM_Name", "params": {"name": "BM_Name/4/2", "args":
///    [4, 2]}, "metrics": {"real_time": ..., "cpu_time": ...,
///    "time_unit": "ns", "iterations": N, "<counter>": ...}}
///
/// so a BENCH_*.json series can be diffed across PRs with any JSONL
/// tool. An empty path disables the file sink (console only).
class JsonLinesReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLinesReporter(const std::string& path);

  void ReportRuns(const std::vector<Run>& runs) override;

 private:
  void WriteRun(const Run& run);

  std::ofstream out_;
  bool enabled_ = false;
};

}  // namespace revere::bench

#endif  // REVERE_BENCH_JSON_LINES_REPORTER_H_
