// Experiment O1: observability overhead (ISSUE 4).
//
// The tentpole contract is that instrumentation is effectively free
// when nobody is looking: a null tracer costs one branch per span
// site, registry counters are one uncontended relaxed fetch_add, and
// the enabled-tracing overhead on the P1/P2 serving paths stays under
// 5%. This bench measures exactly that, in three mode columns per
// workload (arg0):
//
//   0 = off        tracer == nullptr (the default everywhere)
//   1 = null-sink  spans run the full pipeline (clock reads, ids,
//                  attrs) but nothing is retained — instrumentation
//                  cost in isolation
//   2 = full       records retained and cleared per query — adds the
//                  retention cost (mutex append + per-query Clear),
//                  the lifecycle a per-query trace dump would use
//
// Workloads:
//   BM_O1_JoinUnion    the P1 title-self-join union through
//                      EvaluateUnion (one `evaluate` span per member)
//   BM_O1_WarmAnswer   the P2 cache-hit path through Answer (the
//                      2-ish-µs warm reformulation where relative
//                      overhead is hardest to hide)
//   BM_O1_Span         one span start/finish pair in isolation
//   BM_O1_Counter /    the registry primitives on the hot path,
//   BM_O1_Histogram    including an 8-thread contention column
//
// Counters: rows (result sanity), spans (retained spans per iteration
// in full mode — confirms the tree is actually being built).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/datagen/topology.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/piazza/pdms.h"
#include "src/piazza/peer.h"
#include "src/query/cq.h"
#include "src/query/evaluate.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::obs::TraceMode;
using revere::obs::Tracer;
using revere::piazza::NetworkCostModel;
using revere::piazza::PdmsNetwork;
using revere::piazza::QualifiedName;
using revere::query::Atom;
using revere::query::ConjunctiveQuery;
using revere::query::EvalOptions;
using revere::query::QTerm;
using revere::storage::Row;

bool SmokeRun() { return std::getenv("REVERE_BENCH_SMOKE") != nullptr; }

/// Same join shape as bench_parallel_eval's P1 workload: all pairs of
/// same-title courses at peer `i`.
ConjunctiveQuery TitleSelfJoin(const PdmsGenReport& report, size_t i) {
  std::string rel =
      QualifiedName(report.peer_names[i], report.relation_names[i]);
  Atom first{rel, {QTerm::Var("X"), QTerm::Var("T"), QTerm::Var("A")}};
  Atom second{rel, {QTerm::Var("Y"), QTerm::Var("T"), QTerm::Var("B")}};
  return ConjunctiveQuery("samet" + std::to_string(i),
                          {QTerm::Var("X"), QTerm::Var("Y")},
                          {first, second});
}

struct ObsFixture {
  ObsFixture() {
    PdmsGenOptions options;
    options.topology = Topology::kFigure2;
    options.rows_per_peer = SmokeRun() ? 20 : 200;
    options.seed = 2003;
    auto r = BuildUniversityPdms(&net, options);
    if (r.ok()) report = r.value();
    for (size_t i = 0; i < report.peer_names.size(); ++i) {
      joins.push_back(TitleSelfJoin(report, i));
    }
  }

  PdmsNetwork net;
  PdmsGenReport report;
  std::vector<ConjunctiveQuery> joins;
};

ObsFixture& Fixture() {
  static ObsFixture* fixture = new ObsFixture();
  return *fixture;
}

/// arg0 decoding: 0 = no tracer, 1 = kNullSink, 2 = kFull.
std::unique_ptr<Tracer> MakeTracer(int mode) {
  if (mode == 0) return nullptr;
  return std::make_unique<Tracer>(mode == 1 ? TraceMode::kNullSink
                                            : TraceMode::kFull);
}

// ------------------------------------------------ P1 join workload

void BM_O1_JoinUnion(benchmark::State& state) {
  ObsFixture& f = Fixture();
  std::unique_ptr<Tracer> tracer = MakeTracer(static_cast<int>(state.range(0)));
  EvalOptions options;
  options.tracer = tracer.get();
  size_t rows = 0, spans = 0;
  for (auto _ : state) {
    auto result =
        revere::query::EvaluateUnion(f.net.storage(), f.joins, options);
    rows = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(rows);
    if (tracer != nullptr && tracer->mode() == TraceMode::kFull) {
      spans = tracer->span_count();
      tracer->Clear();  // per-query trace lifecycle, inside the cost
    }
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["spans"] = static_cast<double>(spans);
}
BENCHMARK(BM_O1_JoinUnion)->DenseRange(0, 2, 1)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------- P2 cache-hit workload

void BM_O1_WarmAnswer(benchmark::State& state) {
  ObsFixture& f = Fixture();
  ConjunctiveQuery q = AllCoursesQuery(f.report, 0);
  f.net.ClearPlanCache();
  benchmark::DoNotOptimize(f.net.Answer(q));  // warm the plan cache
  std::unique_ptr<Tracer> tracer = MakeTracer(static_cast<int>(state.range(0)));
  NetworkCostModel cost;
  cost.tracer = tracer.get();
  size_t rows = 0, spans = 0;
  for (auto _ : state) {
    auto result = f.net.Answer(q, {}, nullptr, cost);
    rows = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(rows);
    if (tracer != nullptr && tracer->mode() == TraceMode::kFull) {
      spans = tracer->span_count();
      tracer->Clear();
    }
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["spans"] = static_cast<double>(spans);
}
BENCHMARK(BM_O1_WarmAnswer)->DenseRange(0, 2, 1);

// ------------------------------------------------------- primitives

/// One span start/finish pair: the unit every instrumented site pays.
void BM_O1_Span(benchmark::State& state) {
  std::unique_ptr<Tracer> tracer = MakeTracer(static_cast<int>(state.range(0)));
  uint64_t drained = 0;
  for (auto _ : state) {
    {
      revere::obs::Span span =
          revere::obs::StartSpan(tracer.get(), "bench_span");
      span.AddAttr("n", 1);
    }
    if (tracer != nullptr && tracer->span_count() >= 4096) {
      drained += tracer->span_count();
      tracer->Clear();
    }
  }
  benchmark::DoNotOptimize(drained);
}
BENCHMARK(BM_O1_Span)->DenseRange(0, 2, 1);

void BM_O1_Counter(benchmark::State& state) {
  static revere::obs::Counter* counter =
      revere::obs::MetricsRegistry::Default().GetCounter("bench.o1_counter");
  for (auto _ : state) counter->Increment();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_O1_Counter)->Threads(1)->Threads(8)->UseRealTime();

void BM_O1_Histogram(benchmark::State& state) {
  static revere::obs::Histogram* histogram =
      revere::obs::MetricsRegistry::Default().GetHistogram(
          "bench.o1_histogram_us");
  double value = 0.0;
  for (auto _ : state) {
    histogram->Record(value);
    value += 1.0;
    if (value > 1e6) value = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_O1_Histogram)->Threads(1)->Threads(8)->UseRealTime();

}  // namespace
