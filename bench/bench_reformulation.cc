// Experiment C3: transitive-closure reformulation cost and the value of
// the pruning heuristics (§3.1.1: "our query answering algorithm is
// aided by heuristics that prune redundant and irrelevant paths through
// the space of mappings").
//
// Sweeps network size and topology with pruning on/off. Paper-predicted
// shape: without pruning the explored node count explodes on cyclic /
// redundant topologies (equality mappings make every edge two rules);
// with pruning it stays near-linear in the number of peers.

#include <benchmark/benchmark.h>

#include "src/datagen/topology.h"
#include "src/piazza/pdms.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::PdmsGenReport;
using revere::datagen::Topology;
using revere::piazza::PdmsNetwork;
using revere::piazza::ReformulationOptions;
using revere::piazza::ReformulationStats;

const char* TopologyName(int t) {
  switch (t) {
    case 0:
      return "chain";
    case 1:
      return "star";
    default:
      return "random";
  }
}

Topology TopologyOf(int t) {
  switch (t) {
    case 0:
      return Topology::kChain;
    case 1:
      return Topology::kStar;
    default:
      return Topology::kRandom;
  }
}

// arg0: topology, arg1: peers, arg2: pruning on/off.
void BM_Reformulate(benchmark::State& state) {
  PdmsNetwork net;
  PdmsGenOptions options;
  options.topology = TopologyOf(static_cast<int>(state.range(0)));
  options.peers = static_cast<size_t>(state.range(1));
  options.rows_per_peer = 1;  // reformulation cost only
  options.seed = 5;
  auto report = BuildUniversityPdms(&net, options);
  if (!report.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  auto query = AllCoursesQuery(report.value(), 0);
  ReformulationOptions opts;
  opts.prune_duplicates = state.range(2) != 0;
  opts.max_depth = static_cast<int>(options.peers) + 2;
  opts.max_rewritings = 4096;
  ReformulationStats stats;
  for (auto _ : state) {
    auto r = net.Reformulate(query, opts, &stats);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(TopologyName(static_cast<int>(state.range(0)))) +
                 (opts.prune_duplicates ? "/pruned" : "/unpruned"));
  state.counters["peers"] = static_cast<double>(options.peers);
  state.counters["nodes_expanded"] =
      static_cast<double>(stats.nodes_expanded);
  state.counters["rewritings"] = static_cast<double>(stats.rewritings);
  state.counters["pruned_duplicates"] =
      static_cast<double>(stats.pruned_duplicates);
}
BENCHMARK(BM_Reformulate)
    ->ArgsProduct({{0, 1, 2}, {4, 8, 16, 32}, {1}})
    ->ArgsProduct({{0, 1, 2}, {4, 8}, {0}})  // unpruned blows up: keep small
    ->Unit(benchmark::kMillisecond);

// Irrelevant-path pruning: queries over unmapped relations should be
// rejected in O(1) instead of crawling the mapping graph.
void BM_IrrelevantQuery(benchmark::State& state) {
  PdmsNetwork net;
  PdmsGenOptions options;
  options.topology = Topology::kChain;
  options.peers = static_cast<size_t>(state.range(0));
  options.rows_per_peer = 1;
  auto report = BuildUniversityPdms(&net, options);
  if (!report.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  auto query = revere::query::ConjunctiveQuery::Parse(
      "q(X) :- peer0:professor(X)");
  ReformulationOptions opts;
  opts.prune_unreachable = state.range(1) != 0;
  ReformulationStats stats;
  for (auto _ : state) {
    auto r = net.Reformulate(query.value(), opts, &stats);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(opts.prune_unreachable ? "reachability-pruned"
                                        : "no-reachability-pruning");
  state.counters["nodes_expanded"] =
      static_cast<double>(stats.nodes_expanded);
}
BENCHMARK(BM_IrrelevantQuery)
    ->ArgsProduct({{16, 64}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
