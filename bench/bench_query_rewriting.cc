// Experiment C9: the two halves of GLAV reformulation (§3.1.1: "our
// query answering algorithm has aspects of both global-as-view and
// local-as-view: it performs query unfolding and query reformulation
// using views").
//
// Measures GAV unfolding versus LAV answering-queries-using-views as
// the number of views grows, plus the Chandra-Merlin machinery they
// lean on (containment check, minimization). Paper-predicted shape: GAV
// unfolding is cheap (polynomial); LAV rewriting cost grows with the
// bucket cross product; containment is exponential only in query size,
// which stays small.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/query/containment.h"
#include "src/query/cq.h"
#include "src/query/rewrite.h"
#include "src/query/unfold.h"

namespace {

using revere::query::ConjunctiveQuery;
using revere::query::RewriteOptions;
using revere::query::RewriteStats;
using revere::query::ViewRegistry;

ConjunctiveQuery Parse(const std::string& s) {
  return ConjunctiveQuery::Parse(s).value();
}

// n views over relations r0..r(n-1), forming a chain of definitions for
// GAV unfolding depth tests.
void BM_GavUnfold(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  ViewRegistry views;
  for (int i = 0; i < depth; ++i) {
    views.Add(Parse("lvl" + std::to_string(i) + "(X, Y) :- lvl" +
                    std::to_string(i + 1) + "(X, Z), lvl" +
                    std::to_string(i + 1) + "(Z, Y)"));
  }
  ConjunctiveQuery q = Parse("q(X, Y) :- lvl0(X, Y)");
  size_t atoms = 0;
  // Each unfolding round substitutes one atom; a chain of depth d
  // produces 2^d leaf atoms, so the round budget must cover that.
  int max_rounds = (1 << depth) + 2;
  for (auto _ : state) {
    auto result = revere::query::UnfoldQueryUnique(q, views, max_rounds);
    atoms = result.ok() ? result.value().body().size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["unfold_depth"] = static_cast<double>(depth);
  state.counters["result_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_GavUnfold)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

// LAV: rewrite a 2-join query using v views, a fraction of which are
// useful. arg0: number of views.
void BM_LavRewrite(benchmark::State& state) {
  int nviews = static_cast<int>(state.range(0));
  std::vector<ConjunctiveQuery> views;
  for (int i = 0; i < nviews; ++i) {
    switch (i % 4) {
      case 0:
        views.push_back(Parse("v" + std::to_string(i) +
                              "(X, Y) :- r(X, Y)"));
        break;
      case 1:
        views.push_back(Parse("v" + std::to_string(i) +
                              "(Y, Z) :- s(Y, Z)"));
        break;
      case 2:
        views.push_back(Parse("v" + std::to_string(i) +
                              "(X, Z) :- r(X, Y), s(Y, Z)"));
        break;
      default:  // irrelevant view
        views.push_back(Parse("v" + std::to_string(i) +
                              "(A, B) :- t(A, B)"));
    }
  }
  ConjunctiveQuery q = Parse("q(X, Z) :- r(X, Y), s(Y, Z)");
  RewriteStats stats;
  size_t rewritings = 0;
  for (auto _ : state) {
    auto result =
        revere::query::RewriteUsingViews(q, views, RewriteOptions{}, &stats);
    rewritings = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["views"] = static_cast<double>(nviews);
  state.counters["bucket_entries"] =
      static_cast<double>(stats.bucket_entries);
  state.counters["candidates"] =
      static_cast<double>(stats.candidates_examined);
  state.counters["rewritings"] = static_cast<double>(rewritings);
}
BENCHMARK(BM_LavRewrite)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

void BM_Containment(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  // Chain queries: q1 is a path of length n, q2 a cycle of length n.
  std::string body1, body2;
  for (int i = 0; i < size; ++i) {
    if (i > 0) {
      body1 += ", ";
      body2 += ", ";
    }
    body1 += "e(X" + std::to_string(i) + ", X" + std::to_string(i + 1) + ")";
    body2 += "e(Y" + std::to_string(i) + ", Y" +
             std::to_string((i + 1) % size) + ")";
  }
  ConjunctiveQuery path = Parse("q(X0) :- " + body1);
  ConjunctiveQuery cycle = Parse("q(Y0) :- " + body2);
  bool contains = false;
  for (auto _ : state) {
    contains = revere::query::Contains(path, cycle);
    benchmark::DoNotOptimize(contains);
  }
  state.counters["query_size"] = static_cast<double>(size);
  state.counters["path_contains_cycle"] = contains ? 1.0 : 0.0;
}
BENCHMARK(BM_Containment)->Arg(3)->Arg(5)->Arg(7)->Unit(
    benchmark::kMicrosecond);

void BM_Minimization(benchmark::State& state) {
  // A query with heavy redundancy: the same atom pattern repeated with
  // fresh existentials minimizes to one atom.
  int copies = static_cast<int>(state.range(0));
  std::string body;
  for (int i = 0; i < copies; ++i) {
    if (i > 0) body += ", ";
    body += "r(X, Y" + std::to_string(i) + ")";
  }
  ConjunctiveQuery q = Parse("q(X) :- " + body);
  size_t atoms = 0;
  for (auto _ : state) {
    auto m = revere::query::Minimize(q);
    atoms = m.body().size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["input_atoms"] = static_cast<double>(copies);
  state.counters["minimized_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_Minimization)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

}  // namespace
