// Experiment C8: DesignAdvisor quality and cost (§4.3.1: "the author can
// begin to design the schema and immediately be proposed a complete (or
// near complete) one").
//
// Protocol: generate a corpus; hold one schema out; present the advisor
// with a *fragment* of the held-out schema (its course relation with
// only two attributes) and measure
//   - retrieval quality: does SuggestSchemas rank a same-domain corpus
//     schema first (vs planted off-domain distractors)?
//   - autocomplete recall: how many of the held-back attributes appear
//     in the top-k SuggestAttributes?
// Paper-predicted shape: quality rises with corpus size; retrieval cost
// grows linearly with it (each corpus schema is matched).

#include <benchmark/benchmark.h>

#include "src/advisor/design_advisor.h"
#include "src/corpus/corpus.h"
#include "src/datagen/university.h"

namespace {

using revere::advisor::DesignAdvisor;
using revere::corpus::Corpus;
using revere::corpus::SchemaEntry;
using revere::datagen::GeneratedSchema;
using revere::datagen::UniversityGenerator;
using revere::datagen::UniversityGenOptions;

void AddDistractors(Corpus* corpus) {
  (void)corpus->AddSchema(SchemaEntry{
      "library-1",
      "library",
      {{"book", {"isbn", "title", "author", "publisher"}},
       {"loan", {"member", "isbn", "due_date"}}}});
  (void)corpus->AddSchema(SchemaEntry{
      "payroll-1",
      "payroll",
      {{"employee", {"badge", "salary", "manager", "grade"}},
       {"timesheet", {"badge", "week", "hours"}}}});
}

// arg0: corpus size (university schemas).
void BM_SchemaRetrieval(benchmark::State& state) {
  UniversityGenerator generator(UniversityGenOptions{.seed = 31});
  Corpus corpus;
  auto generated =
      generator.PopulateCorpus(&corpus, static_cast<size_t>(state.range(0)));
  AddDistractors(&corpus);
  DesignAdvisor advisor(&corpus);

  // The fragment: the held-out-style draft the coordinator starts with.
  SchemaEntry fragment{
      "draft", "university", {{"course", {"title", "instructor"}}}};

  double top1_on_domain = 0.0;
  for (auto _ : state) {
    auto suggestions = advisor.SuggestSchemas(fragment, {}, 3);
    top1_on_domain = (!suggestions.empty() &&
                      corpus.FindSchema(suggestions[0].schema_id) != nullptr &&
                      corpus.FindSchema(suggestions[0].schema_id)->domain ==
                          "university")
                         ? 1.0
                         : 0.0;
    benchmark::DoNotOptimize(suggestions);
  }
  state.counters["corpus_schemas"] = static_cast<double>(corpus.size());
  state.counters["top1_same_domain"] = top1_on_domain;
}
BENCHMARK(BM_SchemaRetrieval)->Arg(4)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

// Autocomplete recall: present {title, instructor}; count how many of
// the canonical remaining course attributes {number, room, time,
// enrollment} surface in the top-5.
void BM_AutocompleteRecall(benchmark::State& state) {
  UniversityGenerator generator(UniversityGenOptions{.seed = 33});
  Corpus corpus;
  generator.PopulateCorpus(&corpus, static_cast<size_t>(state.range(0)));
  DesignAdvisor advisor(&corpus);
  const auto& stats = advisor.statistics();

  double recall = 0.0;
  for (auto _ : state) {
    auto suggested =
        advisor.SuggestAttributes("course", {"title", "instructor"}, 5);
    size_t hit = 0;
    const char* expected[] = {"number", "room", "time", "enrollment"};
    for (const char* want : expected) {
      std::string canon = stats.Normalize(want);
      for (const auto& s : suggested) {
        // Accept the canonical term or any of its generated synonyms by
        // checking usage overlap: same normalized form only.
        if (s.term == canon) {
          ++hit;
          break;
        }
      }
    }
    recall = static_cast<double>(hit) / 4.0;
    benchmark::DoNotOptimize(recall);
  }
  state.counters["corpus_schemas"] =
      static_cast<double>(state.range(0));
  state.counters["recall_at_5"] = recall;
}
BENCHMARK(BM_AutocompleteRecall)->Arg(8)->Arg(32)->Arg(128)->Unit(
    benchmark::kMicrosecond);

// The structural-advice check ("TA info belongs in its own table") as a
// detection task over generated schemas that inlined TA columns.
void BM_StructureAdviceDetection(benchmark::State& state) {
  UniversityGenOptions options;
  options.seed = 35;
  options.split_ta_prob = 0.8;  // corpus mostly models TA separately
  UniversityGenerator generator(options);
  Corpus corpus;
  generator.PopulateCorpus(&corpus, static_cast<size_t>(state.range(0)));
  DesignAdvisor advisor(&corpus);

  // The coordinator inlined the TA's name/email into the course table;
  // the corpus overwhelmingly models those in ta/assistant relations.
  SchemaEntry draft{
      "draft",
      "university",
      {{"course", {"title", "instructor", "name", "email"}}}};
  double flagged = 0.0;
  for (auto _ : state) {
    auto advice = advisor.AdviseStructure(draft, 0.5);
    flagged = 0.0;
    for (const auto& a : advice) {
      if (a.attribute == "name" || a.attribute == "email") flagged += 0.5;
    }
    benchmark::DoNotOptimize(advice);
  }
  state.counters["ta_attrs_flagged"] = flagged;
}
BENCHMARK(BM_StructureAdviceDetection)->Arg(32)->Unit(
    benchmark::kMicrosecond);

}  // namespace
