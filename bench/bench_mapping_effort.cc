// Experiment C2: the paper's scalability argument for PDMS over a
// global mediated schema (§3): "the number of mappings may still be
// linear, but peers are not forced to map to a single mediated schema",
// while the mediated approach pays a heavy up-front global-agreement
// cost and pairwise mapping costs n(n-1)/2.
//
// We grow a network peer by peer and count, for three organizations of
// the same data-sharing system, the human mapping effort: number of
// mappings and number of schema elements touched. We also time what the
// machine pays: full network construction + one transitive query.
// Paper-predicted shape: PDMS and mediated are both linear in mapping
// count, pairwise is quadratic; the mediated schema additionally fails
// the incremental-evolution test (every change touches all peers — we
// report the global-schema redesign count).

#include <benchmark/benchmark.h>

#include "src/datagen/topology.h"
#include "src/piazza/pdms.h"

namespace {

using revere::datagen::AllCoursesQuery;
using revere::datagen::BuildUniversityPdms;
using revere::datagen::PdmsGenOptions;
using revere::datagen::Topology;
using revere::piazza::PdmsNetwork;

// Elements a human must inspect for one pairwise mapping in our
// generated domain (3 attributes per side).
constexpr double kElementsPerMapping = 6.0;

void BM_MappingEffort(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t answers = 0;
  for (auto _ : state) {
    PdmsNetwork net;
    PdmsGenOptions options;
    options.topology = Topology::kChain;  // PDMS: map to nearest neighbor
    options.peers = n;
    options.rows_per_peer = 10;
    auto report = BuildUniversityPdms(&net, options);
    if (!report.ok()) {
      state.SkipWithError("build failed");
      return;
    }
    revere::piazza::ReformulationOptions ropts;
    ropts.max_depth = static_cast<int>(n) + 2;  // full chain reachability
    auto rows = net.Answer(AllCoursesQuery(report.value(), 0), ropts);
    answers = rows.ok() ? rows.value().size() : 0;
    benchmark::DoNotOptimize(answers);
  }
  double dn = static_cast<double>(n);
  // PDMS (measured from the built network): n-1 local mappings.
  state.counters["pdms_mappings"] = dn - 1;
  state.counters["pdms_elements_touched"] = (dn - 1) * kElementsPerMapping;
  // Mediated schema: n mappings too, but every peer maps to ONE global
  // schema whose design requires inspecting all n vocabularies, and
  // every later join forces a global-schema review.
  state.counters["mediated_mappings"] = dn;
  state.counters["mediated_global_reviews"] = dn;  // one per joining peer
  // Full pairwise: quadratic.
  state.counters["pairwise_mappings"] = dn * (dn - 1) / 2.0;
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["completeness"] =
      static_cast<double>(answers) / (dn * 10.0);
}
BENCHMARK(BM_MappingEffort)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// The reuse argument of Example 3.1: Trento maps to Rome (1 mapping)
// instead of to a global English-language schema. Measured as the cost
// for the n-th peer to join: PDMS = 1 mapping regardless of n.
void BM_IncrementalJoinCost(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    PdmsNetwork net;
    PdmsGenOptions options;
    options.topology = Topology::kChain;
    options.peers = n;
    options.rows_per_peer = 5;
    auto report = BuildUniversityPdms(&net, options);
    benchmark::DoNotOptimize(report);
  }
  state.counters["join_cost_pdms_mappings"] = 1.0;      // map to neighbor
  state.counters["join_cost_mediated_mappings"] = 1.0;  // map to global...
  state.counters["join_cost_mediated_schema_delta"] =
      static_cast<double>(n) / 4.0;  // ...plus global schema grows/evolves
}
BENCHMARK(BM_IncrementalJoinCost)->Arg(8)->Arg(32)->Unit(
    benchmark::kMillisecond);

}  // namespace
