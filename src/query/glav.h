#ifndef REVERE_QUERY_GLAV_H_
#define REVERE_QUERY_GLAV_H_

#include <string>

#include "src/common/status.h"
#include "src/query/cq.h"

namespace revere::query {

/// A GLAV (global-local-as-view) inclusion assertion [Friedman/Levy/
/// Millstein 1999], the mapping formalism Piazza uses (§3.1.1):
///
///     source_query(X̄)  ⊆  target_query(X̄)
///
/// Both sides are conjunctive queries with the same head arity; the
/// source side ranges over one peer's relations and the target side over
/// another's. GAV is the special case where target_query is a single
/// atom; LAV where source_query is a single atom.
struct GlavMapping {
  std::string name;
  ConjunctiveQuery source;
  ConjunctiveQuery target;

  /// Parses the textual form "source_cq => target_cq", e.g.
  ///   m(I, T) :- mit:course(I, T) => m(I, T) :- berkeley:course(I, T)
  /// The result is validated.
  static Result<GlavMapping> Parse(std::string_view text,
                                   std::string name = "");

  /// Checks head arities match and both sides are safe.
  Status Validate() const {
    if (source.head().size() != target.head().size()) {
      return Status::InvalidArgument("GLAV mapping '" + name +
                                     "': head arity mismatch");
    }
    if (!source.IsSafe() || !target.IsSafe()) {
      return Status::InvalidArgument("GLAV mapping '" + name +
                                     "': unsafe side");
    }
    return Status::Ok();
  }

  bool IsGavLike() const { return target.body().size() == 1; }
  bool IsLavLike() const { return source.body().size() == 1; }

  std::string ToString() const {
    return source.ToString() + "  =>  " + target.ToString();
  }
};

}  // namespace revere::query

#endif  // REVERE_QUERY_GLAV_H_
