#include "src/query/cq.h"

#include <cctype>

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace revere::query {

QTerm QTerm::Var(std::string name) {
  QTerm t;
  t.is_var_ = true;
  t.var_ = std::move(name);
  return t;
}

QTerm QTerm::Const(storage::Value value) {
  QTerm t;
  t.is_var_ = false;
  t.value_ = std::move(value);
  return t;
}

bool QTerm::operator==(const QTerm& other) const {
  if (is_var_ != other.is_var_) return false;
  return is_var_ ? var_ == other.var_ : value_ == other.value_;
}

bool QTerm::operator<(const QTerm& other) const {
  if (is_var_ != other.is_var_) return is_var_ < other.is_var_;
  return is_var_ ? var_ < other.var_ : value_ < other.value_;
}

std::string QTerm::ToString() const {
  if (is_var_) return var_;
  if (value_.type() == storage::ValueType::kString) {
    return "\"" + value_.as_string() + "\"";
  }
  return value_.ToString();
}

std::string Atom::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

QTerm Apply(const Substitution& sub, const QTerm& term) {
  if (!term.is_var()) return term;
  auto it = sub.find(term.var());
  return it == sub.end() ? term : it->second;
}

Atom Apply(const Substitution& sub, const Atom& atom) {
  Atom out;
  out.relation = atom.relation;
  out.args.reserve(atom.args.size());
  for (const auto& t : atom.args) out.args.push_back(Apply(sub, t));
  return out;
}

std::vector<Atom> Apply(const Substitution& sub,
                        const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const auto& a : atoms) out.push_back(Apply(sub, a));
  return out;
}

namespace {

// ---- Parsing -----------------------------------------------------------

struct Cursor {
  std::string_view text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos >= text.size();
  }
  char Peek() {
    SkipWs();
    return pos < text.size() ? text[pos] : '\0';
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool Consume(std::string_view s) {
    SkipWs();
    if (text.substr(pos, s.size()) == s) {
      pos += s.size();
      return true;
    }
    return false;
  }
};

Result<std::string> ParseIdentifier(Cursor* c) {
  c->SkipWs();
  size_t start = c->pos;
  while (c->pos < c->text.size()) {
    char ch = c->text[c->pos];
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
        ch == '.' || ch == ':') {
      ++c->pos;
    } else {
      break;
    }
  }
  if (c->pos == start) {
    return Status::ParseError("expected identifier at offset " +
                              std::to_string(start));
  }
  return std::string(c->text.substr(start, c->pos - start));
}

Result<QTerm> ParseTerm(Cursor* c) {
  c->SkipWs();
  if (c->Peek() == '"') {
    ++c->pos;
    size_t start = c->pos;
    while (c->pos < c->text.size() && c->text[c->pos] != '"') ++c->pos;
    if (c->pos >= c->text.size()) {
      return Status::ParseError("unterminated string constant");
    }
    std::string v(c->text.substr(start, c->pos - start));
    ++c->pos;
    return QTerm::Const(storage::Value(std::move(v)));
  }
  char first = c->Peek();
  if (std::isdigit(static_cast<unsigned char>(first)) || first == '-') {
    size_t start = c->pos;
    if (first == '-') ++c->pos;
    bool is_double = false;
    while (c->pos < c->text.size() &&
           (std::isdigit(static_cast<unsigned char>(c->text[c->pos])) ||
            c->text[c->pos] == '.')) {
      if (c->text[c->pos] == '.') is_double = true;
      ++c->pos;
    }
    std::string num(c->text.substr(start, c->pos - start));
    if (is_double) return QTerm::Const(storage::Value(std::stod(num)));
    return QTerm::Const(
        storage::Value(static_cast<int64_t>(std::stoll(num))));
  }
  REVERE_ASSIGN_OR_RETURN(std::string id, ParseIdentifier(c));
  if (std::isupper(static_cast<unsigned char>(id[0])) || id[0] == '_') {
    return QTerm::Var(std::move(id));
  }
  // Lower-case bare identifiers are symbolic string constants.
  return QTerm::Const(storage::Value(std::move(id)));
}

Result<Atom> ParseAtom(Cursor* c) {
  REVERE_ASSIGN_OR_RETURN(std::string rel, ParseIdentifier(c));
  Atom atom;
  atom.relation = std::move(rel);
  if (!c->Consume('(')) {
    return Status::ParseError("expected '(' after relation name '" +
                              atom.relation + "'");
  }
  if (c->Consume(')')) return atom;  // nullary
  while (true) {
    REVERE_ASSIGN_OR_RETURN(QTerm t, ParseTerm(c));
    atom.args.push_back(std::move(t));
    if (c->Consume(')')) return atom;
    if (!c->Consume(',')) {
      return Status::ParseError("expected ',' or ')' in atom '" +
                                atom.relation + "'");
    }
  }
}

}  // namespace

Result<ConjunctiveQuery> ConjunctiveQuery::Parse(std::string_view text) {
  Cursor c{text};
  REVERE_ASSIGN_OR_RETURN(Atom head, ParseAtom(&c));
  std::vector<Atom> body;
  if (!c.AtEnd()) {
    if (!c.Consume(":-")) {
      return Status::ParseError("expected ':-' after head");
    }
    while (true) {
      REVERE_ASSIGN_OR_RETURN(Atom a, ParseAtom(&c));
      body.push_back(std::move(a));
      if (!c.Consume(',')) break;
    }
    if (!c.AtEnd()) {
      return Status::ParseError("trailing input after body at offset " +
                                std::to_string(c.pos));
    }
  }
  return ConjunctiveQuery(head.relation, head.args, std::move(body));
}

std::set<std::string> ConjunctiveQuery::HeadVars() const {
  std::set<std::string> vars;
  for (const auto& t : head_) {
    if (t.is_var()) vars.insert(t.var());
  }
  return vars;
}

std::set<std::string> ConjunctiveQuery::AllVars() const {
  std::set<std::string> vars = HeadVars();
  for (const auto& a : body_) {
    for (const auto& t : a.args) {
      if (t.is_var()) vars.insert(t.var());
    }
  }
  return vars;
}

std::set<std::string> ConjunctiveQuery::ExistentialVars() const {
  std::set<std::string> head = HeadVars();
  std::set<std::string> out;
  for (const auto& a : body_) {
    for (const auto& t : a.args) {
      if (t.is_var() && head.count(t.var()) == 0) out.insert(t.var());
    }
  }
  return out;
}

bool ConjunctiveQuery::IsSafe() const {
  std::set<std::string> body_vars;
  for (const auto& a : body_) {
    for (const auto& t : a.args) {
      if (t.is_var()) body_vars.insert(t.var());
    }
  }
  for (const auto& v : HeadVars()) {
    if (body_vars.count(v) == 0) return false;
  }
  return true;
}

ConjunctiveQuery ConjunctiveQuery::RenameVars(
    const std::string& prefix) const {
  Substitution sub;
  for (const auto& v : AllVars()) sub[v] = QTerm::Var(prefix + v);
  return Substitute(sub);
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const Substitution& sub) const {
  std::vector<QTerm> head;
  head.reserve(head_.size());
  for (const auto& t : head_) head.push_back(Apply(sub, t));
  return ConjunctiveQuery(name_, std::move(head), Apply(sub, body_));
}

CanonicalizedQuery Canonicalize(const ConjunctiveQuery& query) {
  Substitution rename;
  int counter = 0;
  auto note = [&](const QTerm& t) {
    if (t.is_var() && rename.count(t.var()) == 0) {
      rename[t.var()] = QTerm::Var("V" + std::to_string(counter++));
    }
  };
  for (const auto& t : query.head()) note(t);
  for (const auto& a : query.body()) {
    for (const auto& t : a.args) note(t);
  }
  CanonicalizedQuery out;
  out.query = query.Substitute(rename);
  out.text = out.query.ToString();
  out.fingerprint = Fnv1a64(out.text);
  return out;
}

uint64_t CanonicalFingerprint(const ConjunctiveQuery& query) {
  return Canonicalize(query).fingerprint;
}

bool AlphaEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return Canonicalize(a).text == Canonicalize(b).text;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = HeadAtom().ToString();
  if (!body_.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body_.size(); ++i) {
      if (i > 0) out += ", ";
      out += body_[i].ToString();
    }
  }
  return out;
}

namespace {

// Follows variable binding chains to a fixed point (cycle-safe).
QTerm Walk(QTerm t, const Substitution& sub) {
  std::set<std::string> seen;
  while (t.is_var()) {
    if (!seen.insert(t.var()).second) break;  // cycle, e.g. X -> Y -> X
    auto it = sub.find(t.var());
    if (it == sub.end() || it->second == t) break;
    t = it->second;
  }
  return t;
}

}  // namespace

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* sub) {
  if (a.relation != b.relation || a.args.size() != b.args.size()) {
    return false;
  }
  Substitution local = *sub;
  for (size_t i = 0; i < a.args.size(); ++i) {
    QTerm ta = Walk(a.args[i], local);
    QTerm tb = Walk(b.args[i], local);
    if (ta == tb) continue;
    if (ta.is_var()) {
      local[ta.var()] = tb;
    } else if (tb.is_var()) {
      local[tb.var()] = ta;
    } else {
      return false;  // distinct constants
    }
  }
  *sub = std::move(local);
  return true;
}

Substitution ResolveSubstitution(const Substitution& sub) {
  Substitution out;
  for (const auto& [var, term] : sub) {
    out[var] = Walk(QTerm::Var(var), sub);
  }
  return out;
}

bool MatchAtom(const Atom& a, const Atom& b, Substitution* sub) {
  if (a.relation != b.relation || a.args.size() != b.args.size()) {
    return false;
  }
  Substitution local = *sub;
  for (size_t i = 0; i < a.args.size(); ++i) {
    QTerm at = Apply(local, a.args[i]);
    const QTerm& bt = b.args[i];
    if (at.is_var()) {
      local[at.var()] = bt;
    } else if (!(at == bt)) {
      return false;
    }
  }
  *sub = std::move(local);
  return true;
}

}  // namespace revere::query
