#include "src/query/unfold.h"

namespace revere::query {

void ViewRegistry::Add(ConjunctiveQuery view) {
  views_[view.name()].push_back(std::move(view));
}

bool ViewRegistry::Defines(const std::string& relation) const {
  return views_.count(relation) > 0;
}

const std::vector<ConjunctiveQuery>* ViewRegistry::Definitions(
    const std::string& relation) const {
  auto it = views_.find(relation);
  return it == views_.end() ? nullptr : &it->second;
}

namespace {

// Replaces body atom `pos` of `q` with `def`'s body, unifying def's head
// with the atom. Returns nullopt if the head does not unify (arity or
// constant clash).
std::optional<ConjunctiveQuery> SubstituteDefinition(
    const ConjunctiveQuery& q, size_t pos, const ConjunctiveQuery& def,
    int* fresh_counter) {
  const Atom& goal = q.body()[pos];
  ConjunctiveQuery fresh =
      def.RenameVars("_u" + std::to_string((*fresh_counter)++) + "_");
  // Unify the definition's head with the goal atom: bind fresh's head
  // vars to the goal's terms.
  Substitution sub;
  if (!MatchAtom(fresh.HeadAtom(), goal, &sub)) return std::nullopt;
  std::vector<Atom> new_body;
  new_body.reserve(q.body().size() - 1 + fresh.body().size());
  for (size_t i = 0; i < q.body().size(); ++i) {
    if (i == pos) {
      for (const Atom& a : fresh.body()) new_body.push_back(Apply(sub, a));
    } else {
      new_body.push_back(q.body()[i]);
    }
  }
  return ConjunctiveQuery(q.name(), q.head(), std::move(new_body));
}

}  // namespace

Result<std::vector<ConjunctiveQuery>> UnfoldQuery(
    const ConjunctiveQuery& query, const ViewRegistry& views,
    int max_depth) {
  std::vector<ConjunctiveQuery> frontier{query};
  std::vector<ConjunctiveQuery> done;
  int fresh_counter = 0;
  for (int depth = 0; depth <= max_depth; ++depth) {
    std::vector<ConjunctiveQuery> next;
    for (const auto& q : frontier) {
      // Find the first defined relation in the body.
      size_t pos = q.body().size();
      for (size_t i = 0; i < q.body().size(); ++i) {
        if (views.Defines(q.body()[i].relation)) {
          pos = i;
          break;
        }
      }
      if (pos == q.body().size()) {
        done.push_back(q);
        continue;
      }
      const auto* defs = views.Definitions(q.body()[pos].relation);
      for (const auto& def : *defs) {
        auto expanded = SubstituteDefinition(q, pos, def, &fresh_counter);
        if (expanded.has_value()) next.push_back(std::move(*expanded));
      }
    }
    if (next.empty()) return done;
    frontier = std::move(next);
  }
  return Status::FailedPrecondition(
      "unfolding exceeded max depth (cyclic view definitions?)");
}

Result<ConjunctiveQuery> UnfoldQueryUnique(const ConjunctiveQuery& query,
                                           const ViewRegistry& views,
                                           int max_depth) {
  for (const auto& atom : query.body()) {
    const auto* defs = views.Definitions(atom.relation);
    if (defs != nullptr && defs->size() > 1) {
      return Status::InvalidArgument("relation '" + atom.relation +
                                     "' has multiple definitions");
    }
  }
  REVERE_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> result,
                          UnfoldQuery(query, views, max_depth));
  if (result.size() != 1) {
    return Status::Internal("expected exactly one unfolding, got " +
                            std::to_string(result.size()));
  }
  return result.front();
}

}  // namespace revere::query
