#include "src/query/rewrite.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "src/query/containment.h"

namespace revere::query {

namespace {

// One bucket entry: a view-head atom that can cover a given subgoal,
// plus any bindings the unification imposed on *query* variables (a
// view constant can specialize a query variable).
struct BucketEntry {
  Atom view_atom;
  Substitution query_binding;
};

// Builds the bucket for subgoal `goal`: for every view and every body
// atom of that view unifiable with the goal, emit the view's head under
// that unifier (unbound head vars become fresh variables).
std::vector<BucketEntry> BuildBucket(
    const Atom& goal, const std::vector<ConjunctiveQuery>& views,
    int* fresh_counter) {
  std::vector<BucketEntry> bucket;
  for (const auto& view : views) {
    std::string prefix = "_b" + std::to_string((*fresh_counter)++) + "_";
    ConjunctiveQuery v = view.RenameVars(prefix);
    for (const auto& body_atom : v.body()) {
      // Two-way unification: the goal's variables may bind to view
      // constants (specialization) and vice versa. The final containment
      // check keeps only sound combinations.
      Substitution sub;
      if (!UnifyAtoms(body_atom, goal, &sub)) continue;
      sub = ResolveSubstitution(sub);
      Atom head = Apply(sub, v.HeadAtom());
      // Freshen view variables that remain unbound in the head (head
      // vars not constrained by this subgoal).
      Substitution freshen;
      for (auto& t : head.args) {
        if (t.is_var() && t.var().rfind(prefix, 0) == 0 &&
            freshen.count(t.var()) == 0) {
          freshen[t.var()] =
              QTerm::Var("_f" + std::to_string((*fresh_counter)++));
        }
      }
      head = Apply(freshen, head);
      // Keep only the bindings that touch query variables.
      Substitution query_binding;
      for (const auto& [var, term] : sub) {
        if (var.rfind("_b", 0) != 0) {
          query_binding[var] = Apply(freshen, term);
        }
      }
      bucket.push_back(BucketEntry{std::move(head), std::move(query_binding)});
    }
  }
  return bucket;
}

// Per-call memo for expansion-containment verdicts. The key is the
// canonical (α-renamed, order-preserving) text of the candidate's
// expansion; the query side is fixed for the memo's lifetime (one
// RewriteUsingViews call), and containment is invariant under renaming
// of the candidate, so α-equivalent expansions share one verdict. The
// stats pointer feeds check/hit counters.
struct ContainmentMemo {
  std::unordered_map<std::string, bool> verdicts;
  RewriteStats* stats;
};

// Memoized Contains(query, expansion).
bool ContainedInQuery(const ConjunctiveQuery& expansion,
                      const ConjunctiveQuery& query, ContainmentMemo* memo) {
  std::string key = Canonicalize(expansion).text;
  auto [it, inserted] = memo->verdicts.try_emplace(key, false);
  if (!inserted) {
    ++memo->stats->containment_memo_hits;
    return it->second;
  }
  ++memo->stats->containment_checks;
  it->second = Contains(query, expansion);
  return it->second;
}

// Expansion-containment test for a candidate rewriting. The registry is
// built once per RewriteUsingViews call (Add copies every view, so
// rebuilding it per candidate was a hidden per-call copy of the whole
// view set).
bool ExpansionContained(const ConjunctiveQuery& candidate,
                        const ViewRegistry& registry,
                        const ConjunctiveQuery& query,
                        ContainmentMemo* memo) {
  auto expansion = UnfoldQueryUnique(candidate, registry);
  return expansion.ok() && ContainedInQuery(expansion.value(), query, memo);
}

// The bucket method introduces fresh variables ("_f*") for view head
// positions not constrained by the covered subgoal. A valid rewriting
// may require *equating* such a variable with a query term (the case
// where one view covers several subgoals through a shared existential —
// MiniCon's C-clauses). We recover those rewritings by a bounded search
// over specializations of the fresh variables; soundness is preserved
// because every specialization is re-verified by the containment check.
std::optional<ConjunctiveQuery> TrySpecialize(
    const ConjunctiveQuery& candidate, const ViewRegistry& registry,
    const ConjunctiveQuery& query, ContainmentMemo* memo) {
  std::vector<std::string> fresh;
  for (const auto& v : candidate.AllVars()) {
    if (v.rfind("_f", 0) == 0) fresh.push_back(v);
  }
  if (fresh.empty() || fresh.size() > 4) return std::nullopt;

  // Specialization targets: the query's variables and constants.
  std::vector<QTerm> targets;
  for (const auto& v : query.AllVars()) targets.push_back(QTerm::Var(v));
  for (const auto& a : query.body()) {
    for (const auto& t : a.args) {
      if (!t.is_var() &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
  }
  if (targets.empty()) return std::nullopt;

  size_t combos = 1;
  for (size_t i = 0; i < fresh.size(); ++i) {
    combos *= targets.size() + 1;  // +1 = leave untouched
    if (combos > 4096) return std::nullopt;
  }
  for (size_t mask = 1; mask < combos; ++mask) {
    Substitution theta;
    size_t m = mask;
    for (const auto& fv : fresh) {
      size_t pick = m % (targets.size() + 1);
      m /= targets.size() + 1;
      if (pick > 0) theta[fv] = targets[pick - 1];
    }
    ConjunctiveQuery specialized = candidate.Substitute(theta);
    // Dedupe body atoms the substitution may have merged.
    std::vector<Atom> body;
    for (const auto& a : specialized.body()) {
      if (std::find(body.begin(), body.end(), a) == body.end()) {
        body.push_back(a);
      }
    }
    specialized =
        ConjunctiveQuery(specialized.name(), specialized.head(), body);
    if (specialized.IsSafe() &&
        ExpansionContained(specialized, registry, query, memo)) {
      return specialized;
    }
  }
  return std::nullopt;
}

std::string CanonicalBodyKey(std::vector<Atom> body) {
  std::vector<std::string> parts;
  parts.reserve(body.size());
  for (const auto& a : body) parts.push_back(a.ToString());
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const auto& p : parts) {
    key += p;
    key += ";";
  }
  return key;
}

}  // namespace

Result<ConjunctiveQuery> ExpandRewriting(
    const ConjunctiveQuery& rewriting,
    const std::vector<ConjunctiveQuery>& views) {
  ViewRegistry registry;
  for (const auto& v : views) registry.Add(v);
  // View names are unique per rewriting atom here; if a name has several
  // definitions the union unfolding would apply, which is not meaningful
  // for an expansion check, so require uniqueness.
  return UnfoldQueryUnique(rewriting, registry);
}

Result<std::vector<ConjunctiveQuery>> RewriteUsingViews(
    const ConjunctiveQuery& query, const std::vector<ConjunctiveQuery>& views,
    const RewriteOptions& options, RewriteStats* stats) {
  RewriteStats local_stats;
  // One registry and one containment memo for the whole run: every
  // expansion and containment check below reuses them.
  ViewRegistry registry;
  for (const auto& v : views) registry.Add(v);
  ContainmentMemo memo;
  memo.stats = &local_stats;
  // Build one bucket per subgoal.
  int fresh_counter = 0;
  std::vector<std::vector<BucketEntry>> buckets;
  buckets.reserve(query.body().size());
  for (const auto& goal : query.body()) {
    buckets.push_back(BuildBucket(goal, views, &fresh_counter));
    local_stats.bucket_entries += buckets.back().size();
    if (buckets.back().empty()) {
      // Some subgoal is uncoverable: no conjunctive rewriting exists.
      if (stats != nullptr) *stats = local_stats;
      return std::vector<ConjunctiveQuery>{};
    }
  }

  const std::set<std::string> head_vars = query.HeadVars();
  std::vector<ConjunctiveQuery> kept;
  // Expansion of each kept rewriting, computed once (the containment
  // prune used to re-expand every prior for every new candidate).
  std::vector<ConjunctiveQuery> kept_expansions;
  std::set<std::string> seen_bodies;

  // Enumerate the cross product of buckets.
  std::vector<size_t> choice(buckets.size(), 0);
  while (true) {
    if (local_stats.candidates_examined >= options.max_candidates) break;
    ++local_stats.candidates_examined;

    // Merge the query-variable bindings imposed by the chosen entries.
    Substitution merged;
    bool consistent = true;
    for (size_t i = 0; consistent && i < buckets.size(); ++i) {
      for (const auto& [var, term] : buckets[i][choice[i]].query_binding) {
        auto it = merged.find(var);
        if (it == merged.end()) {
          merged[var] = term;
        } else if (!(it->second == term)) {
          consistent = false;
          break;
        }
      }
    }

    // Assemble candidate body (set semantics: dedupe atoms).
    std::vector<Atom> body;
    if (consistent) {
      for (size_t i = 0; i < buckets.size(); ++i) {
        Atom a = Apply(merged, buckets[i][choice[i]].view_atom);
        if (std::find(body.begin(), body.end(), a) == body.end()) {
          body.push_back(std::move(a));
        }
      }
    }
    std::vector<QTerm> head;
    head.reserve(query.head().size());
    for (const auto& t : query.head()) head.push_back(Apply(merged, t));
    ConjunctiveQuery candidate(query.name(), std::move(head), body);

    std::string key = CanonicalBodyKey(body);
    if (consistent && seen_bodies.insert(key).second) {
      std::optional<ConjunctiveQuery> accepted;
      if (candidate.IsSafe() &&
          ExpansionContained(candidate, registry, query, &memo)) {
        accepted = candidate;
      } else {
        accepted = TrySpecialize(candidate, registry, query, &memo);
      }
      if (accepted.has_value()) {
        bool redundant = false;
        auto expansion = UnfoldQueryUnique(*accepted, registry);
        if (options.prune_contained && expansion.ok()) {
          for (const auto& prior_exp : kept_expansions) {
            ++local_stats.containment_checks;
            if (Contains(prior_exp, expansion.value())) {
              redundant = true;
              break;
            }
          }
        }
        if (!redundant) {
          // Accepted rewritings always expanded successfully inside
          // ExpansionContained; fall back to the rewriting itself if
          // the (unreachable) failure case ever changes.
          kept_expansions.push_back(expansion.ok()
                                        ? std::move(expansion.value())
                                        : *accepted);
          kept.push_back(std::move(*accepted));
          ++local_stats.candidates_kept;
        }
      }
    }

    // Advance odometer.
    size_t i = 0;
    while (i < choice.size()) {
      if (++choice[i] < buckets[i].size()) break;
      choice[i] = 0;
      ++i;
    }
    if (i == choice.size()) break;
  }
  (void)head_vars;
  if (stats != nullptr) *stats = local_stats;
  return kept;
}

}  // namespace revere::query
