#include "src/query/containment.h"

namespace revere::query {

namespace {

// Backtracking: map from_atoms[i..] into to_atoms (any target, reuse
// allowed), extending `sub`.
bool ExtendMapping(const std::vector<Atom>& from_atoms, size_t i,
                   const std::vector<Atom>& to_atoms, Substitution* sub) {
  if (i == from_atoms.size()) return true;
  for (const auto& target : to_atoms) {
    Substitution local = *sub;
    if (MatchAtom(from_atoms[i], target, &local)) {
      if (ExtendMapping(from_atoms, i + 1, to_atoms, &local)) {
        *sub = std::move(local);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  if (from.head().size() != to.head().size()) return std::nullopt;
  // Freeze `to`'s variables into opaque constants (the canonical
  // database construction): the mapping may only bind `from`'s
  // variables, never the target's.
  Substitution freeze;
  for (const auto& v : to.AllVars()) {
    freeze[v] = QTerm::Const(storage::Value("\x01frozen:" + v));
  }
  ConjunctiveQuery frozen_to = to.Substitute(freeze);
  // Head must map position-wise; encode as a synthetic atom match.
  Substitution sub;
  Atom from_head{"#head", from.head()};
  Atom to_head{"#head", frozen_to.head()};
  if (!MatchAtom(from_head, to_head, &sub)) return std::nullopt;
  if (!ExtendMapping(from.body(), 0, frozen_to.body(), &sub)) {
    return std::nullopt;
  }
  return sub;
}

bool Contains(const ConjunctiveQuery& outer, const ConjunctiveQuery& inner) {
  return FindContainmentMapping(outer, inner).has_value();
}

bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return Contains(a, b) && Contains(b, a);
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& query) {
  ConjunctiveQuery current = query;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<Atom>& body = current.body();
    for (size_t i = 0; i < body.size(); ++i) {
      if (body.size() == 1) break;  // keep at least one atom
      std::vector<Atom> reduced;
      reduced.reserve(body.size() - 1);
      for (size_t j = 0; j < body.size(); ++j) {
        if (j != i) reduced.push_back(body[j]);
      }
      ConjunctiveQuery candidate(current.name(), current.head(), reduced);
      if (!candidate.IsSafe()) continue;
      // reduced has fewer constraints, so current ⊆ candidate always;
      // equivalence needs candidate ⊆ current.
      if (Contains(current, candidate)) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace revere::query
