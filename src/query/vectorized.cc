#include "src/query/vectorized.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/simd.h"
#include "src/obs/metrics.h"
#include "src/query/resolve.h"
#include "src/storage/column_table.h"

namespace revere::query {

namespace {

using storage::ColumnTable;
using storage::Row;
using storage::Value;

/// Tuples per batch through the join pipeline. Small enough that a
/// batch's row-id arrays stay cache-resident, large enough to amortize
/// the per-chunk setup.
constexpr size_t kChunkRows = 1024;
constexpr uint32_t kNoCode = ColumnTable::kNoCode;

/// Candidate-set size below which the per-candidate scalar check loop
/// beats the mask/compact kernels (a few kernel calls cost more than a
/// handful of compares). Depends only on the data, never the backend,
/// so both kernel tables take the same path and stay byte-identical.
constexpr size_t kScalarCandCutoff = 16;

// ---------------------------------------------------------------------
// Plan: the slot engine's query-static join order, compiled to integer
// code comparisons against ColumnTable snapshots.
// ---------------------------------------------------------------------

/// One residual equality constraint on a candidate row: position `col`
/// of this step's table must decode to the same Value as the source —
/// a query constant, a variable bound by an earlier step, or an earlier
/// position of this same atom (repeated variable). All three reduce to
/// one uint32 comparison: candidate code vs an expected code obtained
/// through the source column's translation array (kNoCode = the source
/// value does not occur in this column at all, so nothing matches).
struct Check {
  size_t col = 0;
  bool is_const = false;
  uint32_t const_code = kNoCode;
  /// Variable source: step and column of the binding site. `intra` when
  /// the binding site is an earlier position of this same step, in
  /// which case the expected code is computed per candidate row rather
  /// than hoisted per tuple.
  size_t src_step = 0;
  size_t src_col = 0;
  bool intra = false;
  /// Same snapshot + same column: codes compare directly, no table.
  bool identity = false;
  /// src dict code -> this column's code (kNoCode on miss). Built once
  /// per plan — O(|src dict|) Value hashes — so the per-row loops never
  /// hash or compare Values.
  std::vector<uint32_t> xlate;
  /// Raw code vectors (into the snapshots the plan's steps keep alive).
  const uint32_t* col_codes = nullptr;
  const uint32_t* src_codes = nullptr;
};

struct ExecStep {
  std::shared_ptr<const ColumnTable> snap;
  /// Probe position (-1 = full scan): the first position bound at entry
  /// — a constant or a variable bound by an earlier step. Candidates
  /// come from the grouped index range for the probe code, which both
  /// subsumes the equality check at that position and enumerates rows
  /// in ascending order, exactly like Table::LookupIndices. The choice
  /// of probe column never affects output: the residual checks accept
  /// the same row set and every enumeration path is ascending.
  int probe_col = -1;
  bool probe_is_const = false;
  uint32_t probe_const_code = kNoCode;
  size_t probe_src_step = 0;
  size_t probe_src_col = 0;
  bool probe_identity = false;
  std::vector<uint32_t> probe_xlate;
  const uint32_t* probe_src_codes = nullptr;
  std::vector<Check> checks;
};

/// One head position: a constant, a bound variable's (step, col) site,
/// or an unbound variable (null Value), mirroring the slot engine's
/// head emission.
struct HeadSlot {
  const Value* constant = nullptr;
  int step = -1;
  size_t col = 0;
};

struct ColumnarPlan {
  std::vector<ExecStep> steps;
  std::vector<HeadSlot> head;
};

std::vector<uint32_t> BuildXlate(const ColumnTable::Column& src,
                                 const ColumnTable& dst, size_t dst_col) {
  std::vector<uint32_t> x(src.dict.size());
  for (size_t i = 0; i < src.dict.size(); ++i) {
    x[i] = dst.CodeOf(dst_col, src.dict[i]);
  }
  return x;
}

ColumnarPlan Compile(
    const ConjunctiveQuery& query,
    const std::vector<ResolvedAtom>& atoms) {
  ColumnarPlan plan;
  // Replay the slot engine's greedy most-bound-first atom order (ties:
  // lowest atom index). The order is query-static: once an atom is
  // solved, every one of its variables is bound, so the bound set after
  // k steps is the union of those atoms' variables regardless of row
  // values — which is what lets this breadth-style batch pipeline
  // reproduce the slot engine's DFS emission order byte for byte.
  const size_t n = atoms.size();
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<bool> done(n, false);
  std::unordered_set<std::string> bound_vars;
  for (size_t round = 0; round < n; ++round) {
    size_t best = n;
    int best_bound = -1;
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      int b = 0;
      for (const QTerm& t : atoms[i].atom->args) {
        if (!t.is_var() || bound_vars.count(t.var()) > 0) ++b;
      }
      if (b > best_bound) {
        best_bound = b;
        best = i;
      }
    }
    done[best] = true;
    order.push_back(best);
    for (const QTerm& t : atoms[best].atom->args) {
      if (t.is_var()) bound_vars.insert(t.var());
    }
  }

  struct Site {
    size_t step;
    size_t col;
  };
  std::unordered_map<std::string, Site> site_of;
  plan.steps.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    const Atom& atom = *atoms[order[s]].atom;
    ExecStep step;
    // Per-version memoized build: every plan step over this pinned
    // version — in this query or any other — shares one ColumnTable.
    step.snap = atoms[order[s]].snap->EnsureColumnar();
    // Pass 1 — probe: first position bound at entry (sites from earlier
    // steps only; this atom's own sites are assigned in pass 2).
    for (size_t c = 0; c < atom.args.size(); ++c) {
      const QTerm& t = atom.args[c];
      if (!t.is_var()) {
        step.probe_col = static_cast<int>(c);
        step.probe_is_const = true;
        step.probe_const_code = step.snap->CodeOf(c, t.value());
        break;
      }
      auto it = site_of.find(t.var());
      if (it == site_of.end()) continue;
      step.probe_col = static_cast<int>(c);
      step.probe_src_step = it->second.step;
      step.probe_src_col = it->second.col;
      const ColumnTable& src_snap = *plan.steps[it->second.step].snap;
      step.probe_src_codes = src_snap.column(it->second.col).codes.data();
      step.probe_identity =
          &src_snap == step.snap.get() && it->second.col == c;
      if (!step.probe_identity) {
        step.probe_xlate =
            BuildXlate(src_snap.column(it->second.col), *step.snap, c);
      }
      break;
    }
    // Pass 2 — classify the remaining positions: new binding sites
    // (first occurrence of a variable: no constraint, the candidate row
    // defines the value) and residual checks.
    for (size_t c = 0; c < atom.args.size(); ++c) {
      if (static_cast<int>(c) == step.probe_col) continue;  // subsumed
      const QTerm& t = atom.args[c];
      if (!t.is_var()) {
        Check ck;
        ck.col = c;
        ck.is_const = true;
        ck.const_code = step.snap->CodeOf(c, t.value());
        ck.col_codes = step.snap->column(c).codes.data();
        step.checks.push_back(std::move(ck));
        continue;
      }
      auto [it, inserted] = site_of.emplace(t.var(), Site{s, c});
      if (inserted) continue;  // binds here, checked nowhere
      Check ck;
      ck.col = c;
      ck.src_step = it->second.step;
      ck.src_col = it->second.col;
      ck.intra = ck.src_step == s;
      const ColumnTable* src_snap =
          ck.intra ? step.snap.get() : plan.steps[ck.src_step].snap.get();
      ck.identity = src_snap == step.snap.get() && ck.src_col == c;
      ck.col_codes = step.snap->column(c).codes.data();
      ck.src_codes = src_snap->column(ck.src_col).codes.data();
      if (!ck.identity) {
        ck.xlate = BuildXlate(src_snap->column(ck.src_col), *step.snap, c);
      }
      step.checks.push_back(std::move(ck));
    }
    plan.steps.push_back(std::move(step));
  }

  plan.head.reserve(query.head().size());
  for (const QTerm& t : query.head()) {
    HeadSlot h;
    if (!t.is_var()) {
      h.constant = &t.value();
    } else {
      auto it = site_of.find(t.var());
      if (it != site_of.end()) {
        h.step = static_cast<int>(it->second.step);
        h.col = it->second.col;
      }
    }
    plan.head.push_back(h);
  }
  return plan;
}

// ---------------------------------------------------------------------
// Execution: chunked batch pipeline over an arena, on the simd.h
// kernels (scalar or vector table per options.use_simd — bit-identical
// either way).
// ---------------------------------------------------------------------

/// Dictionary-decodes one completed tuple into a Row and dedups it —
/// only used for the body-free base case; batches go through
/// OutputBoundary.
void MaterializeTuple(const ColumnarPlan& plan, uint32_t* const* cols,
                      size_t t, RowDedup* dedup) {
  Row result;
  result.reserve(plan.head.size());
  for (const HeadSlot& h : plan.head) {
    if (h.constant != nullptr) {
      result.push_back(*h.constant);
    } else if (h.step >= 0) {
      result.push_back(plan.steps[h.step].snap->ValueAt(h.col, cols[h.step][t]));
    } else {
      result.emplace_back();
    }
  }
  dedup->EmitIfNew(std::move(result));
}

/// The batched output boundary (ISSUE 8): hashes whole chunks of
/// completed tuples directly from column codes and decodes only the
/// rows that survive dedup.
///
/// Per chunk: (1) gather each bound head slot's dictionary codes for
/// all tuples (one gather kernel per slot), (2) chain HashStep over the
/// per-dictionary value-hash tables — reproducing storage::HashRow of
/// the decoded row bit for bit without touching a dictionary, (3) probe
/// RowDedup sequentially (order is semantics: first occurrence wins),
/// comparing duplicates by code signature within the call and by Value
/// against pre-existing rows, and (4) decode the surviving rows
/// column-major, one head slot at a time, into the output vector.
class OutputBoundary {
 public:
  OutputBoundary(const ColumnarPlan& plan, const simd::SimdOps& ops,
                 RowDedup* dedup)
      : head_(plan.head.size()), ops_(ops), dedup_(dedup) {
    for (size_t j = 0; j < plan.head.size(); ++j) {
      const HeadSlot& h = plan.head[j];
      BSlot& b = head_[j];
      if (h.constant != nullptr) {
        b.constant = h.constant;
        b.chash = h.constant->Hash();
      } else if (h.step >= 0) {
        const ColumnTable::Column& c = plan.steps[h.step].snap->column(h.col);
        b.step = h.step;
        b.codes = c.codes.data();
        b.vh = c.dict_hashes.data();
        b.dict = c.dict.data();
        b.vslot = static_cast<int>(nvar_++);
      } else {
        b.chash = null_.Hash();
      }
    }
    slot_codes_.resize(nvar_);
  }

  /// Number of rows appended to the output so far by this boundary.
  size_t rows_decoded() const { return rows_decoded_; }

  /// Emits one completed chunk: `cols` are the pipeline's per-step
  /// row-id arrays holding `size` tuples (size > 0), each allocated
  /// with PaddedCount capacity. Overwrites their padded tails.
  void EmitChunk(uint32_t* const* cols, size_t size, Arena* arena) {
    const size_t nsl = head_.size();
    // Pad the tuple arrays with a valid tuple so whole-lane gathers in
    // the tail dereference real row ids.
    for (const BSlot& b : head_) {
      if (b.step < 0) continue;
      uint32_t* col = cols[b.step];
      for (size_t i = size; i < simd::RoundUpLanes(size); ++i) col[i] = col[0];
    }
    // (1) Per-slot code gather + (2) code-domain hash chain, whole
    // chunk at a time. Seed matches HashRow: the row arity.
    uint64_t* h = arena->AllocateArray<uint64_t>(simd::PaddedCount(size));
    ops_.fill_u64(static_cast<uint64_t>(nsl), size, h);
    for (const BSlot& b : head_) {
      if (b.step < 0) {
        ops_.hash_mix_const(b.chash, size, h);
        continue;
      }
      uint32_t* sc =
          arena->AllocateArray<uint32_t>(simd::PaddedCount(size));
      ops_.gather_u32(b.codes, cols[b.step], size, sc);
      slot_codes_[b.vslot] = sc;
      ops_.hash_mix(b.vh, sc, size, h);
    }
    // (3) Sequential dedup probes. Claims are deferred: the row itself
    // is decoded only after the whole chunk has probed.
    const size_t base = dedup_->out()->size();
    pending_.clear();
    sigs_.clear();
    for (size_t t = 0; t < size; ++t) {
      int64_t claimed = dedup_->ClaimIfNew(h[t], [&](size_t i) {
        if (i >= base) {  // pending claim from this chunk: compare codes
          const uint32_t* sig = sigs_.data() + (i - base) * nvar_;
          for (size_t v = 0; v < nvar_; ++v) {
            if (sig[v] != slot_codes_[v][t]) return false;
          }
          return true;
        }
        const Row& existing = (*dedup_->out())[i];
        for (size_t j = 0; j < nsl; ++j) {
          const BSlot& b = head_[j];
          const Value& want = b.constant != nullptr ? *b.constant
                              : b.step >= 0 ? b.dict[slot_codes_[b.vslot][t]]
                                            : null_;
          if (!(existing[j] == want)) return false;
        }
        return true;
      });
      if (claimed < 0) continue;
      pending_.push_back(static_cast<uint32_t>(t));
      for (size_t v = 0; v < nvar_; ++v) {
        sigs_.push_back(slot_codes_[v][t]);
      }
    }
    // (4) Column-major decode of the survivors: per head slot, walk the
    // pending tuples — dictionary and output locality beat row-major.
    std::vector<Row>* out = dedup_->out();
    const size_t np = pending_.size();
    out->resize(base + np);
    for (size_t k = 0; k < np; ++k) {
      (*out)[base + k].resize(nsl);  // null-filled; unbound slots stay
    }
    for (const BSlot& b : head_) {
      size_t j = static_cast<size_t>(&b - head_.data());
      if (b.constant != nullptr) {
        for (size_t k = 0; k < np; ++k) (*out)[base + k][j] = *b.constant;
      } else if (b.step >= 0) {
        const uint32_t* sc = slot_codes_[b.vslot];
        for (size_t k = 0; k < np; ++k) {
          (*out)[base + k][j] = b.dict[sc[pending_[k]]];
        }
      }
    }
    rows_decoded_ += np;
  }

 private:
  struct BSlot {
    const Value* constant = nullptr;  // non-null: constant head term
    uint64_t chash = 0;               // hash of constant / null value
    int step = -1;                    // >= 0: bound variable slot
    int vslot = -1;                   // index into slot_codes_
    const uint32_t* codes = nullptr;  // per-row codes of the source col
    const uint64_t* vh = nullptr;     // code -> value hash
    const Value* dict = nullptr;      // code -> value
  };

  std::vector<BSlot> head_;
  const simd::SimdOps& ops_;
  RowDedup* dedup_;
  const Value null_;
  size_t nvar_ = 0;
  size_t rows_decoded_ = 0;
  std::vector<uint32_t*> slot_codes_;   // per var slot, arena chunk arrays
  std::vector<uint32_t> pending_;       // tuple indexes claimed this chunk
  std::vector<uint32_t> sigs_;          // pending code signatures, nvar_ wide
};

}  // namespace

RowDedup::RowDedup(std::vector<Row>* out) : out_(out) {
  size_t slots = 64;
  while (slots < out_->size() * 2) slots *= 2;
  table_.assign(slots, 0);
  mask_ = slots - 1;
  hashes_.reserve(out_->size());
  for (size_t i = 0; i < out_->size(); ++i) {
    hashes_.push_back(storage::HashRow((*out_)[i]));
    InsertIndexed(hashes_.back(), i);
  }
}

void RowDedup::Grow() {
  table_.assign(table_.size() * 2, 0);
  mask_ = table_.size() - 1;
  // Re-seat every row by its cached hash — row contents untouched.
  for (size_t i = 0; i < hashes_.size(); ++i) {
    size_t slot = hashes_[i] & mask_;
    while (table_[slot] != 0) slot = (slot + 1) & mask_;
    table_[slot] = static_cast<uint32_t>(i + 1);
  }
}

bool RowDedup::InsertIndexed(uint64_t h, size_t index) {
  size_t slot = h & mask_;
  while (true) {
    uint32_t e = table_[slot];
    if (e == 0) {
      table_[slot] = static_cast<uint32_t>(index + 1);
      return true;
    }
    if (hashes_[e - 1] == h && (*out_)[e - 1] == (*out_)[index]) return false;
    slot = (slot + 1) & mask_;
  }
}

bool RowDedup::EmitIfNew(Row&& r) {
  // Keep load factor under 1/2 so linear probes stay short.
  if ((hashes_.size() + 1) * 2 > table_.size()) Grow();
  uint64_t h = storage::HashRow(r);
  size_t slot = h & mask_;
  while (true) {
    uint32_t e = table_[slot];
    if (e == 0) {
      out_->push_back(std::move(r));
      hashes_.push_back(h);
      table_[slot] = static_cast<uint32_t>(out_->size());
      return true;
    }
    if (hashes_[e - 1] == h && (*out_)[e - 1] == r) return false;
    slot = (slot + 1) & mask_;
  }
}

Status EvaluateColumnarInto(const storage::Catalog& catalog,
                            const ConjunctiveQuery& query,
                            const EvalOptions& options, RowDedup* dedup) {
  // Columnar counters (ISSUE 7), mirroring the eval.* convention:
  // resolved once, relaxed atomic adds after that.
  static obs::Counter* batches =
      obs::MetricsRegistry::Default().GetCounter("columnar.batches");
  static obs::Counter* rows_mat =
      obs::MetricsRegistry::Default().GetCounter("columnar.rows_materialized");
  static obs::Counter* arena_bytes =
      obs::MetricsRegistry::Default().GetCounter("columnar.arena_bytes");
  static obs::Gauge* dict_entries =
      obs::MetricsRegistry::Default().GetGauge("columnar.dict_entries");

  // The index knobs are meaningless here (every snapshot column carries
  // a grouped index); the pool/tracer knobs are handled by
  // EvaluateUnion, exactly as for the other engines.
  const simd::SimdOps& ops = simd::Ops(options.use_simd);

  REVERE_ASSIGN_OR_RETURN(auto atoms,
                          ResolveAtoms(catalog, query, options.snapshots));
  ColumnarPlan plan = Compile(query, atoms);

  {
    size_t total = 0;
    std::unordered_set<const ColumnTable*> distinct;
    for (const auto& s : plan.steps) {
      if (distinct.insert(s.snap.get()).second) total += s.snap->dict_entries();
    }
    dict_entries->Set(static_cast<int64_t>(total));
  }

  const size_t nsteps = plan.steps.size();
  if (nsteps == 0) {
    // Body-free query: one head row of constants / nulls — the same
    // base case the recursive engines hit at remaining == 0.
    uint32_t* no_cols = nullptr;
    MaterializeTuple(plan, &no_cols, 0, dedup);
    rows_mat->Increment();
    return Status::Ok();
  }

  // Step-0 candidate stream: a grouped-index range when the atom has a
  // constant (step 0 has no earlier bindings, so a probe can only be a
  // constant), else the whole table — either way ascending row ids,
  // consumed in kChunkRows slices.
  const ExecStep& s0 = plan.steps[0];
  const uint32_t* cand0 = nullptr;
  size_t cand0_n = 0;
  if (s0.probe_col >= 0) {
    if (s0.probe_const_code == kNoCode) return Status::Ok();
    const auto& pc = s0.snap->column(s0.probe_col);
    cand0 = pc.group_rows.data() + pc.group_offsets[s0.probe_const_code];
    cand0_n = pc.group_offsets[s0.probe_const_code + 1] -
              pc.group_offsets[s0.probe_const_code];
  } else {
    cand0_n = s0.snap->row_count();
  }

  Arena arena;
  OutputBoundary boundary(plan, ops, dedup);
  std::vector<uint32_t*> cols, newcols;
  std::vector<uint32_t> expected;  // hoisted per-tuple codes, per check
  // Candidate-set scratch for the masked check path; sized to the
  // largest candidate set seen, reused across tuples and chunks.
  std::vector<uint32_t> crows, ca, cb;
  std::vector<uint64_t> cmask;
  auto reserve_scratch = [&](size_t cn) {
    if (crows.size() < simd::PaddedCount(cn)) {
      crows.resize(simd::PaddedCount(cn));
      ca.resize(simd::PaddedCount(cn));
      cb.resize(simd::PaddedCount(cn));
      cmask.resize(simd::MaskWords(cn));
    }
  };
  for (size_t off = 0; off < cand0_n; off += kChunkRows) {
    const size_t len = std::min(kChunkRows, cand0_n - off);
    arena.Reset();
    batches->Increment();

    // Stage 0: filter this chunk's candidates into a selection vector —
    // one mask kernel per residual check, then one compaction. Checks
    // here are constants or intra-atom repeats only.
    uint32_t* rows0 = arena.AllocateArray<uint32_t>(simd::PaddedCount(len));
    if (cand0 != nullptr) {
      ops.copy_u32(cand0 + off, len, rows0);
    } else {
      ops.iota_u32(static_cast<uint32_t>(off), len, rows0);
    }
    uint32_t* sel = rows0;
    size_t size = len;
    if (!s0.checks.empty()) {
      reserve_scratch(len);
      for (size_t k = 0; k < s0.checks.size(); ++k) {
        const Check& ck = s0.checks[k];
        ops.gather_u32(ck.col_codes, rows0, len, ca.data());
        if (ck.is_const) {
          // const_code may be kNoCode (value absent): no code equals
          // the sentinel, so the mask naturally goes empty.
          (k == 0 ? ops.eq_mask_set : ops.eq_mask_and)(ca.data(),
                                                       ck.const_code, len,
                                                       cmask.data());
        } else {
          ops.gather_u32(ck.src_codes, rows0, len, cb.data());
          if (!ck.identity) {
            ops.gather_u32(ck.xlate.data(), cb.data(), len, cb.data());
          }
          (k == 0 ? ops.eq2_mask_set : ops.eq2_mask_and)(
              ca.data(), cb.data(), len, cmask.data());
        }
      }
      sel = arena.AllocateArray<uint32_t>(simd::PaddedCount(len));
      size = ops.compact_u32(rows0, cmask.data(), len, sel);
    }
    cols.assign(1, sel);

    // Join pipeline: expand the batch through steps 1..n-1. Each output
    // tuple is one row-id per joined step, stored column-wise in arena
    // arrays that grow geometrically (always PaddedCount-allocated so
    // whole-lane kernels can run right up to the end).
    for (size_t s = 1; s < nsteps && size > 0; ++s) {
      const ExecStep& st = plan.steps[s];
      size_t cap = std::max<size_t>(size, 64);
      newcols.assign(s + 1, nullptr);
      for (size_t j = 0; j <= s; ++j) {
        newcols[j] = arena.AllocateArray<uint32_t>(simd::PaddedCount(cap));
      }
      size_t nsize = 0;
      auto grow_to = [&](size_t need) {
        while (cap < need) cap *= 2;
        for (size_t j = 0; j <= s; ++j) {
          uint32_t* p = arena.AllocateArray<uint32_t>(simd::PaddedCount(cap));
          std::memcpy(p, newcols[j], nsize * sizeof(uint32_t));
          newcols[j] = p;
        }
      };
      expected.resize(st.checks.size());
      for (size_t t = 0; t < size; ++t) {
        // Probe: translate the tuple's bound code into this table's
        // code space and take the grouped-index range.
        const uint32_t* cand = nullptr;
        size_t cn = 0;
        if (st.probe_col >= 0) {
          uint32_t key;
          if (st.probe_is_const) {
            key = st.probe_const_code;
          } else {
            uint32_t sc = st.probe_src_codes[cols[st.probe_src_step][t]];
            key = st.probe_identity ? sc : st.probe_xlate[sc];
          }
          if (key == kNoCode) continue;
          const auto& pc = st.snap->column(st.probe_col);
          cand = pc.group_rows.data() + pc.group_offsets[key];
          cn = pc.group_offsets[key + 1] - pc.group_offsets[key];
        } else {
          cn = st.snap->row_count();
        }
        if (cn == 0) continue;
        // Hoist the expected code of every earlier-step check once per
        // tuple; a kNoCode means the bound value is absent from the
        // checked column, so no candidate can match.
        bool dead = false;
        for (size_t k = 0; k < st.checks.size(); ++k) {
          const Check& ck = st.checks[k];
          if (ck.is_const) {
            expected[k] = ck.const_code;
          } else if (!ck.intra) {
            uint32_t sc = ck.src_codes[cols[ck.src_step][t]];
            expected[k] = ck.identity ? sc : ck.xlate[sc];
          } else {
            continue;  // intra: per-candidate below
          }
          if (expected[k] == kNoCode) {
            dead = true;
            break;
          }
        }
        if (dead) continue;

        if (st.checks.empty()) {
          // No residual checks: the whole candidate range joins. Bulk
          // append — broadcast the prefix columns, copy the row ids.
          // This is the P3 title-self-join fast path.
          if (nsize + cn > cap) grow_to(nsize + cn);
          for (size_t j = 0; j < s; ++j) {
            ops.fill_u32(cols[j][t], cn, newcols[j] + nsize);
          }
          if (cand != nullptr) {
            ops.copy_u32(cand, cn, newcols[s] + nsize);
          } else {
            ops.iota_u32(0, cn, newcols[s] + nsize);
          }
          nsize += cn;
          continue;
        }

        if (cn < kScalarCandCutoff) {
          // Small candidate set: scalar per-candidate loop.
          for (size_t i = 0; i < cn; ++i) {
            uint32_t r = cand != nullptr ? cand[i] : static_cast<uint32_t>(i);
            bool pass = true;
            for (size_t k = 0; k < st.checks.size(); ++k) {
              const Check& ck = st.checks[k];
              uint32_t want;
              if (ck.intra) {
                uint32_t sc = ck.src_codes[r];
                want = ck.identity ? sc : ck.xlate[sc];
              } else {
                want = expected[k];
              }
              if (ck.col_codes[r] != want) {
                pass = false;
                break;
              }
            }
            if (!pass) continue;
            if (nsize == cap) grow_to(cap + 1);
            for (size_t j = 0; j < s; ++j) newcols[j][nsize] = cols[j][t];
            newcols[s][nsize] = r;
            ++nsize;
          }
          continue;
        }

        // Masked path: one gather + compare kernel per check over the
        // whole candidate range, then compact the survivors straight
        // into the output arrays. Identical accept set and order to the
        // scalar loop above.
        reserve_scratch(cn);
        uint32_t* rows = crows.data();
        if (cand != nullptr) {
          ops.copy_u32(cand, cn, rows);
        } else {
          ops.iota_u32(0, cn, rows);
        }
        for (size_t k = 0; k < st.checks.size(); ++k) {
          const Check& ck = st.checks[k];
          ops.gather_u32(ck.col_codes, rows, cn, ca.data());
          if (ck.intra) {
            ops.gather_u32(ck.src_codes, rows, cn, cb.data());
            if (!ck.identity) {
              ops.gather_u32(ck.xlate.data(), cb.data(), cn, cb.data());
            }
            (k == 0 ? ops.eq2_mask_set : ops.eq2_mask_and)(
                ca.data(), cb.data(), cn, cmask.data());
          } else {
            (k == 0 ? ops.eq_mask_set : ops.eq_mask_and)(
                ca.data(), expected[k], cn, cmask.data());
          }
        }
        if (nsize + cn > cap) grow_to(nsize + cn);
        size_t m = ops.compact_u32(rows, cmask.data(), cn, newcols[s] + nsize);
        for (size_t j = 0; j < s; ++j) {
          ops.fill_u32(cols[j][t], m, newcols[j] + nsize);
        }
        nsize += m;
      }
      cols = newcols;
      size = nsize;
    }

    // Output boundary: batched hash + dedup + column-major decode, in
    // pipeline (= DFS) order.
    if (size > 0) boundary.EmitChunk(cols.data(), size, &arena);
  }
  rows_mat->Increment(boundary.rows_decoded());
  arena_bytes->Increment(arena.bytes_reserved());
  return Status::Ok();
}

}  // namespace revere::query
