#include "src/query/evaluate.h"

#include <cstdint>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/query/resolve.h"
#include "src/query/vectorized.h"

namespace revere::query {

namespace {

using storage::Row;
using storage::SnapshotSet;
using storage::TableVersion;
using storage::Value;

// ---------------------------------------------------------------------
// Legacy engine: string-keyed map bindings copied per candidate row.
// Kept verbatim (EvalEngine::kMap) as the reference implementation for
// differential tests and as the bench baseline the slot engine is
// measured against.
// ---------------------------------------------------------------------

using ValueBinding = std::map<std::string, Value>;

// Number of argument positions of `atom` fixed under `binding`.
int BoundPositions(const Atom& atom, const ValueBinding& binding) {
  int n = 0;
  for (const auto& t : atom.args) {
    if (!t.is_var() || binding.count(t.var()) > 0) ++n;
  }
  return n;
}

// Tries to extend `binding` so that `row` matches `atom`; returns false
// (leaving binding untouched) on mismatch.
bool MatchRow(const Atom& atom, const Row& row, ValueBinding* binding) {
  ValueBinding local = *binding;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const QTerm& t = atom.args[i];
    if (t.is_var()) {
      auto it = local.find(t.var());
      if (it == local.end()) {
        local[t.var()] = row[i];
      } else if (!(it->second == row[i])) {
        return false;
      }
    } else if (!(t.value() == row[i])) {
      return false;
    }
  }
  *binding = std::move(local);
  return true;
}

void MapSearch(const std::vector<ResolvedAtom>& atoms,
               std::vector<bool>* done, const ValueBinding& binding,
               const std::vector<QTerm>& head, RowDedup* dedup) {
  // All atoms satisfied: emit the head tuple.
  size_t remaining = 0;
  for (bool d : *done) {
    if (!d) ++remaining;
  }
  if (remaining == 0) {
    Row result;
    result.reserve(head.size());
    for (const auto& t : head) {
      if (t.is_var()) {
        auto it = binding.find(t.var());
        result.push_back(it == binding.end() ? Value() : it->second);
      } else {
        result.push_back(t.value());
      }
    }
    dedup->EmitIfNew(std::move(result));
    return;
  }

  // Pick the unsolved atom with the most bound positions.
  size_t best = atoms.size();
  int best_bound = -1;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if ((*done)[i]) continue;
    int b = BoundPositions(*atoms[i].atom, binding);
    if (b > best_bound) {
      best_bound = b;
      best = i;
    }
  }
  const TableVersion* table = atoms[best].snap.get();
  const Atom& atom = *atoms[best].atom;
  (*done)[best] = true;

  // If some position is bound and indexed, probe; else scan.
  std::optional<size_t> probe_col;
  Value probe_key;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const QTerm& t = atom.args[i];
    Value key;
    bool bound = false;
    if (!t.is_var()) {
      key = t.value();
      bound = true;
    } else {
      auto it = binding.find(t.var());
      if (it != binding.end()) {
        key = it->second;
        bound = true;
      }
    }
    if (bound && table->HasIndex(i)) {
      probe_col = i;
      probe_key = key;
      break;
    }
  }

  auto consider = [&](const Row& row) {
    ValueBinding next = binding;
    if (MatchRow(atom, row, &next)) {
      MapSearch(atoms, done, next, head, dedup);
    }
  };
  if (probe_col) {
    for (size_t idx : table->LookupIndices(*probe_col, probe_key)) {
      consider(table->row(idx));
    }
  } else {
    for (size_t r = 0; r < table->size(); ++r) consider(table->row(r));
  }
  (*done)[best] = false;
}

// ---------------------------------------------------------------------
// Slot engine: per CQ, variable names compile to dense integer slots;
// the binding is a vector<Value> plus a bound-bitmask mutated and
// rolled back in place — no map copies anywhere in the search.
// ---------------------------------------------------------------------

/// One compiled argument position: either a constant (borrowed from the
/// query, which outlives the evaluation) or a slot number.
struct SlotTerm {
  const Value* constant = nullptr;  // non-null -> constant position
  int slot = -1;                    // valid when constant == nullptr
};

struct SlotAtom {
  const TableVersion* table = nullptr;
  std::vector<SlotTerm> terms;
};

/// Dynamic bitmask over slots (queries reformulated through deep
/// mapping chains can exceed 64 variables).
class BoundMask {
 public:
  explicit BoundMask(size_t slots) : words_((slots + 63) / 64, 0) {}
  bool test(int s) const {
    return (words_[static_cast<size_t>(s) >> 6] >> (s & 63)) & 1;
  }
  void set(int s) {
    words_[static_cast<size_t>(s) >> 6] |= uint64_t{1} << (s & 63);
  }
  void clear(int s) {
    words_[static_cast<size_t>(s) >> 6] &= ~(uint64_t{1} << (s & 63));
  }

 private:
  std::vector<uint64_t> words_;
};

struct SlotProgram {
  std::vector<SlotAtom> atoms;
  std::vector<SlotTerm> head;
  size_t num_slots = 0;
};

/// Maps every distinct variable to a dense slot, once per CQ.
SlotProgram CompileSlots(const ConjunctiveQuery& query,
                         const std::vector<ResolvedAtom>& atoms) {
  SlotProgram prog;
  std::unordered_map<std::string, int> slot_of;
  auto compile_term = [&](const QTerm& t) {
    SlotTerm st;
    if (t.is_var()) {
      auto [it, inserted] =
          slot_of.emplace(t.var(), static_cast<int>(slot_of.size()));
      (void)inserted;
      st.slot = it->second;
    } else {
      st.constant = &t.value();
    }
    return st;
  };
  prog.head.reserve(query.head().size());
  for (const auto& t : query.head()) prog.head.push_back(compile_term(t));
  prog.atoms.reserve(atoms.size());
  for (const auto& ra : atoms) {
    SlotAtom sa;
    sa.table = ra.snap.get();
    sa.terms.reserve(ra.atom->args.size());
    for (const auto& t : ra.atom->args) sa.terms.push_back(compile_term(t));
    prog.atoms.push_back(std::move(sa));
  }
  prog.num_slots = slot_of.size();
  return prog;
}

/// All mutable state of one slot-engine search, shared down the
/// recursion instead of copied.
struct SlotState {
  const SlotProgram& prog;
  const EvalOptions& options;
  std::vector<Value> slots;
  BoundMask bound;
  std::vector<int> trail;  // slots bound on the path to the current node
  std::vector<bool> done;
  RowDedup* dedup;

  SlotState(const SlotProgram& p, const EvalOptions& opts, RowDedup* d)
      : prog(p),
        options(opts),
        slots(p.num_slots),
        bound(p.num_slots),
        done(p.atoms.size(), false),
        dedup(d) {}
};

void SlotSearch(SlotState& st, size_t remaining) {
  if (remaining == 0) {
    Row result;
    result.reserve(st.prog.head.size());
    for (const auto& t : st.prog.head) {
      if (t.constant != nullptr) {
        result.push_back(*t.constant);
      } else if (st.bound.test(t.slot)) {
        result.push_back(st.slots[t.slot]);
      } else {
        result.emplace_back();
      }
    }
    st.dedup->EmitIfNew(std::move(result));
    return;
  }

  // Pick the unsolved atom with the most bound positions.
  size_t best = st.prog.atoms.size();
  int best_bound = -1;
  for (size_t i = 0; i < st.prog.atoms.size(); ++i) {
    if (st.done[i]) continue;
    int b = 0;
    for (const auto& t : st.prog.atoms[i].terms) {
      if (t.constant != nullptr || st.bound.test(t.slot)) ++b;
    }
    if (b > best_bound) {
      best_bound = b;
      best = i;
    }
  }
  const SlotAtom& atom = st.prog.atoms[best];
  const TableVersion* table = atom.table;
  st.done[best] = true;

  // Probe column: the first bound position that is indexed; when none
  // is but some position is bound, build the missing index on demand
  // (memoized on the table) instead of scanning.
  int probe_col = -1;
  int first_bound_col = -1;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const SlotTerm& t = atom.terms[i];
    if (t.constant == nullptr && !st.bound.test(t.slot)) continue;
    if (first_bound_col < 0) first_bound_col = static_cast<int>(i);
    if (table->HasIndex(i)) {
      probe_col = static_cast<int>(i);
      break;
    }
  }
  if (probe_col < 0 && first_bound_col >= 0 &&
      st.options.on_demand_indexes &&
      table->size() >= st.options.on_demand_index_min_rows) {
    if (table->EnsureIndex(static_cast<size_t>(first_bound_col)).ok()) {
      probe_col = first_bound_col;
    }
  }

  auto consider = [&](const Row& row) {
    size_t trail_mark = st.trail.size();
    bool match = true;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const SlotTerm& t = atom.terms[i];
      if (t.constant != nullptr) {
        if (!(*t.constant == row[i])) {
          match = false;
          break;
        }
      } else if (st.bound.test(t.slot)) {
        if (!(st.slots[t.slot] == row[i])) {
          match = false;
          break;
        }
      } else {
        st.slots[t.slot] = row[i];
        st.bound.set(t.slot);
        st.trail.push_back(t.slot);
      }
    }
    if (match) SlotSearch(st, remaining - 1);
    // Roll back exactly the bindings this row introduced.
    while (st.trail.size() > trail_mark) {
      st.bound.clear(st.trail.back());
      st.trail.pop_back();
    }
  };
  if (probe_col >= 0) {
    const SlotTerm& t = atom.terms[probe_col];
    const Value& key =
        t.constant != nullptr ? *t.constant : st.slots[t.slot];
    for (size_t idx :
         table->LookupIndices(static_cast<size_t>(probe_col), key)) {
      consider(table->row(idx));
    }
  } else {
    for (size_t r = 0; r < table->size(); ++r) consider(table->row(r));
  }
  st.done[best] = false;
}

/// Evaluates `query`, appending head tuples that are new w.r.t.
/// `dedup` to its output vector — the single-dedup primitive both
/// EvaluateCQ and the serial EvaluateUnion build on. All three engines
/// now emit through the same RowDedup (ISSUE 8): the recursive engines
/// per row, the columnar engine batch-wise at its output boundary.
Status EvaluateInto(const storage::Catalog& catalog,
                    const ConjunctiveQuery& query, const EvalOptions& options,
                    RowDedup* dedup) {
  if (options.engine == EvalEngine::kColumnar) {
    return EvaluateColumnarInto(catalog, query, options, dedup);
  }
  REVERE_ASSIGN_OR_RETURN(auto atoms,
                          ResolveAtoms(catalog, query, options.snapshots));
  if (options.engine == EvalEngine::kSlots) {
    SlotProgram prog = CompileSlots(query, atoms);
    SlotState st(prog, options, dedup);
    SlotSearch(st, prog.atoms.size());
  } else {
    std::vector<bool> done(atoms.size(), false);
    MapSearch(atoms, &done, {}, query.head(), dedup);
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Row>> EvaluateCQ(const storage::Catalog& catalog,
                                    const ConjunctiveQuery& query,
                                    const EvalOptions& options) {
  // Process-wide instrumentation (ISSUE 4): resolved once, then two
  // relaxed atomic adds per call — compiled in, never gated.
  static obs::Counter* queries =
      obs::MetricsRegistry::Default().GetCounter("eval.queries");
  static obs::Counter* rows_out =
      obs::MetricsRegistry::Default().GetCounter("eval.rows");
  std::vector<Row> out;
  {
    // Every engine dedups through the allocation-lean RowDedup (hash
    // index over `out` itself) instead of a side set of Rows.
    RowDedup dedup(&out);
    REVERE_RETURN_IF_ERROR(EvaluateInto(catalog, query, options, &dedup));
  }
  queries->Increment();
  rows_out->Increment(out.size());
  return out;
}

Result<std::vector<Row>> EvaluateUnion(
    const storage::Catalog& catalog,
    const std::vector<ConjunctiveQuery>& queries,
    const EvalOptions& options) {
  std::vector<Row> out;
  // Syntactically identical members can only reproduce rows the first
  // copy already emitted — evaluate each distinct member once.
  std::unordered_set<std::string> distinct;
  std::vector<const ConjunctiveQuery*> members;
  members.reserve(queries.size());
  for (const auto& q : queries) {
    if (distinct.insert(q.ToString()).second) members.push_back(&q);
  }

  // One MVCC pin scope for the whole union (unless the caller already
  // threaded one through): every member — serial or on the pool — reads
  // each table at the version pinned by whichever member touched it
  // first, so the union is one consistent point-in-time answer.
  SnapshotSet local_pins;
  EvalOptions union_options = options;
  if (union_options.snapshots == nullptr) {
    union_options.snapshots = &local_pins;
  }

  if (options.pool != nullptr && members.size() > 1) {
    // Parallel path: every member evaluates independently (each with a
    // private dedup inside EvaluateCQ), then results merge through a
    // union-level RowDedup in member order — byte-identical to the
    // serial path for any worker count.
    EvalOptions member_options = union_options;
    member_options.pool = nullptr;
    member_options.tracer = nullptr;  // spans open here, not per inner call
    std::vector<std::optional<Result<std::vector<Row>>>> results(
        members.size());
    std::vector<std::future<void>> futures;
    futures.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      futures.push_back(options.pool->Submit([&, i] {
        obs::Span span;
        if (options.tracer != nullptr) {  // skip detail alloc when off
          span = options.tracer->StartSpan("evaluate", options.parent_span,
                                           "member" + std::to_string(i));
        }
        results[i].emplace(EvaluateCQ(catalog, *members[i], member_options));
        if (results[i]->ok()) {
          span.AddAttr("rows",
                       static_cast<double>(results[i]->value().size()));
        }
      }));
    }
    for (auto& f : futures) f.wait();
    RowDedup merge(&out);
    for (auto& result : results) {
      if (!result->ok()) return result->status();
      std::vector<Row> rows = std::move(*result).value();
      out.reserve(out.size() + rows.size());
      for (auto& r : rows) merge.EmitIfNew(std::move(r));
    }
    return out;
  }

  // Serial path: one RowDedup over `out` shared across members, for
  // every engine — code-domain hashes (columnar) and string hashes
  // (map/slots) agree bit for bit, so members of any engine mix.
  RowDedup dedup(&out);
  for (size_t i = 0; i < members.size(); ++i) {
    obs::Span span;
    if (options.tracer != nullptr) {  // skip detail alloc when off
      span = options.tracer->StartSpan("evaluate", options.parent_span,
                                       "member" + std::to_string(i));
    }
    size_t before = out.size();
    REVERE_RETURN_IF_ERROR(
        EvaluateInto(catalog, *members[i], union_options, &dedup));
    span.AddAttr("rows", static_cast<double>(out.size() - before));
  }
  return out;
}

}  // namespace revere::query
