#include "src/query/evaluate.h"

#include <map>
#include <unordered_set>

namespace revere::query {

namespace {

using storage::Row;
using storage::Table;
using storage::Value;

using ValueBinding = std::map<std::string, Value>;

// Number of argument positions of `atom` fixed under `binding`.
int BoundPositions(const Atom& atom, const ValueBinding& binding) {
  int n = 0;
  for (const auto& t : atom.args) {
    if (!t.is_var() || binding.count(t.var()) > 0) ++n;
  }
  return n;
}

// Tries to extend `binding` so that `row` matches `atom`; returns false
// (leaving binding untouched) on mismatch.
bool MatchRow(const Atom& atom, const Row& row, ValueBinding* binding) {
  ValueBinding local = *binding;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const QTerm& t = atom.args[i];
    if (t.is_var()) {
      auto it = local.find(t.var());
      if (it == local.end()) {
        local[t.var()] = row[i];
      } else if (!(it->second == row[i])) {
        return false;
      }
    } else if (!(t.value() == row[i])) {
      return false;
    }
  }
  *binding = std::move(local);
  return true;
}

void Search(const storage::Catalog& catalog,
            const std::vector<std::pair<const Table*, const Atom*>>& atoms,
            std::vector<bool>* done, const ValueBinding& binding,
            const std::vector<QTerm>& head,
            std::unordered_set<Row, storage::RowHash>* seen,
            std::vector<Row>* out) {
  // All atoms satisfied: emit the head tuple.
  size_t remaining = 0;
  for (bool d : *done) {
    if (!d) ++remaining;
  }
  if (remaining == 0) {
    Row result;
    result.reserve(head.size());
    for (const auto& t : head) {
      if (t.is_var()) {
        auto it = binding.find(t.var());
        result.push_back(it == binding.end() ? Value() : it->second);
      } else {
        result.push_back(t.value());
      }
    }
    if (seen->insert(result).second) out->push_back(std::move(result));
    return;
  }

  // Pick the unsolved atom with the most bound positions.
  size_t best = atoms.size();
  int best_bound = -1;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if ((*done)[i]) continue;
    int b = BoundPositions(*atoms[i].second, binding);
    if (b > best_bound) {
      best_bound = b;
      best = i;
    }
  }
  const Table* table = atoms[best].first;
  const Atom& atom = *atoms[best].second;
  (*done)[best] = true;

  // If some position is bound and indexed, probe; else scan.
  std::optional<size_t> probe_col;
  Value probe_key;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const QTerm& t = atom.args[i];
    Value key;
    bool bound = false;
    if (!t.is_var()) {
      key = t.value();
      bound = true;
    } else {
      auto it = binding.find(t.var());
      if (it != binding.end()) {
        key = it->second;
        bound = true;
      }
    }
    if (bound && table->HasIndex(i)) {
      probe_col = i;
      probe_key = key;
      break;
    }
  }

  auto consider = [&](const Row& row) {
    ValueBinding next = binding;
    if (MatchRow(atom, row, &next)) {
      Search(catalog, atoms, done, next, head, seen, out);
    }
  };
  if (probe_col) {
    for (size_t idx : table->LookupIndices(*probe_col, probe_key)) {
      consider(table->rows()[idx]);
    }
  } else {
    for (const Row& row : table->rows()) consider(row);
  }
  (*done)[best] = false;
}

}  // namespace

Result<std::vector<Row>> EvaluateCQ(const storage::Catalog& catalog,
                                    const ConjunctiveQuery& query) {
  std::vector<std::pair<const Table*, const Atom*>> atoms;
  for (const auto& atom : query.body()) {
    REVERE_ASSIGN_OR_RETURN(const Table* table,
                            catalog.GetTable(atom.relation));
    if (table->schema().arity() != atom.args.size()) {
      return Status::InvalidArgument(
          "atom " + atom.ToString() + " has arity " +
          std::to_string(atom.args.size()) + " but relation has " +
          std::to_string(table->schema().arity()));
    }
    atoms.emplace_back(table, &atom);
  }
  std::vector<Row> out;
  std::unordered_set<Row, storage::RowHash> seen;
  std::vector<bool> done(atoms.size(), false);
  Search(catalog, atoms, &done, {}, query.head(), &seen, &out);
  return out;
}

Result<std::vector<Row>> EvaluateUnion(
    const storage::Catalog& catalog,
    const std::vector<ConjunctiveQuery>& queries) {
  std::vector<Row> out;
  std::unordered_set<Row, storage::RowHash> seen;
  for (const auto& q : queries) {
    REVERE_ASSIGN_OR_RETURN(std::vector<Row> rows, EvaluateCQ(catalog, q));
    for (auto& r : rows) {
      if (seen.insert(r).second) out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace revere::query
