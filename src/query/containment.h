#ifndef REVERE_QUERY_CONTAINMENT_H_
#define REVERE_QUERY_CONTAINMENT_H_

#include <optional>

#include "src/query/cq.h"

namespace revere::query {

/// Searches for a containment mapping (homomorphism) from `from` to
/// `to`: a substitution on `from`'s variables under which from's head
/// equals to's head and every from-body atom appears in to's body.
/// By the Chandra–Merlin theorem its existence is equivalent to
/// containment to ⊆ from. Returns the substitution when found.
std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to);

/// True iff `inner` ⊆ `outer` (every answer of inner is an answer of
/// outer, on all databases). Set semantics.
bool Contains(const ConjunctiveQuery& outer, const ConjunctiveQuery& inner);

/// True iff the two queries are equivalent (mutual containment).
bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// Removes redundant body atoms: the smallest equivalent sub-query (the
/// core, computed greedily atom-by-atom).
ConjunctiveQuery Minimize(const ConjunctiveQuery& query);

}  // namespace revere::query

#endif  // REVERE_QUERY_CONTAINMENT_H_
