#ifndef REVERE_QUERY_CQ_H_
#define REVERE_QUERY_CQ_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/storage/value.h"

namespace revere::query {

/// A term in a conjunctive query: a variable (named) or a constant.
class QTerm {
 public:
  static QTerm Var(std::string name);
  static QTerm Const(storage::Value value);
  /// Convenience for string constants.
  static QTerm Const(std::string value) {
    return Const(storage::Value(std::move(value)));
  }

  bool is_var() const { return is_var_; }
  const std::string& var() const { return var_; }
  const storage::Value& value() const { return value_; }

  bool operator==(const QTerm& other) const;
  bool operator!=(const QTerm& other) const { return !(*this == other); }
  bool operator<(const QTerm& other) const;

  /// Variables render as their name; constants as quoted literals.
  std::string ToString() const;

 private:
  bool is_var_ = false;
  std::string var_;
  storage::Value value_;
};

/// One subgoal: relation(t1, ..., tk).
struct Atom {
  std::string relation;
  std::vector<QTerm> args;

  bool operator==(const Atom& other) const {
    return relation == other.relation && args == other.args;
  }
  std::string ToString() const;
};

/// A variable-to-term substitution.
using Substitution = std::map<std::string, QTerm>;

/// Applies `sub` to a term / atom / atom list (unmapped variables pass
/// through unchanged).
QTerm Apply(const Substitution& sub, const QTerm& term);
Atom Apply(const Substitution& sub, const Atom& atom);
std::vector<Atom> Apply(const Substitution& sub,
                        const std::vector<Atom>& atoms);

/// A conjunctive query / view definition:
///   name(head) :- body_1, ..., body_n
/// Set semantics throughout (the PDMS reformulation theory assumes it).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::string name, std::vector<QTerm> head,
                   std::vector<Atom> body)
      : name_(std::move(name)),
        head_(std::move(head)),
        body_(std::move(body)) {}

  /// Parses datalog-ish text:
  ///   q(X, Y) :- course(X, T, D), teaches(X, Y), dept(D, "CSE")
  /// Identifiers starting with an upper-case letter are variables;
  /// quoted strings and numerals are constants.
  static Result<ConjunctiveQuery> Parse(std::string_view text);

  const std::string& name() const { return name_; }
  const std::vector<QTerm>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }

  /// The atom form of the head: name(head args).
  Atom HeadAtom() const { return Atom{name_, head_}; }

  /// Distinct variables appearing in the head / anywhere.
  std::set<std::string> HeadVars() const;
  std::set<std::string> AllVars() const;
  /// Variables in the body but not the head.
  std::set<std::string> ExistentialVars() const;

  /// Safety: every head variable occurs in some body atom.
  bool IsSafe() const;

  /// A copy with every variable renamed via `prefix` + old name; used to
  /// freshen view definitions apart before unification.
  ConjunctiveQuery RenameVars(const std::string& prefix) const;

  /// Applies a substitution to head and body.
  ConjunctiveQuery Substitute(const Substitution& sub) const;

  std::string ToString() const;

  bool operator==(const ConjunctiveQuery& other) const {
    return name_ == other.name_ && head_ == other.head_ &&
           body_ == other.body_;
  }

 private:
  std::string name_;
  std::vector<QTerm> head_;
  std::vector<Atom> body_;
};

/// A query in α-normal form: every variable renamed to "V0", "V1", ...
/// in order of first occurrence (head left to right, then body atoms in
/// order). Two queries are α-equivalent — identical up to a consistent
/// variable renaming, with atom order preserved — exactly when their
/// canonical `text` matches, so the canonical form is a sound cache key
/// for any computation that depends only on query syntax (reformulation
/// plans, containment verdicts). `fingerprint` is a 64-bit FNV-1a of
/// `text`: stable across runs, cheap to shard and compare, but callers
/// that must never confuse two queries should confirm with `text`.
struct CanonicalizedQuery {
  ConjunctiveQuery query;
  std::string text;
  uint64_t fingerprint = 0;
};

/// Computes the α-normal form of `query` (one substitution pass; the
/// input is not modified).
CanonicalizedQuery Canonicalize(const ConjunctiveQuery& query);

/// Fingerprint of the canonical form — Canonicalize(query).fingerprint.
uint64_t CanonicalFingerprint(const ConjunctiveQuery& query);

/// True when `a` and `b` are identical up to a consistent renaming of
/// variables (atom order matters; set-semantic equivalence is
/// `Equivalent` in containment.h).
bool AlphaEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// Unifies `a` into `b` one-directionally: finds a substitution on a's
/// variables making Apply(sub, a) == b position-wise. Constants in `a`
/// must match `b` exactly. Returns false when impossible. `sub` may hold
/// prior bindings that are respected and extended.
bool MatchAtom(const Atom& a, const Atom& b, Substitution* sub);

/// Two-way unification: extends `sub` so both atoms become equal; either
/// side's variables may be bound. Binding chains may arise; use
/// ResolveSubstitution before Apply-ing the result.
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* sub);

/// Chases binding chains (X -> Y, Y -> c becomes X -> c, Y -> c) so the
/// substitution can be applied in one pass.
Substitution ResolveSubstitution(const Substitution& sub);

}  // namespace revere::query

#endif  // REVERE_QUERY_CQ_H_
