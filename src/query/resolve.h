#ifndef REVERE_QUERY_RESOLVE_H_
#define REVERE_QUERY_RESOLVE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"
#include "src/storage/table_version.h"

namespace revere::query {

/// One body atom resolved to a pinned MVCC snapshot of its relation.
/// Engines read rows, probe indexes, and build columnar snapshots
/// exclusively through `snap`, so a query's answer is computed against
/// one immutable version per table no matter what writers do meanwhile.
struct ResolvedAtom {
  std::shared_ptr<const storage::TableVersion> snap;
  const Atom* atom = nullptr;
};

/// Resolves every body atom to a pinned table version, validating
/// existence + arity. Shared by all evaluation engines so they agree
/// byte-for-byte on error outcomes too (the differential fuzz oracles
/// compare failure messages across engines, not just result rows).
///
/// `pins` scopes snapshot consistency: atoms over the same relation
/// always share one version within a call, and when the caller passes a
/// SnapshotSet (EvaluateUnion and the PDMS answer path thread one
/// through EvalOptions) the same holds across every member query and
/// rewriting of the whole request. Pass null for single-query scope.
inline Result<std::vector<ResolvedAtom>> ResolveAtoms(
    const storage::Catalog& catalog, const ConjunctiveQuery& query,
    storage::SnapshotSet* pins) {
  storage::SnapshotSet local;
  if (pins == nullptr) pins = &local;
  std::vector<ResolvedAtom> atoms;
  atoms.reserve(query.body().size());
  for (const auto& atom : query.body()) {
    REVERE_ASSIGN_OR_RETURN(const storage::Table* table,
                            catalog.GetTable(atom.relation));
    if (table->schema().arity() != atom.args.size()) {
      return Status::InvalidArgument(
          "atom " + atom.ToString() + " has arity " +
          std::to_string(atom.args.size()) + " but relation has " +
          std::to_string(table->schema().arity()));
    }
    atoms.push_back(ResolvedAtom{pins->Pin(*table), &atom});
  }
  return atoms;
}

}  // namespace revere::query

#endif  // REVERE_QUERY_RESOLVE_H_
