#ifndef REVERE_QUERY_RESOLVE_H_
#define REVERE_QUERY_RESOLVE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"

namespace revere::query {

/// Resolves every body atom to its table, validating existence + arity.
/// Shared by all evaluation engines so they agree byte-for-byte on
/// error outcomes too (the differential fuzz oracles compare failure
/// messages across engines, not just result rows).
inline Result<std::vector<std::pair<const storage::Table*, const Atom*>>>
ResolveAtoms(const storage::Catalog& catalog, const ConjunctiveQuery& query) {
  std::vector<std::pair<const storage::Table*, const Atom*>> atoms;
  atoms.reserve(query.body().size());
  for (const auto& atom : query.body()) {
    REVERE_ASSIGN_OR_RETURN(const storage::Table* table,
                            catalog.GetTable(atom.relation));
    if (table->schema().arity() != atom.args.size()) {
      return Status::InvalidArgument(
          "atom " + atom.ToString() + " has arity " +
          std::to_string(atom.args.size()) + " but relation has " +
          std::to_string(table->schema().arity()));
    }
    atoms.emplace_back(table, &atom);
  }
  return atoms;
}

}  // namespace revere::query

#endif  // REVERE_QUERY_RESOLVE_H_
