#ifndef REVERE_QUERY_VECTORIZED_H_
#define REVERE_QUERY_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/query/evaluate.h"
#include "src/storage/catalog.h"

namespace revere::query {

/// Order-preserving set of output rows: an open-addressing hash index
/// over the rows already appended to `*out`. Each row is stored exactly
/// once (in the output vector itself); the index keeps only cached
/// 64-bit hashes and row positions, so inserting n unique rows costs n
/// string hashes total — no per-row node allocation, no copy into a
/// side set, and no re-hashing of row contents when the table grows.
///
/// Semantics are identical to the unordered_set<Row> dedup the
/// recursive engines use: first occurrence wins, equality is the strict
/// (type-exact) Row operator==. All three engines emit through this —
/// the recursive engines per materialized row (EmitIfNew), the columnar
/// engine per batch at its output boundary (ClaimIfNew + deferred
/// decode), and the parallel union merge for every engine. Because the
/// columnar boundary computes the very same HashRow value from column
/// codes (see common/hash.h HashStep), string-hashed and code-hashed
/// entries mix freely in one table — which is what lets a union share a
/// single dedup across engines.
class RowDedup {
 public:
  /// Indexes any rows already in `*out` (callers normally start empty)
  /// and appends through it from then on. `out` must outlive the dedup
  /// and must not be modified behind its back.
  explicit RowDedup(std::vector<storage::Row>* out);

  /// Appends `r` to the output if no equal row is present yet; returns
  /// whether it was appended. Must not be called while claims from
  /// ClaimIfNew are pending (i.e. before their rows are appended).
  bool EmitIfNew(storage::Row&& r);

  /// Batched emission (ISSUE 8): claims an output position for a row
  /// that is NOT materialized yet, identified only by its precomputed
  /// HashRow value `h` and a caller equality predicate. Returns the
  /// claimed index (== the position the caller must append the row at),
  /// or -1 when an equal row is already present. `eq(i)` must answer
  /// "is existing entry i equal to the candidate?" — entry i is
  /// (*out())[i] when i < out()->size(), otherwise a pending claim from
  /// the caller's current batch (the caller compares code signatures).
  /// After a batch of claims, the caller appends exactly one row per
  /// successful claim to *out(), in claim order, before any other call.
  template <typename Eq>
  int64_t ClaimIfNew(uint64_t h, Eq&& eq) {
    if ((hashes_.size() + 1) * 2 > table_.size()) Grow();
    size_t slot = h & mask_;
    while (true) {
      uint32_t e = table_[slot];
      if (e == 0) {
        size_t index = hashes_.size();
        hashes_.push_back(h);
        table_[slot] = static_cast<uint32_t>(index + 1);
        return static_cast<int64_t>(index);
      }
      if (hashes_[e - 1] == h && eq(static_cast<size_t>(e - 1))) return -1;
      slot = (slot + 1) & mask_;
    }
  }

  /// The output vector this dedup indexes (claim flushing appends here).
  std::vector<storage::Row>* out() { return out_; }

  size_t size() const { return hashes_.size(); }

 private:
  void Grow();
  /// Probes for `h`/row-at-`index` assuming capacity is available;
  /// records the slot. Returns false if an equal row already exists.
  bool InsertIndexed(uint64_t h, size_t index);

  std::vector<storage::Row>* out_;
  std::vector<uint64_t> hashes_;  // hashes_[i] == HashRow((*out_)[i])
  std::vector<uint32_t> table_;   // open addressing; row index + 1, 0 = empty
  size_t mask_ = 0;
};

/// Columnar, vectorized CQ evaluation (ISSUE 7; EvalEngine::kColumnar).
///
/// Instead of walking Row vectors with backtracking Value comparisons,
/// this engine evaluates against each table's dictionary-encoded
/// ColumnTable snapshot (Table::EnsureColumnar): every filter and join
/// compares dense uint32 codes, probes are grouped-index range scans
/// with zero hashing, and cross-table code spaces are bridged by
/// translation arrays built once per plan step. Tuples flow through the
/// join pipeline in chunks of ~1024 as parallel row-id arrays allocated
/// from a bump Arena (steady-state batches perform zero heap
/// allocations); Rows are materialized — dictionary decode — only at
/// the output boundary, where they emit through `dedup`.
///
/// ISSUE 8: the hot loops run on the common/simd.h kernel layer —
/// vectorized constant filters and repeated-variable equality over code
/// batches, vectorized gathers through the grouped index, and a batched
/// output boundary that hashes rows directly from column codes
/// (HashStep over ColumnTable::dict_hashes, reproducing HashRow bit for
/// bit) and dictionary-decodes only surviving first-occurrence rows,
/// column-major. `options.use_simd` selects the runtime kernel table;
/// answers are byte-identical either way.
///
/// Output contract: byte-identical to the slot engine — same rows, same
/// order, for every query. The slot engine's greedy most-bound-first
/// atom order depends only on which atoms are solved (never on row
/// values), so this engine replays that order statically; all candidate
/// enumeration paths are ascending-row-order, matching the slot
/// engine's LookupIndices/scan order; and RowDedup preserves the
/// first-occurrence-wins semantics of the other engines' seen sets.
Status EvaluateColumnarInto(const storage::Catalog& catalog,
                            const ConjunctiveQuery& query,
                            const EvalOptions& options, RowDedup* dedup);

}  // namespace revere::query

#endif  // REVERE_QUERY_VECTORIZED_H_
