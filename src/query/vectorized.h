#ifndef REVERE_QUERY_VECTORIZED_H_
#define REVERE_QUERY_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/query/evaluate.h"
#include "src/storage/catalog.h"

namespace revere::query {

/// Order-preserving set of output rows: an open-addressing hash index
/// over the rows already appended to `*out`. Each row is stored exactly
/// once (in the output vector itself); the index keeps only cached
/// 64-bit hashes and row positions, so inserting n unique rows costs n
/// string hashes total — no per-row node allocation, no copy into a
/// side set, and no re-hashing of row contents when the table grows.
///
/// Semantics are identical to the unordered_set<Row> dedup the
/// recursive engines use: first occurrence wins, equality is the strict
/// (type-exact) Row operator==. The columnar engine emits through this
/// at its output boundary, and the parallel union merge uses it for
/// every engine.
class RowDedup {
 public:
  /// Indexes any rows already in `*out` (callers normally start empty)
  /// and appends through it from then on. `out` must outlive the dedup
  /// and must not be modified behind its back.
  explicit RowDedup(std::vector<storage::Row>* out);

  /// Appends `r` to the output if no equal row is present yet; returns
  /// whether it was appended.
  bool EmitIfNew(storage::Row&& r);

  size_t size() const { return hashes_.size(); }

 private:
  void Grow();
  /// Probes for `h`/row-at-`index` assuming capacity is available;
  /// records the slot. Returns false if an equal row already exists.
  bool InsertIndexed(uint64_t h, size_t index);

  std::vector<storage::Row>* out_;
  std::vector<uint64_t> hashes_;  // hashes_[i] == HashRow((*out_)[i])
  std::vector<uint32_t> table_;   // open addressing; row index + 1, 0 = empty
  size_t mask_ = 0;
};

/// Columnar, vectorized CQ evaluation (ISSUE 7; EvalEngine::kColumnar).
///
/// Instead of walking Row vectors with backtracking Value comparisons,
/// this engine evaluates against each table's dictionary-encoded
/// ColumnTable snapshot (Table::EnsureColumnar): every filter and join
/// compares dense uint32 codes, probes are grouped-index range scans
/// with zero hashing, and cross-table code spaces are bridged by
/// translation arrays built once per plan step. Tuples flow through the
/// join pipeline in chunks of ~1024 as parallel row-id arrays allocated
/// from a bump Arena (steady-state batches perform zero heap
/// allocations); Rows are materialized — dictionary decode — only at
/// the output boundary, where they emit through `dedup`.
///
/// Output contract: byte-identical to the slot engine — same rows, same
/// order, for every query. The slot engine's greedy most-bound-first
/// atom order depends only on which atoms are solved (never on row
/// values), so this engine replays that order statically; all candidate
/// enumeration paths are ascending-row-order, matching the slot
/// engine's LookupIndices/scan order; and RowDedup preserves the
/// first-occurrence-wins semantics of the other engines' seen sets.
Status EvaluateColumnarInto(const storage::Catalog& catalog,
                            const ConjunctiveQuery& query,
                            const EvalOptions& options, RowDedup* dedup);

}  // namespace revere::query

#endif  // REVERE_QUERY_VECTORIZED_H_
