#ifndef REVERE_QUERY_REWRITE_H_
#define REVERE_QUERY_REWRITE_H_

#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/query/unfold.h"

namespace revere::query {

/// Controls for answering-queries-using-views.
struct RewriteOptions {
  /// Cap on candidate combinations examined (cross product of buckets).
  size_t max_candidates = 20000;
  /// Drop rewritings contained in an already-kept rewriting.
  bool prune_contained = true;
};

/// Statistics from one rewriting run (used by the C9 benchmark).
struct RewriteStats {
  size_t candidates_examined = 0;
  size_t candidates_kept = 0;
  size_t bucket_entries = 0;
  /// Chandra–Merlin expansion-containment checks actually performed vs.
  /// answered from the per-call memo. The bucket method re-proves the
  /// same containment for many candidate combinations (and for every
  /// specialization TrySpecialize enumerates), so the memo — keyed on
  /// the canonical (candidate-expansion, query) pair — turns the
  /// quadratic re-checking into one check per distinct expansion.
  size_t containment_checks = 0;
  size_t containment_memo_hits = 0;
};

/// Answering queries using views (local-as-view): given `query` over a
/// "mediated" vocabulary and `views` (each a CQ over that vocabulary,
/// named by its view relation), produces the union of conjunctive
/// rewritings over the *view* relations whose expansions are contained
/// in `query` — the maximally-contained rewriting restricted to
/// conjunctive combinations, computed with the bucket method plus a
/// Chandra–Merlin containment check (the classical approach surveyed in
/// Halevy's "Answering queries using views", which the paper builds on).
Result<std::vector<ConjunctiveQuery>> RewriteUsingViews(
    const ConjunctiveQuery& query, const std::vector<ConjunctiveQuery>& views,
    const RewriteOptions& options = {}, RewriteStats* stats = nullptr);

/// Expands a rewriting over view heads back into the base vocabulary by
/// unfolding each view atom with its definition.
Result<ConjunctiveQuery> ExpandRewriting(
    const ConjunctiveQuery& rewriting,
    const std::vector<ConjunctiveQuery>& views);

}  // namespace revere::query

#endif  // REVERE_QUERY_REWRITE_H_
