#include "src/query/glav.h"

#include "src/common/strings.h"

namespace revere::query {

Result<GlavMapping> GlavMapping::Parse(std::string_view text,
                                       std::string name) {
  size_t arrow = text.find("=>");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("GLAV mapping needs 'source => target': " +
                              std::string(text));
  }
  REVERE_ASSIGN_OR_RETURN(ConjunctiveQuery source,
                          ConjunctiveQuery::Parse(
                              Trim(text.substr(0, arrow))));
  REVERE_ASSIGN_OR_RETURN(ConjunctiveQuery target,
                          ConjunctiveQuery::Parse(
                              Trim(text.substr(arrow + 2))));
  GlavMapping mapping{std::move(name), std::move(source), std::move(target)};
  REVERE_RETURN_IF_ERROR(mapping.Validate());
  return mapping;
}

}  // namespace revere::query
