#ifndef REVERE_QUERY_EVALUATE_H_
#define REVERE_QUERY_EVALUATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"

namespace revere {
class ThreadPool;
}  // namespace revere

namespace revere::obs {
class Tracer;
}  // namespace revere::obs

namespace revere::query {

/// Which CQ evaluation engine to run. All three produce byte-identical
/// results (same rows, same order) — the differential fuzz oracles and
/// tests/parallel_test.cc enforce this — so the choice is purely a
/// performance/reference knob.
enum class EvalEngine {
  /// The original std::map<std::string, Value> binding engine, kept
  /// verbatim as the reference implementation (ignores the index
  /// options below).
  kMap,
  /// Slot-compiled bindings: per CQ, variables are mapped to dense
  /// integer slots once, and the binding is a std::vector<Value> plus a
  /// bound-bitmask mutated and rolled back in place during the search —
  /// no per-row map copies.
  kSlots,
  /// Columnar vectorized engine (ISSUE 7): evaluates against each
  /// table's dictionary-encoded ColumnTable snapshot, joining and
  /// filtering on integer codes in ~1024-tuple batches over a bump
  /// arena, materializing Rows only at the output boundary. Replays the
  /// slot engine's greedy join order (which is query-static), so output
  /// is byte-identical. Ignores the index options below — the snapshot
  /// carries a grouped index on every column.
  kColumnar,
};

/// Knobs for conjunctive-query evaluation. The defaults are the fast
/// path; the legacy knobs exist so benches can measure each optimization
/// in isolation and tests can differentially check the engines against
/// each other.
struct EvalOptions {
  /// See EvalEngine. kSlots remains the default serving engine;
  /// kColumnar is the vectorized fast path for read-heavy workloads.
  EvalEngine engine = EvalEngine::kSlots;
  /// When the join order picks an atom with a bound position that has
  /// no index, build (and memoize on the Table) a hash index for that
  /// column instead of scanning. Indexes are never evicted.
  bool on_demand_indexes = true;
  /// Do not bother building an on-demand index for tables smaller than
  /// this — a scan of a tiny table beats the build cost.
  size_t on_demand_index_min_rows = 32;
  /// Columnar engine only: run the hot loops on the compiled vector
  /// kernel backend (common/simd.h). `false` forces the scalar kernel
  /// table at runtime — answers are byte-identical either way (the
  /// fuzzer's columnar_simd_vs_scalar oracle holds this invariant);
  /// the knob exists for that differential and for benchmarks.
  bool use_simd = true;
  /// When set, EvaluateUnion evaluates member queries in parallel on
  /// this pool. Results are merged in query order through one dedup
  /// set, so output is byte-identical for any worker count (and to the
  /// serial path). EvaluateCQ itself never uses the pool.
  ThreadPool* pool = nullptr;
  /// MVCC pin scope (see storage::SnapshotSet). When set, every table
  /// touched by the evaluation is read at the version this set pins
  /// (pinning the head on first touch) — the PDMS answer path shares
  /// one set across all rewritings of a query so the whole answer is
  /// computed against one consistent version per table. When null, each
  /// EvaluateCQ/EvaluateUnion call pins its own scope internally.
  storage::SnapshotSet* snapshots = nullptr;

  // ---- Observability (ISSUE 4) ----

  /// When set, EvaluateUnion opens one `evaluate` span per distinct
  /// member under `parent_span`. PdmsNetwork::Answer* instead opens its
  /// per-rewriting spans itself (it owns the rewriting indices and the
  /// contact span parenting) and leaves this null on the inner calls.
  /// Evaluation results never depend on these fields.
  obs::Tracer* tracer = nullptr;
  /// Span id the evaluate spans attach under (0 = top level).
  uint64_t parent_span = 0;
};

/// Evaluates a conjunctive query against stored relations. Each body
/// atom's relation must exist in `catalog` with matching arity. Returns
/// the set (duplicates eliminated) of head tuples. Join strategy:
/// backtracking binding with greedy most-bound-first atom ordering,
/// probing table hash indexes where available and building missing
/// ones on demand (see EvalOptions).
Result<std::vector<storage::Row>> EvaluateCQ(const storage::Catalog& catalog,
                                             const ConjunctiveQuery& query,
                                             const EvalOptions& options = {});

/// Evaluates a union of conjunctive queries (set union of results). All
/// members must share head arity. Syntactically identical members are
/// evaluated once; each row is deduplicated exactly once against the
/// union-level seen set. With options.pool set, members evaluate in
/// parallel and merge deterministically in query order.
Result<std::vector<storage::Row>> EvaluateUnion(
    const storage::Catalog& catalog,
    const std::vector<ConjunctiveQuery>& queries,
    const EvalOptions& options = {});

}  // namespace revere::query

#endif  // REVERE_QUERY_EVALUATE_H_
