#ifndef REVERE_QUERY_EVALUATE_H_
#define REVERE_QUERY_EVALUATE_H_

#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"

namespace revere::query {

/// Evaluates a conjunctive query against stored relations. Each body
/// atom's relation must exist in `catalog` with matching arity. Returns
/// the set (duplicates eliminated) of head tuples. Join strategy:
/// backtracking binding with greedy most-bound-first atom ordering,
/// probing table hash indexes where available.
Result<std::vector<storage::Row>> EvaluateCQ(const storage::Catalog& catalog,
                                             const ConjunctiveQuery& query);

/// Evaluates a union of conjunctive queries (set union of results). All
/// members must share head arity.
Result<std::vector<storage::Row>> EvaluateUnion(
    const storage::Catalog& catalog,
    const std::vector<ConjunctiveQuery>& queries);

}  // namespace revere::query

#endif  // REVERE_QUERY_EVALUATE_H_
