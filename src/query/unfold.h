#ifndef REVERE_QUERY_UNFOLD_H_
#define REVERE_QUERY_UNFOLD_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"

namespace revere::query {

/// A set of global-as-view definitions: relation name -> defining query
/// whose head is that relation. Used for GAV-style query unfolding
/// (§3.1.1: "our query answering algorithm ... performs query unfolding
/// and query reformulation using views").
class ViewRegistry {
 public:
  ViewRegistry() = default;

  /// Registers `view` under its head name. A name may have several
  /// definitions (union views); unfolding then produces one result per
  /// combination.
  void Add(ConjunctiveQuery view);

  bool Defines(const std::string& relation) const;
  const std::vector<ConjunctiveQuery>* Definitions(
      const std::string& relation) const;
  size_t size() const { return views_.size(); }

 private:
  std::map<std::string, std::vector<ConjunctiveQuery>> views_;
};

/// Unfolds `query` over `views` until no defined relation remains in any
/// body (or `max_depth` substitution rounds pass — cycles are cut there
/// and reported as FailedPrecondition). Because a relation may have
/// multiple definitions, the result is a union of conjunctive queries.
Result<std::vector<ConjunctiveQuery>> UnfoldQuery(
    const ConjunctiveQuery& query, const ViewRegistry& views,
    int max_depth = 16);

/// Single-definition convenience: unfolds assuming every defined
/// relation has exactly one definition; InvalidArgument otherwise.
Result<ConjunctiveQuery> UnfoldQueryUnique(const ConjunctiveQuery& query,
                                           const ViewRegistry& views,
                                           int max_depth = 16);

}  // namespace revere::query

#endif  // REVERE_QUERY_UNFOLD_H_
