#include "src/corpus/corpus.h"

namespace revere::corpus {

const RelationDecl* SchemaEntry::FindRelation(const std::string& name) const {
  for (const auto& r : relations) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::vector<std::string> SchemaEntry::Elements() const {
  std::vector<std::string> out;
  for (const auto& r : relations) {
    out.push_back(r.name);
    for (const auto& a : r.attributes) out.push_back(r.name + "." + a);
  }
  return out;
}

size_t SchemaEntry::ElementCount() const {
  size_t n = 0;
  for (const auto& r : relations) n += 1 + r.attributes.size();
  return n;
}

Status Corpus::AddSchema(SchemaEntry schema) {
  if (schema_index_.count(schema.id) > 0) {
    return Status::AlreadyExists("schema '" + schema.id +
                                 "' already in corpus");
  }
  schema_index_[schema.id] = schemas_.size();
  schemas_.push_back(std::move(schema));
  return Status::Ok();
}

Status Corpus::AddDataExample(DataExample example) {
  if (schema_index_.count(example.schema_id) == 0) {
    return Status::NotFound("data example for unknown schema '" +
                            example.schema_id + "'");
  }
  const SchemaEntry& schema = schemas_[schema_index_.at(example.schema_id)];
  const RelationDecl* rel = schema.FindRelation(example.relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation '" + example.relation + "' in '" +
                            example.schema_id + "'");
  }
  for (const auto& row : example.rows) {
    if (row.size() != rel->attributes.size()) {
      return Status::InvalidArgument(
          "row arity mismatch for " + example.schema_id + "." +
          example.relation);
    }
  }
  data_.push_back(std::move(example));
  return Status::Ok();
}

Status Corpus::AddKnownMapping(KnownMapping mapping) {
  if (schema_index_.count(mapping.schema_a) == 0 ||
      schema_index_.count(mapping.schema_b) == 0) {
    return Status::NotFound("known mapping references unknown schema");
  }
  mappings_.push_back(std::move(mapping));
  return Status::Ok();
}

const SchemaEntry* Corpus::FindSchema(const std::string& id) const {
  auto it = schema_index_.find(id);
  if (it == schema_index_.end()) return nullptr;
  return &schemas_[it->second];
}

const DataExample* Corpus::FindData(const std::string& schema_id,
                                    const std::string& relation) const {
  for (const auto& d : data_) {
    if (d.schema_id == schema_id && d.relation == relation) return &d;
  }
  return nullptr;
}

size_t Corpus::MappingDegree(const std::string& schema_id) const {
  size_t n = 0;
  for (const auto& m : mappings_) {
    if (m.schema_a == schema_id || m.schema_b == schema_id) ++n;
  }
  return n;
}

}  // namespace revere::corpus
