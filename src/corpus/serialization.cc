#include "src/corpus/serialization.h"

#include <cstdio>
#include <optional>
#include <vector>

#include "src/common/strings.h"

namespace revere::corpus {

namespace {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      switch (s[i + 1]) {
        case 't':
          out.push_back('\t');
          ++i;
          continue;
        case 'n':
          out.push_back('\n');
          ++i;
          continue;
        case '\\':
          out.push_back('\\');
          ++i;
          continue;
        default:
          break;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

std::vector<std::string> Fields(std::string_view line) {
  std::vector<std::string> raw = Split(line, '\t');
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const auto& f : raw) out.push_back(Unescape(f));
  return out;
}

}  // namespace

std::string SerializeCorpus(const Corpus& corpus) {
  std::string out = "# REVERE corpus v1\n";
  for (const auto& schema : corpus.schemas()) {
    out += "schema\t" + Escape(schema.id) + "\t" + Escape(schema.domain) +
           "\n";
    for (const auto& rel : schema.relations) {
      out += "relation\t" + Escape(rel.name);
      for (const auto& attr : rel.attributes) {
        out += "\t" + Escape(attr);
      }
      out += "\n";
    }
  }
  for (const auto& data : corpus.data_examples()) {
    out += "data\t" + Escape(data.schema_id) + "\t" +
           Escape(data.relation) + "\n";
    for (const auto& row : data.rows) {
      out += "row";
      for (const auto& v : row) out += "\t" + Escape(v);
      out += "\n";
    }
  }
  for (const auto& mapping : corpus.known_mappings()) {
    out += "mapping\t" + Escape(mapping.schema_a) + "\t" +
           Escape(mapping.schema_b) + "\n";
    for (const auto& [a, b] : mapping.element_pairs) {
      out += "pair\t" + Escape(a) + "\t" + Escape(b) + "\n";
    }
  }
  return out;
}

Result<Corpus> ParseCorpus(std::string_view text) {
  Corpus corpus;
  // Builders in flight.
  std::optional<SchemaEntry> schema;
  std::optional<DataExample> data;
  std::optional<KnownMapping> mapping;

  auto flush_schema = [&]() -> Status {
    if (schema.has_value()) {
      REVERE_RETURN_IF_ERROR(corpus.AddSchema(std::move(*schema)));
      schema.reset();
    }
    return Status::Ok();
  };
  auto flush_data = [&]() -> Status {
    if (data.has_value()) {
      REVERE_RETURN_IF_ERROR(corpus.AddDataExample(std::move(*data)));
      data.reset();
    }
    return Status::Ok();
  };
  auto flush_mapping = [&]() -> Status {
    if (mapping.has_value()) {
      REVERE_RETURN_IF_ERROR(corpus.AddKnownMapping(std::move(*mapping)));
      mapping.reset();
    }
    return Status::Ok();
  };
  auto flush_all = [&]() -> Status {
    REVERE_RETURN_IF_ERROR(flush_schema());
    REVERE_RETURN_IF_ERROR(flush_data());
    return flush_mapping();
  };

  size_t line_number = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Fields(line);
    const std::string& kind = fields[0];
    auto fail = [&](const std::string& why) {
      return Status::ParseError("line " + std::to_string(line_number) +
                                ": " + why);
    };
    if (kind == "schema") {
      if (fields.size() != 3) return fail("schema needs id and domain");
      REVERE_RETURN_IF_ERROR(flush_all());
      schema = SchemaEntry{fields[1], fields[2], {}};
    } else if (kind == "relation") {
      if (!schema.has_value()) return fail("relation outside schema");
      if (fields.size() < 2) return fail("relation needs a name");
      RelationDecl rel;
      rel.name = fields[1];
      rel.attributes.assign(fields.begin() + 2, fields.end());
      schema->relations.push_back(std::move(rel));
    } else if (kind == "data") {
      if (fields.size() != 3) return fail("data needs schema and relation");
      REVERE_RETURN_IF_ERROR(flush_all());
      data = DataExample{fields[1], fields[2], {}};
    } else if (kind == "row") {
      if (!data.has_value()) return fail("row outside data block");
      data->rows.emplace_back(fields.begin() + 1, fields.end());
    } else if (kind == "mapping") {
      if (fields.size() != 3) return fail("mapping needs two schema ids");
      REVERE_RETURN_IF_ERROR(flush_all());
      mapping = KnownMapping{fields[1], fields[2], {}};
    } else if (kind == "pair") {
      if (!mapping.has_value()) return fail("pair outside mapping block");
      if (fields.size() != 3) return fail("pair needs two elements");
      mapping->element_pairs.emplace_back(fields[1], fields[2]);
    } else {
      return fail("unknown record '" + kind + "'");
    }
  }
  REVERE_RETURN_IF_ERROR(flush_all());
  return corpus;
}

Status SaveCorpusToFile(const Corpus& corpus, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  std::string text = SerializeCorpus(corpus);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::Ok();
}

Result<Corpus> LoadCorpusFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return ParseCorpus(text);
}

}  // namespace revere::corpus
