#ifndef REVERE_CORPUS_CORPUS_H_
#define REVERE_CORPUS_CORPUS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace revere::corpus {

/// One relation declaration inside a corpus schema.
struct RelationDecl {
  std::string name;
  std::vector<std::string> attributes;
};

/// One schema in the corpus of structures (§4.1: "forms of schema
/// information: relational, OO and XML schemas ... DTDs ...").
struct SchemaEntry {
  std::string id;      // unique within the corpus
  std::string domain;  // e.g. "university" — corpora may be domain-specific
  std::vector<RelationDecl> relations;

  const RelationDecl* FindRelation(const std::string& name) const;
  /// Qualified element names: "relation.attribute" plus bare relations.
  std::vector<std::string> Elements() const;
  size_t ElementCount() const;
};

/// Example data rows for one relation of one corpus schema (§4.1:
/// "actual data: example tables ... ground facts").
struct DataExample {
  std::string schema_id;
  std::string relation;
  std::vector<std::vector<std::string>> rows;
};

/// A known mapping between two corpus schemas (§4.1: "known mappings
/// between schemas in the corpus"). Element names are qualified
/// ("course.title").
struct KnownMapping {
  std::string schema_a;
  std::string schema_b;
  std::vector<std::pair<std::string, std::string>> element_pairs;
};

/// The corpus of structures: "just a collection of disparate structures"
/// (explicitly *not* a coherent universal database, §4.1) — schemas,
/// example data, and known mappings, over which statistics are computed.
class Corpus {
 public:
  Corpus() = default;

  Status AddSchema(SchemaEntry schema);
  Status AddDataExample(DataExample example);
  Status AddKnownMapping(KnownMapping mapping);

  const SchemaEntry* FindSchema(const std::string& id) const;
  const std::vector<SchemaEntry>& schemas() const { return schemas_; }
  const std::vector<DataExample>& data_examples() const { return data_; }
  const std::vector<KnownMapping>& known_mappings() const {
    return mappings_;
  }

  /// Data examples for one (schema, relation), or nullptr.
  const DataExample* FindData(const std::string& schema_id,
                              const std::string& relation) const;

  /// Number of known mappings that touch `schema_id` — a usage signal
  /// for DesignAdvisor's preference term.
  size_t MappingDegree(const std::string& schema_id) const;

  size_t size() const { return schemas_.size(); }

 private:
  std::vector<SchemaEntry> schemas_;
  std::vector<DataExample> data_;
  std::vector<KnownMapping> mappings_;
  std::map<std::string, size_t> schema_index_;
};

}  // namespace revere::corpus

#endif  // REVERE_CORPUS_CORPUS_H_
