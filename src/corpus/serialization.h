#ifndef REVERE_CORPUS_SERIALIZATION_H_
#define REVERE_CORPUS_SERIALIZATION_H_

#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/corpus/corpus.h"

namespace revere::corpus {

/// Serializes a corpus to a line-oriented text format, so organizations
/// can exchange and accumulate corpora of structures (§4.1 envisions
/// corpora "perhaps domain-specific" being collected and shared):
///
///   schema <tab> id <tab> domain
///   relation <tab> name <tab> attr1 <tab> attr2 ...
///   data <tab> schema_id <tab> relation
///   row <tab> v1 <tab> v2 ...
///   mapping <tab> schema_a <tab> schema_b
///   pair <tab> element_a <tab> element_b
///
/// Values are escaped (\t, \n, \\); lines starting with '#' are
/// comments.
std::string SerializeCorpus(const Corpus& corpus);

/// Parses text produced by SerializeCorpus (ParseError on malformed
/// input; referential problems surface as the Corpus::Add* errors).
Result<Corpus> ParseCorpus(std::string_view text);

/// Convenience file round trip.
Status SaveCorpusToFile(const Corpus& corpus, const std::string& path);
Result<Corpus> LoadCorpusFromFile(const std::string& path);

}  // namespace revere::corpus

#endif  // REVERE_CORPUS_SERIALIZATION_H_
