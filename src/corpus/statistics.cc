#include "src/corpus/statistics.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"
#include "src/text/stemmer.h"
#include "src/text/tfidf.h"
#include "src/text/tokenizer.h"

namespace revere::corpus {

namespace {

void TakeTopK(std::vector<ScoredTerm>* terms, size_t k) {
  std::sort(terms->begin(), terms->end(),
            [](const ScoredTerm& a, const ScoredTerm& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });
  if (terms->size() > k) terms->resize(k);
}

}  // namespace

double TermUsage::RelationShare() const {
  return total() == 0 ? 0.0
                      : static_cast<double>(as_relation) /
                            static_cast<double>(total());
}
double TermUsage::AttributeShare() const {
  return total() == 0 ? 0.0
                      : static_cast<double>(as_attribute) /
                            static_cast<double>(total());
}
double TermUsage::DataShare() const {
  return total() == 0 ? 0.0
                      : static_cast<double>(as_data) /
                            static_cast<double>(total());
}

std::string CorpusStatistics::Normalize(const std::string& term) const {
  std::vector<std::string> tokens = text::TokenizeIdentifier(term);
  for (auto& t : tokens) {
    if (options_.use_synonyms && options_.synonyms != nullptr) {
      t = options_.synonyms->Canonical(t);
    }
    if (options_.use_stemming) t = text::PorterStem(t);
  }
  return Join(tokens, "_");
}

CorpusStatistics::CorpusStatistics(const Corpus& corpus,
                                   StatisticsOptions options)
    : options_(options) {
  for (const auto& schema : corpus.schemas()) {
    std::set<std::string> terms_in_schema;
    for (const auto& rel : schema.relations) {
      ++relation_count_;
      std::string rel_norm = Normalize(rel.name);
      ++usage_[rel_norm].as_relation;
      terms_in_schema.insert(rel_norm);

      std::set<std::string> attr_set;
      for (const auto& attr : rel.attributes) {
        std::string a = Normalize(attr);
        ++usage_[a].as_attribute;
        terms_in_schema.insert(a);
        attr_set.insert(a);
        ++attr_to_relations_[a][rel_norm];
        ++attr_counts_[a];
      }
      // Pairwise co-occurrence within this relation.
      for (auto it = attr_set.begin(); it != attr_set.end(); ++it) {
        for (auto jt = std::next(it); jt != attr_set.end(); ++jt) {
          ++pair_counts_[{*it, *jt}];
        }
      }
      relation_attribute_sets_.push_back(std::move(attr_set));
    }
  }
  for (const auto& example : corpus.data_examples()) {
    for (const auto& row : example.rows) {
      for (const auto& value : row) {
        for (const auto& token : text::ContentTokens(value)) {
          ++usage_[Normalize(token)].as_data;
        }
      }
    }
  }
  // schemas_containing: second pass per schema term set.
  for (const auto& schema : corpus.schemas()) {
    std::set<std::string> seen;
    for (const auto& rel : schema.relations) {
      seen.insert(Normalize(rel.name));
      for (const auto& attr : rel.attributes) seen.insert(Normalize(attr));
    }
    for (const auto& t : seen) ++usage_[t].schemas_containing;
  }
}

TermUsage CorpusStatistics::Usage(const std::string& term) const {
  auto it = usage_.find(Normalize(term));
  return it == usage_.end() ? TermUsage{} : it->second;
}

std::vector<ScoredTerm> CorpusStatistics::CoOccurringAttributes(
    const std::string& attribute, size_t k) const {
  std::string a = Normalize(attribute);
  auto base_it = attr_counts_.find(a);
  if (base_it == attr_counts_.end()) return {};
  double base = static_cast<double>(base_it->second);
  std::vector<ScoredTerm> out;
  for (const auto& [pair, count] : pair_counts_) {
    if (pair.first == a) {
      out.push_back(
          {pair.second, static_cast<double>(count) / base});
    } else if (pair.second == a) {
      out.push_back({pair.first, static_cast<double>(count) / base});
    }
  }
  TakeTopK(&out, k);
  return out;
}

std::vector<ScoredTerm> CorpusStatistics::RelationsContaining(
    const std::string& attribute, size_t k) const {
  auto it = attr_to_relations_.find(Normalize(attribute));
  if (it == attr_to_relations_.end()) return {};
  std::vector<ScoredTerm> out;
  for (const auto& [rel, count] : it->second) {
    out.push_back({rel, static_cast<double>(count)});
  }
  TakeTopK(&out, k);
  return out;
}

std::vector<ScoredTerm> CorpusStatistics::SimilarAttributes(
    const std::string& attribute, size_t k) const {
  std::string a = Normalize(attribute);
  // Build the co-occurrence vector for each attribute lazily.
  auto vector_of = [this](const std::string& attr) {
    text::SparseVector v;
    for (const auto& [pair, count] : pair_counts_) {
      if (pair.first == attr) {
        v[pair.second] = static_cast<double>(count);
      } else if (pair.second == attr) {
        v[pair.first] = static_cast<double>(count);
      }
    }
    return v;
  };
  text::SparseVector target = vector_of(a);
  if (target.empty()) return {};
  std::vector<ScoredTerm> out;
  for (const auto& [attr, count] : attr_counts_) {
    if (attr == a) continue;
    double sim = text::CosineSimilarity(target, vector_of(attr));
    if (sim > 0.0) out.push_back({attr, sim});
  }
  TakeTopK(&out, k);
  return out;
}

std::vector<FrequentStructure> CorpusStatistics::FrequentAttributeSets(
    size_t min_support, size_t max_size) const {
  std::vector<FrequentStructure> out;
  // Apriori level-wise mining over relation attribute sets.
  // Level 1.
  std::vector<std::set<std::string>> frontier;
  for (const auto& [attr, count] : attr_counts_) {
    // Support = number of relations containing the attribute (count may
    // exceed it only if an attribute repeats in one relation, which the
    // set representation already collapses).
    size_t support = 0;
    for (const auto& rel_set : relation_attribute_sets_) {
      if (rel_set.count(attr) > 0) ++support;
    }
    if (support >= min_support) {
      out.push_back({{attr}, support});
      frontier.push_back({attr});
    }
  }
  for (size_t level = 2; level <= max_size && !frontier.empty(); ++level) {
    // Candidate generation: join frontier sets differing in one element.
    std::set<std::set<std::string>> candidates;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (size_t j = i + 1; j < frontier.size(); ++j) {
        std::set<std::string> merged = frontier[i];
        merged.insert(frontier[j].begin(), frontier[j].end());
        if (merged.size() == level) candidates.insert(std::move(merged));
      }
    }
    std::vector<std::set<std::string>> next;
    for (const auto& cand : candidates) {
      size_t support = 0;
      for (const auto& rel_set : relation_attribute_sets_) {
        bool subset = true;
        for (const auto& a : cand) {
          if (rel_set.count(a) == 0) {
            subset = false;
            break;
          }
        }
        if (subset) ++support;
      }
      if (support >= min_support) {
        out.push_back({cand, support});
        next.push_back(cand);
      }
    }
    frontier = std::move(next);
  }
  std::sort(out.begin(), out.end(),
            [](const FrequentStructure& a, const FrequentStructure& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.attributes < b.attributes;
            });
  return out;
}

double CorpusStatistics::EstimateSupport(
    const std::set<std::string>& attributes) const {
  if (attributes.empty() || relation_count_ == 0) return 0.0;
  // Exact count when cheap; it also serves as ground truth in tests.
  size_t exact = 0;
  for (const auto& rel_set : relation_attribute_sets_) {
    bool subset = true;
    for (const auto& a : attributes) {
      if (rel_set.count(Normalize(a)) == 0) {
        subset = false;
        break;
      }
    }
    if (subset) ++exact;
  }
  if (exact > 0) return static_cast<double>(exact);
  // Estimation for unseen sets: chain pairwise conditionals
  //   supp(a1..an) ~ supp(a1) * prod P(ai | a(i-1)).
  std::vector<std::string> attrs;
  for (const auto& a : attributes) attrs.push_back(Normalize(a));
  auto count_of = [this](const std::string& a) -> double {
    size_t n = 0;
    for (const auto& rel_set : relation_attribute_sets_) {
      if (rel_set.count(a) > 0) ++n;
    }
    return static_cast<double>(n);
  };
  double estimate = count_of(attrs[0]);
  for (size_t i = 1; i < attrs.size() && estimate > 0; ++i) {
    auto key = attrs[i - 1] < attrs[i]
                   ? std::make_pair(attrs[i - 1], attrs[i])
                   : std::make_pair(attrs[i], attrs[i - 1]);
    auto it = pair_counts_.find(key);
    double joint = it == pair_counts_.end() ? 0.0
                                            : static_cast<double>(it->second);
    double prior = count_of(attrs[i - 1]);
    estimate *= prior == 0.0 ? 0.0 : joint / prior;
  }
  return estimate;
}

}  // namespace revere::corpus
