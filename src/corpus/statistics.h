#ifndef REVERE_CORPUS_STATISTICS_H_
#define REVERE_CORPUS_STATISTICS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/text/synonyms.h"

namespace revere::corpus {

/// Term-normalization knobs — the paper keeps "different versions,
/// depending on whether we take into consideration word stemming,
/// synonym tables, inter-language dictionaries" (§4.2.1).
struct StatisticsOptions {
  bool use_stemming = true;
  bool use_synonyms = false;
  const text::SynonymTable* synonyms = nullptr;
};

/// §4.2.1 Basic statistics — how a term is used across the corpus.
struct TermUsage {
  size_t as_relation = 0;   // occurrences as a relation name
  size_t as_attribute = 0;  // occurrences as an attribute name
  size_t as_data = 0;       // occurrences as a token in data values
  size_t schemas_containing = 0;

  size_t total() const { return as_relation + as_attribute + as_data; }
  /// Fraction of this term's uses in the given role.
  double RelationShare() const;
  double AttributeShare() const;
  double DataShare() const;
};

/// One ranked co-occurrence / similarity result.
struct ScoredTerm {
  std::string term;
  double score = 0.0;
};

/// A frequent partial structure (§4.2.2): an attribute set that recurs
/// across corpus relations, with its support count.
struct FrequentStructure {
  std::set<std::string> attributes;  // normalized attribute terms
  size_t support = 0;                // number of supporting relations
};

/// Statistics computed over a Corpus (§4.2). All term arguments and
/// results are normalized under the options the object was built with.
class CorpusStatistics {
 public:
  /// Scans the corpus once and builds all basic statistics.
  CorpusStatistics(const Corpus& corpus, StatisticsOptions options = {});

  /// Normalizes a raw term (tokenize + stem + synonym-canonicalize).
  std::string Normalize(const std::string& term) const;

  /// Usage profile of `term`; zeros when unseen.
  TermUsage Usage(const std::string& term) const;

  /// Attributes co-occurring with `attribute` in the same relation,
  /// ranked by conditional probability P(other | attribute).
  std::vector<ScoredTerm> CoOccurringAttributes(const std::string& attribute,
                                                size_t k = 10) const;

  /// Relation names under which `attribute` appears, ranked by count —
  /// answers "what tend to be the names of related tables?" (§4.2.1).
  std::vector<ScoredTerm> RelationsContaining(const std::string& attribute,
                                              size_t k = 10) const;

  /// "Similar names" (§4.2.1): terms whose co-occurrence profile is
  /// distributionally similar to `attribute`'s (cosine of co-occurrence
  /// vectors). Finds synonyms the synonym table doesn't know.
  std::vector<ScoredTerm> SimilarAttributes(const std::string& attribute,
                                            size_t k = 10) const;

  /// §4.2.2 composite statistics: frequent attribute sets (Apriori) with
  /// support >= min_support, up to sets of size max_size.
  std::vector<FrequentStructure> FrequentAttributeSets(
      size_t min_support, size_t max_size = 4) const;

  /// Estimated support of an arbitrary attribute set: exact when mined,
  /// otherwise estimated from pairwise statistics ("we will maintain
  /// only statistics on partial structures that appear frequently ...
  /// and estimate the statistics for other partial structures").
  double EstimateSupport(const std::set<std::string>& attributes) const;

  size_t vocabulary_size() const { return usage_.size(); }
  size_t relation_count() const { return relation_count_; }

 private:
  StatisticsOptions options_;
  std::map<std::string, TermUsage> usage_;
  // Normalized attribute sets, one per corpus relation.
  std::vector<std::set<std::string>> relation_attribute_sets_;
  // attr -> relation-name -> count.
  std::map<std::string, std::map<std::string, size_t>> attr_to_relations_;
  // Pairwise co-occurrence counts (keyed a<b).
  std::map<std::pair<std::string, std::string>, size_t> pair_counts_;
  std::map<std::string, size_t> attr_counts_;
  size_t relation_count_ = 0;
};

}  // namespace revere::corpus

#endif  // REVERE_CORPUS_STATISTICS_H_
