#ifndef REVERE_ADVISOR_DESIGN_ADVISOR_H_
#define REVERE_ADVISOR_DESIGN_ADVISOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/advisor/matcher.h"
#include "src/corpus/corpus.h"
#include "src/corpus/statistics.h"

namespace revere::advisor {

/// One ranked corpus schema proposed by DesignAdvisor.
struct SchemaSuggestion {
  std::string schema_id;
  double similarity = 0.0;  // alpha*fit + beta*preference
  double fit = 0.0;
  double preference = 0.0;
  std::vector<MatchCorrespondence> correspondences;
};

/// A structure-level recommendation ("in similar schemas at most other
/// universities, TA information has been modeled in a table separate
/// from the course table", §4.3.1).
struct StructureAdvice {
  std::string relation;        // where the attribute currently lives
  std::string attribute;
  std::string suggested_relation;  // the corpus-majority home
  double confidence = 0.0;
};

struct DesignAdvisorOptions {
  /// Weights of the paper's similarity template: sim = alpha*fit +
  /// beta*preference (§4.3.1).
  double alpha = 0.7;
  double beta = 0.3;
  MatcherOptions matcher;
  corpus::StatisticsOptions statistics;
};

/// The DESIGN ADVISOR (§4.3.1): assists authoring by retrieving and
/// ranking similar corpus schemas, auto-completing attributes, and
/// flagging structural deviations from corpus practice.
class DesignAdvisor {
 public:
  DesignAdvisor(const corpus::Corpus* corpus,
                DesignAdvisorOptions options = {});

  /// Given a partial schema (S, D): returns the top-k corpus schemas S'
  /// ranked by sim(S', (S, D)), each with the correspondences that
  /// justify the fit term. `values_by_element` supplies D.
  std::vector<SchemaSuggestion> SuggestSchemas(
      const corpus::SchemaEntry& partial,
      const std::map<std::string, std::vector<std::string>>&
          values_by_element = {},
      size_t k = 5) const;

  /// Auto-complete: attributes that corpus relations similar to
  /// (`relation_name`, `present_attributes`) also carry, ranked by
  /// co-occurrence, excluding ones already present.
  std::vector<corpus::ScoredTerm> SuggestAttributes(
      const std::string& relation_name,
      const std::vector<std::string>& present_attributes,
      size_t k = 5) const;

  /// Flags attributes that the corpus usually models in a different
  /// relation than the draft does (the "TA table" advice).
  std::vector<StructureAdvice> AdviseStructure(
      const corpus::SchemaEntry& draft, double min_confidence = 0.6) const;

  const corpus::CorpusStatistics& statistics() const { return stats_; }

 private:
  const corpus::Corpus* corpus_;
  DesignAdvisorOptions options_;
  corpus::CorpusStatistics stats_;
  SchemaMatcher matcher_;
};

}  // namespace revere::advisor

#endif  // REVERE_ADVISOR_DESIGN_ADVISOR_H_
