#ifndef REVERE_ADVISOR_QUERY_ASSISTANT_H_
#define REVERE_ADVISOR_QUERY_ASSISTANT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/corpus/statistics.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"
#include "src/text/similarity.h"

namespace revere::advisor {

/// One proposed reformulation of a user query, with the vocabulary
/// repairs that produced it.
struct QuerySuggestion {
  query::ConjunctiveQuery query;  // well-formed against the schema
  double score = 0.0;             // product of repair similarities
  /// Human-readable repairs, e.g. "class -> course", "teacher ->
  /// instructor".
  std::vector<std::string> repairs;
};

struct QueryAssistantOptions {
  /// Minimum per-repair similarity for a candidate substitution.
  double min_term_similarity = 0.45;
  /// Candidates considered per unknown relation.
  size_t candidates_per_relation = 3;
  /// Maximum suggestions returned.
  size_t max_suggestions = 5;
  text::NameSimilarityOptions name_options;
  /// Optional corpus statistics: when present, term-usage roles break
  /// ties (a term mostly used as a relation name is a better relation
  /// repair than one mostly used in data).
  const corpus::CorpusStatistics* statistics = nullptr;
};

/// The §4.4 tool: "a user should be able to access a database the
/// schema of which she does not know, and pose a query using her own
/// terminology ... a tool that uses the corpus to propose
/// reformulations of the user's query that are well formed w.r.t. the
/// schema at hand. The tool may propose a few such queries ... and let
/// the user choose among them."
///
/// Given a conjunctive query whose relation names come from the user's
/// head rather than the catalog, Reformulate() repairs each unknown
/// relation to the most similar catalog relations (same arity), ranks
/// the combinations, and returns only candidates that are well formed
/// (every relation exists with the right arity). This is the S-WORLD
/// analogue of a search engine's "did you mean" — U-WORLD graceful
/// degradation imported into structured querying.
class QueryAssistant {
 public:
  QueryAssistant(const storage::Catalog* catalog,
                 QueryAssistantOptions options = {})
      : catalog_(catalog), options_(options) {}

  /// Proposed well-formed reformulations, best first. An already
  /// well-formed query returns itself with score 1. Empty result means
  /// no repair clears the similarity bar.
  std::vector<QuerySuggestion> Reformulate(
      const query::ConjunctiveQuery& user_query) const;

  /// Convenience: reformulate and evaluate the best suggestion; the
  /// suggestion actually used is written to `*used` when non-null.
  Result<std::vector<storage::Row>> AnswerFlexibly(
      const query::ConjunctiveQuery& user_query,
      QuerySuggestion* used = nullptr) const;

 private:
  const storage::Catalog* catalog_;
  QueryAssistantOptions options_;
};

}  // namespace revere::advisor

#endif  // REVERE_ADVISOR_QUERY_ASSISTANT_H_
