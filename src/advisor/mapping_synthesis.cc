#include "src/advisor/mapping_synthesis.h"

#include <map>

namespace revere::advisor {

namespace {

using query::Atom;
using query::ConjunctiveQuery;
using query::QTerm;

std::pair<std::string, std::string> SplitElement(const std::string& e) {
  size_t dot = e.find('.');
  if (dot == std::string::npos) return {e, ""};
  return {e.substr(0, dot), e.substr(dot + 1)};
}

int AttributeIndex(const corpus::RelationDecl& rel,
                   const std::string& attr) {
  for (size_t i = 0; i < rel.attributes.size(); ++i) {
    if (rel.attributes[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

std::string Qualify(const std::string& peer, const std::string& relation) {
  return peer.empty() ? relation : peer + ":" + relation;
}

}  // namespace

std::vector<query::GlavMapping> SynthesizeGlavMappings(
    const corpus::SchemaEntry& schema_a, const corpus::SchemaEntry& schema_b,
    const std::vector<MatchCorrespondence>& correspondences,
    const std::string& peer_a, const std::string& peer_b,
    size_t min_correspondences) {
  // Group matched attribute pairs by relation pair.
  std::map<std::pair<std::string, std::string>,
           std::vector<std::pair<int, int>>>
      groups;
  for (const auto& c : correspondences) {
    auto [rel_a, attr_a] = SplitElement(c.a);
    auto [rel_b, attr_b] = SplitElement(c.b);
    const corpus::RelationDecl* da = schema_a.FindRelation(rel_a);
    const corpus::RelationDecl* db = schema_b.FindRelation(rel_b);
    if (da == nullptr || db == nullptr) continue;
    int ia = AttributeIndex(*da, attr_a);
    int ib = AttributeIndex(*db, attr_b);
    if (ia < 0 || ib < 0) continue;
    groups[{rel_a, rel_b}].emplace_back(ia, ib);
  }

  std::vector<query::GlavMapping> out;
  for (const auto& [rels, pairs] : groups) {
    if (pairs.size() < min_correspondences) continue;
    const corpus::RelationDecl* da = schema_a.FindRelation(rels.first);
    const corpus::RelationDecl* db = schema_b.FindRelation(rels.second);

    // Head: one exported variable per matched pair.
    std::vector<QTerm> head;
    std::vector<QTerm> args_a(da->attributes.size());
    std::vector<QTerm> args_b(db->attributes.size());
    int next_var = 0;
    for (const auto& [ia, ib] : pairs) {
      QTerm v = QTerm::Var("X" + std::to_string(next_var++));
      head.push_back(v);
      args_a[static_cast<size_t>(ia)] = v;
      args_b[static_cast<size_t>(ib)] = v;
    }
    // Unmatched positions: fresh existentials per side.
    int fresh = 0;
    for (auto& t : args_a) {
      if (t.is_var() && t.var().empty()) {
        t = QTerm::Var("A" + std::to_string(fresh++));
      } else if (!t.is_var() && t.value().is_null()) {
        t = QTerm::Var("A" + std::to_string(fresh++));
      }
    }
    for (auto& t : args_b) {
      if (t.is_var() && t.var().empty()) {
        t = QTerm::Var("B" + std::to_string(fresh++));
      } else if (!t.is_var() && t.value().is_null()) {
        t = QTerm::Var("B" + std::to_string(fresh++));
      }
    }
    std::string name = rels.first + "-" + rels.second;
    ConjunctiveQuery source(
        "m", head,
        {Atom{Qualify(peer_a, rels.first), args_a}});
    ConjunctiveQuery target(
        "m", head,
        {Atom{Qualify(peer_b, rels.second), args_b}});
    query::GlavMapping mapping{name, std::move(source), std::move(target)};
    if (mapping.Validate().ok()) out.push_back(std::move(mapping));
  }
  return out;
}

}  // namespace revere::advisor
