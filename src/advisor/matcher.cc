#include "src/advisor/matcher.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/text/tokenizer.h"

namespace revere::advisor {

namespace {

/// Jaccard overlap of value token sets — strong evidence when two
/// columns share vocabulary (e.g. the same instructor names).
double ValueOverlap(const learn::ColumnInstance& a,
                    const learn::ColumnInstance& b) {
  if (a.values.empty() || b.values.empty()) return 0.0;
  std::set<std::string> ta, tb;
  for (const auto& v : a.values) {
    for (auto& t : text::TokenizeText(v)) ta.insert(std::move(t));
  }
  for (const auto& v : b.values) {
    for (auto& t : text::TokenizeText(v)) tb.insert(std::move(t));
  }
  if (ta.empty() || tb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& t : ta) {
    if (tb.count(t)) ++inter;
  }
  return static_cast<double>(inter) /
         static_cast<double>(ta.size() + tb.size() - inter);
}

/// Correlation of the corpus classifiers' predictions on two columns:
/// cosine over the label-score vectors, boosted when the argmax agrees.
double PredictionCorrelation(const learn::MultiStrategyLearner& classifiers,
                             const learn::ColumnInstance& a,
                             const learn::ColumnInstance& b) {
  learn::Prediction pa = classifiers.Predict(a);
  learn::Prediction pb = classifiers.Predict(b);
  if (pa.scores.empty() || pb.scores.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [label, s] : pa.scores) na += s * s;
  for (const auto& [label, s] : pb.scores) nb += s * s;
  for (const auto& [label, s] : pa.scores) {
    auto it = pb.scores.find(label);
    if (it != pb.scores.end()) dot += s * it->second;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  double cosine = dot / (std::sqrt(na) * std::sqrt(nb));
  double agree = pa.Best() == pb.Best() ? 1.0 : 0.0;
  return 0.5 * cosine + 0.5 * agree;
}

}  // namespace

double SchemaMatcher::ElementSimilarity(const learn::ColumnInstance& a,
                                        const learn::ColumnInstance& b) const {
  double score =
      text::NameSimilarity(a.attribute, b.attribute, options_.name_options);
  // Instance evidence is a noisy-or *boost*: shared vocabulary raises
  // confidence, but absence of overlap never penalizes — otherwise a
  // pair that happens to lack sample data would outscore a genuinely
  // aligned pair whose samples only partially overlap.
  if (options_.use_values && !a.values.empty() && !b.values.empty()) {
    score += (1.0 - score) * ValueOverlap(a, b);
  }
  if (options_.corpus_classifiers != nullptr) {
    double classifier_sim =
        PredictionCorrelation(*options_.corpus_classifiers, a, b);
    double w = options_.classifier_weight;
    score = (1.0 - w) * score + w * classifier_sim;
  }
  return score;
}

namespace {

/// One relaxation sweep: blend each pair's score with its neighborhood
/// support — the average, over element i's same-relation siblings, of
/// their best score against element j's siblings.
void RelaxationSweep(const std::vector<learn::ColumnInstance>& side_a,
                     const std::vector<learn::ColumnInstance>& side_b,
                     double weight, std::vector<std::vector<double>>* m) {
  std::vector<std::vector<double>> next = *m;
  for (size_t i = 0; i < side_a.size(); ++i) {
    for (size_t j = 0; j < side_b.size(); ++j) {
      double support_sum = 0.0;
      size_t sibling_count = 0;
      for (size_t si = 0; si < side_a.size(); ++si) {
        if (si == i || side_a[si].relation != side_a[i].relation) continue;
        ++sibling_count;
        double best = 0.0;
        for (size_t sj = 0; sj < side_b.size(); ++sj) {
          if (sj == j || side_b[sj].relation != side_b[j].relation) continue;
          best = std::max(best, (*m)[si][sj]);
        }
        support_sum += best;
      }
      if (sibling_count == 0) continue;  // no structure to lean on
      double support = support_sum / static_cast<double>(sibling_count);
      next[i][j] = (1.0 - weight) * (*m)[i][j] + weight * support;
    }
  }
  *m = std::move(next);
}

}  // namespace

std::vector<MatchCorrespondence> SchemaMatcher::Match(
    const std::vector<learn::ColumnInstance>& side_a,
    const std::vector<learn::ColumnInstance>& side_b) const {
  // Full pairwise matrix (needed for relaxation even below threshold).
  std::vector<std::vector<double>> matrix(
      side_a.size(), std::vector<double>(side_b.size(), 0.0));
  for (size_t i = 0; i < side_a.size(); ++i) {
    for (size_t j = 0; j < side_b.size(); ++j) {
      matrix[i][j] = ElementSimilarity(side_a[i], side_b[j]);
    }
  }
  for (size_t round = 0; round < options_.relaxation_iterations; ++round) {
    RelaxationSweep(side_a, side_b, options_.relaxation_weight, &matrix);
  }

  struct Candidate {
    size_t i, j;
    double score;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < side_a.size(); ++i) {
    for (size_t j = 0; j < side_b.size(); ++j) {
      double s = matrix[i][j];
      if (s >= options_.threshold) candidates.push_back({i, j, s});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.i != y.i) return x.i < y.i;
              return x.j < y.j;
            });
  std::vector<bool> used_a(side_a.size(), false), used_b(side_b.size(),
                                                         false);
  std::vector<MatchCorrespondence> out;
  for (const auto& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    out.push_back({side_a[c.i].QualifiedName(), side_b[c.j].QualifiedName(),
                   c.score});
  }
  return out;
}

std::vector<learn::ColumnInstance> ColumnsOf(
    const corpus::Corpus& corpus, const corpus::SchemaEntry& schema) {
  std::vector<learn::ColumnInstance> out;
  for (const auto& rel : schema.relations) {
    const corpus::DataExample* data = corpus.FindData(schema.id, rel.name);
    for (size_t col = 0; col < rel.attributes.size(); ++col) {
      learn::ColumnInstance c;
      c.schema_id = schema.id;
      c.relation = rel.name;
      c.attribute = rel.attributes[col];
      for (size_t s = 0; s < rel.attributes.size(); ++s) {
        if (s != col) c.sibling_attributes.push_back(rel.attributes[s]);
      }
      if (data != nullptr) {
        for (const auto& row : data->rows) {
          c.values.push_back(row[col]);
        }
      }
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::vector<learn::ColumnInstance> ColumnsOf(
    const corpus::SchemaEntry& schema,
    const std::map<std::string, std::vector<std::string>>&
        values_by_element) {
  std::vector<learn::ColumnInstance> out;
  for (const auto& rel : schema.relations) {
    for (size_t col = 0; col < rel.attributes.size(); ++col) {
      learn::ColumnInstance c;
      c.schema_id = schema.id;
      c.relation = rel.name;
      c.attribute = rel.attributes[col];
      for (size_t s = 0; s < rel.attributes.size(); ++s) {
        if (s != col) c.sibling_attributes.push_back(rel.attributes[s]);
      }
      auto it = values_by_element.find(c.QualifiedName());
      if (it != values_by_element.end()) c.values = it->second;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace revere::advisor
