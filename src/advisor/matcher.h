#ifndef REVERE_ADVISOR_MATCHER_H_
#define REVERE_ADVISOR_MATCHER_H_

#include <map>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/learn/multi_strategy.h"
#include "src/text/similarity.h"

namespace revere::advisor {

/// One proposed element correspondence between two schemas.
struct MatchCorrespondence {
  std::string a;  // qualified element of schema A ("course.title")
  std::string b;  // qualified element of schema B
  double score = 0.0;
};

struct MatcherOptions {
  /// Minimum combined score to propose a correspondence.
  double threshold = 0.35;
  /// Weight of name similarity vs instance-based evidence.
  double name_weight = 0.5;
  /// Use value overlap / format evidence when data samples exist.
  bool use_values = true;
  text::NameSimilarityOptions name_options;
  /// Optional corpus-trained classifier stack (the LSD route, §4.3.2):
  /// "we apply the classifiers in the corpus to their elements
  /// respectively, and find correlations in the predictions".
  const learn::MultiStrategyLearner* corpus_classifiers = nullptr;
  double classifier_weight = 0.5;  // weight of the correlation signal
  /// Relaxation labeling (the GLUE [14] direction): iteratively boost a
  /// pair's score by how well the two elements' *siblings* match each
  /// other — structural consistency disambiguates what local evidence
  /// cannot. 0 iterations disables it.
  size_t relaxation_iterations = 0;
  double relaxation_weight = 0.4;
};

/// The MATCHING ADVISOR (§4.3.2): proposes semantic correspondences
/// between two previously unseen schemas, combining direct evidence
/// (names, instances) with corpus-classifier prediction correlation.
class SchemaMatcher {
 public:
  explicit SchemaMatcher(MatcherOptions options = {})
      : options_(options) {}

  /// Similarity of two individual elements in [0, 1].
  double ElementSimilarity(const learn::ColumnInstance& a,
                           const learn::ColumnInstance& b) const;

  /// One-to-one correspondences between the two element sets: greedy
  /// best-first assignment over the pairwise matrix, thresholded.
  std::vector<MatchCorrespondence> Match(
      const std::vector<learn::ColumnInstance>& side_a,
      const std::vector<learn::ColumnInstance>& side_b) const;

  const MatcherOptions& options() const { return options_; }

 private:
  MatcherOptions options_;
};

/// Builds matcher inputs from a corpus schema entry, attaching sample
/// values from the corpus's data examples when present.
std::vector<learn::ColumnInstance> ColumnsOf(const corpus::Corpus& corpus,
                                             const corpus::SchemaEntry& schema);

/// Same, for a schema not (yet) in a corpus — no data values attached
/// unless provided in `values_by_element` keyed by "relation.attribute".
std::vector<learn::ColumnInstance> ColumnsOf(
    const corpus::SchemaEntry& schema,
    const std::map<std::string, std::vector<std::string>>& values_by_element =
        {});

}  // namespace revere::advisor

#endif  // REVERE_ADVISOR_MATCHER_H_
