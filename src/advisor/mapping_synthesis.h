#ifndef REVERE_ADVISOR_MAPPING_SYNTHESIS_H_
#define REVERE_ADVISOR_MAPPING_SYNTHESIS_H_

#include <string>
#include <vector>

#include "src/advisor/matcher.h"
#include "src/corpus/corpus.h"
#include "src/query/glav.h"

namespace revere::advisor {

/// Closes the DElearning loop (§1.2/§4.3.2): the MatchingAdvisor
/// proposes element correspondences; this step compiles them into
/// executable GLAV mappings — "in more complex cases, the mapping will
/// include query expressions that enable mapping the data underlying
/// S1 to S2".
///
/// For every (relation_a, relation_b) pair with at least
/// `min_correspondences` matched attributes, emits
///   m(X1..Xk) :- peer_a:rel_a(...)  =>  m(X1..Xk) :- peer_b:rel_b(...)
/// where the head exports the matched attribute pairs and unmatched
/// positions get fresh existential variables. Relation names are
/// qualified with the given peer names (pass empty strings to keep them
/// unqualified).
std::vector<query::GlavMapping> SynthesizeGlavMappings(
    const corpus::SchemaEntry& schema_a, const corpus::SchemaEntry& schema_b,
    const std::vector<MatchCorrespondence>& correspondences,
    const std::string& peer_a = "", const std::string& peer_b = "",
    size_t min_correspondences = 1);

}  // namespace revere::advisor

#endif  // REVERE_ADVISOR_MAPPING_SYNTHESIS_H_
