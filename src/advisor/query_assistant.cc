#include "src/advisor/query_assistant.h"

#include <algorithm>

#include "src/query/evaluate.h"

namespace revere::advisor {

namespace {

struct RelationRepair {
  std::string replacement;
  double similarity = 0.0;
};

}  // namespace

std::vector<QuerySuggestion> QueryAssistant::Reformulate(
    const query::ConjunctiveQuery& user_query) const {
  // Per body atom: either it is already well formed, or collect repair
  // candidates among catalog relations of the same arity.
  std::vector<std::vector<RelationRepair>> per_atom;
  std::vector<std::string> table_names = catalog_->TableNames();

  for (const auto& atom : user_query.body()) {
    auto existing = catalog_->GetTable(atom.relation);
    if (existing.ok() &&
        existing.value()->schema().arity() == atom.args.size()) {
      per_atom.push_back({{atom.relation, 1.0}});
      continue;
    }
    std::vector<RelationRepair> candidates;
    for (const auto& name : table_names) {
      auto table = catalog_->GetTable(name);
      if (!table.ok() ||
          table.value()->schema().arity() != atom.args.size()) {
        continue;
      }
      double sim =
          text::NameSimilarity(atom.relation, name, options_.name_options);
      if (options_.statistics != nullptr) {
        // Prefer repairs whose target term is actually used as a
        // relation name in the corpus.
        corpus::TermUsage usage = options_.statistics->Usage(name);
        if (usage.total() > 0) {
          sim = 0.8 * sim + 0.2 * usage.RelationShare();
        }
      }
      if (sim >= options_.min_term_similarity) {
        candidates.push_back({name, sim});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const RelationRepair& a, const RelationRepair& b) {
                if (a.similarity != b.similarity) {
                  return a.similarity > b.similarity;
                }
                return a.replacement < b.replacement;
              });
    if (candidates.size() > options_.candidates_per_relation) {
      candidates.resize(options_.candidates_per_relation);
    }
    if (candidates.empty()) return {};  // unrepairable: no answers at all
    per_atom.push_back(std::move(candidates));
  }

  // Cross product of repairs (bounded: candidates_per_relation^atoms,
  // with few atoms in practice).
  std::vector<QuerySuggestion> out;
  std::vector<size_t> choice(per_atom.size(), 0);
  while (true) {
    QuerySuggestion suggestion;
    suggestion.score = 1.0;
    std::vector<query::Atom> body = user_query.body();
    for (size_t i = 0; i < body.size(); ++i) {
      const RelationRepair& repair = per_atom[i][choice[i]];
      if (repair.replacement != body[i].relation) {
        suggestion.repairs.push_back(body[i].relation + " -> " +
                                     repair.replacement);
      }
      suggestion.score *= repair.similarity;
      body[i].relation = repair.replacement;
    }
    suggestion.query = query::ConjunctiveQuery(user_query.name(),
                                               user_query.head(), body);
    out.push_back(std::move(suggestion));

    size_t i = 0;
    while (i < choice.size()) {
      if (++choice[i] < per_atom[i].size()) break;
      choice[i] = 0;
      ++i;
    }
    if (i == choice.size()) break;
    if (choice.empty()) break;
  }
  std::sort(out.begin(), out.end(),
            [](const QuerySuggestion& a, const QuerySuggestion& b) {
              return a.score > b.score;
            });
  if (out.size() > options_.max_suggestions) {
    out.resize(options_.max_suggestions);
  }
  return out;
}

Result<std::vector<storage::Row>> QueryAssistant::AnswerFlexibly(
    const query::ConjunctiveQuery& user_query, QuerySuggestion* used) const {
  std::vector<QuerySuggestion> suggestions = Reformulate(user_query);
  if (suggestions.empty()) {
    return Status::NotFound(
        "no schema-conformant reformulation found for: " +
        user_query.ToString());
  }
  for (const auto& s : suggestions) {
    auto rows = query::EvaluateCQ(*catalog_, s.query);
    if (!rows.ok()) continue;
    if (used != nullptr) *used = s;
    return rows;
  }
  return Status::Internal("all reformulations failed to evaluate");
}

}  // namespace revere::advisor
