#include "src/advisor/design_advisor.h"

#include <algorithm>
#include <set>

#include "src/text/similarity.h"

namespace revere::advisor {

DesignAdvisor::DesignAdvisor(const corpus::Corpus* corpus,
                             DesignAdvisorOptions options)
    : corpus_(corpus),
      options_(options),
      stats_(*corpus, options.statistics),
      matcher_(options.matcher) {}

std::vector<SchemaSuggestion> DesignAdvisor::SuggestSchemas(
    const corpus::SchemaEntry& partial,
    const std::map<std::string, std::vector<std::string>>& values_by_element,
    size_t k) const {
  std::vector<learn::ColumnInstance> partial_columns =
      ColumnsOf(partial, values_by_element);

  // preference normalizers.
  size_t max_degree = 1;
  for (const auto& s : corpus_->schemas()) {
    max_degree = std::max(max_degree, corpus_->MappingDegree(s.id));
  }

  std::vector<SchemaSuggestion> out;
  for (const auto& candidate : corpus_->schemas()) {
    if (candidate.id == partial.id) continue;
    std::vector<learn::ColumnInstance> candidate_columns =
        ColumnsOf(*corpus_, candidate);
    SchemaSuggestion suggestion;
    suggestion.schema_id = candidate.id;
    suggestion.correspondences =
        matcher_.Match(partial_columns, candidate_columns);
    // fit = "ratio between the total number of mappings between S' and S
    // and the total number of elements of S' and S" (§4.3.1); we use the
    // symmetric 2m/(|S'|+|S|) form so a perfect self-match scores 1.
    size_t total_elements =
        partial_columns.size() + candidate_columns.size();
    suggestion.fit =
        total_elements == 0
            ? 0.0
            : 2.0 * static_cast<double>(suggestion.correspondences.size()) /
                  static_cast<double>(total_elements);
    // preference(S'): "whether S' is commonly used ... or is relatively
    // concise and minimal."
    double usage = static_cast<double>(corpus_->MappingDegree(candidate.id)) /
                   static_cast<double>(max_degree);
    double concision =
        candidate_columns.empty()
            ? 0.0
            : std::min(1.0, static_cast<double>(partial_columns.size()) /
                                static_cast<double>(candidate_columns.size()));
    suggestion.preference = 0.5 * usage + 0.5 * concision;
    suggestion.similarity = options_.alpha * suggestion.fit +
                            options_.beta * suggestion.preference;
    out.push_back(std::move(suggestion));
  }
  std::sort(out.begin(), out.end(),
            [](const SchemaSuggestion& a, const SchemaSuggestion& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.schema_id < b.schema_id;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<corpus::ScoredTerm> DesignAdvisor::SuggestAttributes(
    const std::string& relation_name,
    const std::vector<std::string>& present_attributes, size_t k) const {
  // Vote over co-occurrence lists of every present attribute.
  std::map<std::string, double> votes;
  std::set<std::string> present;
  for (const auto& a : present_attributes) {
    present.insert(stats_.Normalize(a));
  }
  for (const auto& a : present_attributes) {
    for (const auto& co : stats_.CoOccurringAttributes(a, 4 * k)) {
      if (present.count(co.term) > 0) continue;
      votes[co.term] += co.score;
    }
  }
  (void)relation_name;
  std::vector<corpus::ScoredTerm> out;
  for (const auto& [term, score] : votes) {
    out.push_back({term, score / static_cast<double>(
                                     std::max<size_t>(
                                         present_attributes.size(), 1))});
  }
  std::sort(out.begin(), out.end(),
            [](const corpus::ScoredTerm& a, const corpus::ScoredTerm& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<StructureAdvice> DesignAdvisor::AdviseStructure(
    const corpus::SchemaEntry& draft, double min_confidence) const {
  std::vector<StructureAdvice> out;
  for (const auto& rel : draft.relations) {
    std::string here = stats_.Normalize(rel.name);
    for (const auto& attr : rel.attributes) {
      auto homes = stats_.RelationsContaining(attr, 10);
      if (homes.empty()) continue;
      // Split the attribute's corpus occurrences between relations
      // similar to the draft's ("here") and everything else ("away");
      // the advice fires when the corpus (almost) never models this
      // attribute where the draft does.
      double total = 0.0, here_share = 0.0;
      const corpus::ScoredTerm* best_away = nullptr;
      for (const auto& h : homes) {
        total += h.score;
        bool similar =
            h.term == here || text::NameSimilarity(h.term, here) >= 0.5;
        if (similar) {
          here_share += h.score;
        } else if (best_away == nullptr || h.score > best_away->score) {
          best_away = &h;
        }
      }
      if (total == 0.0 || best_away == nullptr) continue;
      double away_confidence = (total - here_share) / total;
      bool here_is_unusual = here_share / total < 0.25;
      if (here_is_unusual && away_confidence >= min_confidence) {
        out.push_back(StructureAdvice{rel.name, attr, best_away->term,
                                      away_confidence});
      }
    }
  }
  return out;
}

}  // namespace revere::advisor
