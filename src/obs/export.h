#ifndef REVERE_OBS_EXPORT_H_
#define REVERE_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"

namespace revere::obs {

/// Human-readable dump of every registered metric, one per line, sorted
/// by name: `counter <name> <value>`, `gauge <name> <value>`, and
/// `histogram <name> count=<n> mean=<m> p50=<..> p90=<..> p99=<..>`.
std::string MetricsToText(const MetricsRegistry& registry);

/// Machine-readable dump: one JSON object per line, shaped like the
/// bench JSONL trajectory format (bench/json_lines_reporter) so the
/// same diffing tools work on both:
///
///   {"bench": "obs_metrics", "params": {"name": "<metric>", "args":
///    []}, "metrics": {"kind": "counter", "value": N}}
///
/// Histogram lines carry {"kind": "histogram", "count", "sum", "mean",
/// "p50", "p90", "p99"} instead of "value".
std::string MetricsToJsonLines(const MetricsRegistry& registry);

/// Writes `content` to `path`, truncating; returns false on I/O error.
/// Backs `--metrics <path>` in the bench runner.
bool WriteFileOrFalse(const std::string& path, const std::string& content);

}  // namespace revere::obs

#endif  // REVERE_OBS_EXPORT_H_
