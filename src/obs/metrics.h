#ifndef REVERE_OBS_METRICS_H_
#define REVERE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace revere::obs {

/// Shards per counter: enough that the PDMS serving paths (AnswerBatch
/// fan-out, parallel union evaluation) rarely collide on one cache
/// line, small enough that Value()'s sum stays trivial.
inline constexpr size_t kCounterShards = 8;

/// Returns this thread's stable shard index in [0, kCounterShards).
/// Assigned round-robin on first use per thread, so concurrent writers
/// spread across shards deterministically per thread lifetime.
size_t ThisThreadShard();

/// A monotonically increasing sum, sharded across cache lines so the
/// hot path is one uncontended relaxed fetch_add. Same concurrency
/// idiom as PlanCache: atomics on the hot path, locks only at
/// registration time (in MetricsRegistry).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  /// Sum over shards. Monotone between concurrent writers but not a
  /// point-in-time snapshot (like any multi-writer counter).
  uint64_t Value() const;
  /// Zeroes every shard (tests and bench fixtures only).
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kCounterShards];
};

/// A value that goes up and down (queue depths, live entry counts).
/// Single atomic: gauges are updated far less often than counters.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency/size histogram. Bucket upper bounds are set
/// at registration and never change, so Record() is a short search plus
/// one relaxed atomic increment — safe from any thread, TSan-clean,
/// and cheap enough to sit on the per-task / per-answer hot path.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing; one
  /// overflow bucket is appended for values above the last bound.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  /// Default bounds for latency metrics, in microseconds: 1µs … 10s in
  /// a 1-2-5 ladder. Used by every *_latency_us histogram.
  static std::vector<double> DefaultLatencyBoundsUs();

  struct Snapshot {
    std::vector<double> bounds;    ///< upper bounds, overflow excluded
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 buckets
    uint64_t count = 0;
    double sum = 0.0;

    double mean() const { return count == 0 ? 0.0 : sum / count; }
    /// Linear interpolation inside the winning bucket; `p` in [0, 100].
    double Percentile(double p) const;
  };
  Snapshot GetSnapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A process-wide registry of named metrics. Registration (first use of
/// a name) takes the exclusive lock; every later lookup takes the
/// shared lock and the returned pointer is stable for the registry's
/// lifetime, so hot paths resolve a metric once (function-local static)
/// and then touch only atomics.
///
/// Naming convention (DESIGN.md §3.4): dotted lowercase
/// `<subsystem>.<metric>[_<unit>]` — e.g. `pdms.rows_shipped`,
/// `plan_cache.hits`, `threadpool.task_latency_us`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in subsystem reports to.
  /// Never destroyed (leaked singleton), so metric handles cached in
  /// function-local statics stay valid through shutdown.
  static MetricsRegistry& Default();

  /// Returns the counter registered under `name`, creating it on first
  /// use. The pointer is stable forever.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` applies only on first registration (empty = the default
  /// latency ladder); later callers share the existing histogram.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  /// Zeroes every registered metric's value. Registrations (and handed-
  /// out pointers) survive — this resets data, not structure.
  void Reset();

  enum class Kind { kCounter, kGauge, kHistogram };

  /// One registered metric, read at snapshot time.
  struct MetricRow {
    std::string name;
    Kind kind = Kind::kCounter;
    uint64_t counter_value = 0;           ///< kCounter
    int64_t gauge_value = 0;              ///< kGauge
    Histogram::Snapshot histogram;        ///< kHistogram
  };

  /// Every registered metric, sorted by name.
  std::vector<MetricRow> Snapshot() const;

  size_t metric_count() const;

 private:
  mutable std::shared_mutex mu_;
  /// less<> enables string_view lookups without a temporary string.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace revere::obs

#endif  // REVERE_OBS_METRICS_H_
