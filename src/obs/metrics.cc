#include "src/obs/metrics.h"

#include <algorithm>
#include <mutex>

namespace revere::obs {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) {
    sum += s.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is a CAS loop on most targets; the sum
  // is off the per-bucket hot line, so contention stays negligible.
  double observed = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(observed, observed + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  return {1,    2,    5,    10,    20,    50,    100,    200,    500,
          1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
          1e6,  2e6,  5e6,  1e7};
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                        static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no upper bound; report its lower edge.
      double hi = i < bounds.size() ? bounds[i] : lo;
      if (counts[i] == 0) return hi;
      double frac = static_cast<double>(rank - (seen - counts[i])) /
                    static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] =
      counters_.try_emplace(std::string(name), std::make_unique<Counter>());
  (void)inserted;
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] =
      gauges_.try_emplace(std::string(name), std::make_unique<Gauge>());
  (void)inserted;
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsUs();
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(
      std::string(name), std::make_unique<Histogram>(std::move(bounds)));
  (void)inserted;
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<MetricsRegistry::MetricRow> MetricsRegistry::Snapshot() const {
  std::vector<MetricRow> rows;
  std::shared_lock<std::shared_mutex> lock(mu_);
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricRow row;
    row.name = name;
    row.kind = Kind::kCounter;
    row.counter_value = c->Value();
    rows.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRow row;
    row.name = name;
    row.kind = Kind::kGauge;
    row.gauge_value = g->Value();
    rows.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow row;
    row.name = name;
    row.kind = Kind::kHistogram;
    row.histogram = h->GetSnapshot();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

size_t MetricsRegistry::metric_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace revere::obs
