#include "src/obs/export.h"

#include <cstdio>
#include <fstream>

namespace revere::obs {

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string MetricsToText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& row : registry.Snapshot()) {
    switch (row.kind) {
      case MetricsRegistry::Kind::kCounter:
        out += "counter " + row.name + " " +
               std::to_string(row.counter_value) + "\n";
        break;
      case MetricsRegistry::Kind::kGauge:
        out += "gauge " + row.name + " " + std::to_string(row.gauge_value) +
               "\n";
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram::Snapshot& h = row.histogram;
        out += "histogram " + row.name + " count=" +
               std::to_string(h.count) + " mean=" + Num(h.mean()) +
               " p50=" + Num(h.Percentile(50)) +
               " p90=" + Num(h.Percentile(90)) +
               " p99=" + Num(h.Percentile(99)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsToJsonLines(const MetricsRegistry& registry) {
  // Metric names come from compiled-in string literals (dotted
  // lowercase identifiers), so no JSON escaping is needed here.
  std::string out;
  for (const auto& row : registry.Snapshot()) {
    std::string line = "{\"bench\": \"obs_metrics\", \"params\": {\"name\": \"" +
                       row.name + "\", \"args\": []}, \"metrics\": {";
    switch (row.kind) {
      case MetricsRegistry::Kind::kCounter:
        line += "\"kind\": \"counter\", \"value\": " +
                std::to_string(row.counter_value);
        break;
      case MetricsRegistry::Kind::kGauge:
        line += "\"kind\": \"gauge\", \"value\": " +
                std::to_string(row.gauge_value);
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram::Snapshot& h = row.histogram;
        line += "\"kind\": \"histogram\", \"count\": " +
                std::to_string(h.count) + ", \"sum\": " + Num(h.sum) +
                ", \"mean\": " + Num(h.mean()) +
                ", \"p50\": " + Num(h.Percentile(50)) +
                ", \"p90\": " + Num(h.Percentile(90)) +
                ", \"p99\": " + Num(h.Percentile(99));
        break;
      }
    }
    line += "}}\n";
    out += line;
  }
  return out;
}

bool WriteFileOrFalse(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  out << content;
  out.flush();
  return out.good();
}

}  // namespace revere::obs
