#ifndef REVERE_OBS_TRACE_H_
#define REVERE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace revere::obs {

class Tracer;

/// How much work a Tracer does per span. Instrumentation sites are
/// compiled in unconditionally; the mode (or a null Tracer*) decides
/// what they cost at runtime.
enum class TraceMode {
  /// StartSpan returns an inert Span: no clock read, no allocation —
  /// the cost of a disabled tracer is one branch per site.
  kDisabled,
  /// Spans run the full pipeline (clock reads, ids, attrs, record
  /// assembly) but nothing is retained — isolates instrumentation cost
  /// from retention cost in bench_observability.
  kNullSink,
  /// Records are retained and queryable via Records()/TextDump().
  kFull,
};

/// One finished span, as retained by a kFull tracer. Parent links (not
/// nesting in the vector) carry the tree; `Records()` order is finish
/// order, so a parent usually follows its children.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = top-level span
  std::string name;     ///< span point in the answer path ("contact", …)
  std::string detail;   ///< instance label: peer name, "rw3", …
  uint64_t start_ns = 0;     ///< monotonic, relative to the tracer epoch
  uint64_t duration_ns = 0;  ///< monotonic end - start
  std::vector<std::pair<std::string, double>> attrs;
};

/// A movable RAII handle for one in-flight span. Created via
/// Tracer::StartSpan (or the null-safe obs::StartSpan helper); finishes
/// on destruction or an explicit Finish(). A default-constructed Span
/// is inert: every method is a no-op, so instrumented code never
/// branches on "is tracing on" beyond span creation.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Finish(); }

  /// Attaches a numeric attribute (counts, flags, simulated ms).
  void AddAttr(std::string_view key, double value);
  /// Replaces the instance label.
  void SetDetail(std::string detail);
  /// Ends the span (idempotent; also run by the destructor).
  void Finish();

  bool active() const { return tracer_ != nullptr; }
  /// This span's id, for parenting children; 0 when inert.
  uint64_t id() const { return id_; }

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  const char* name_ = "";
  std::string detail_;
  uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, double>> attrs_;
};

/// Collects per-query span trees from the whole answer path
/// (reformulate → plan_cache → per-rewriting evaluate → per-peer
/// contact/retry). Thread-safe: spans may start and finish on pool
/// workers concurrently (ids are atomic, retention is mutex-appended).
/// Timings come from std::chrono::steady_clock, relative to the
/// tracer's construction (its epoch).
class Tracer {
 public:
  explicit Tracer(TraceMode mode = TraceMode::kFull)
      : mode_(mode), epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  TraceMode mode() const { return mode_; }

  /// Starts a span under `parent` (0 = top level). `name` must be a
  /// string literal (stored as a pointer until the span finishes).
  Span StartSpan(const char* name, uint64_t parent = 0,
                 std::string detail = {});

  /// Snapshot of finished spans, in finish order. Empty unless kFull.
  std::vector<SpanRecord> Records() const;
  size_t span_count() const;
  /// Drops retained records (epoch and ids keep running).
  void Clear();

  /// Human-readable indented span tree with millisecond timings —
  /// README's sample trace dump. Unfinished spans don't appear.
  std::string TextDump() const;

 private:
  friend class Span;
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
  void FinishSpan(Span* span);

  TraceMode mode_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

/// Null-safe span start: the idiom every instrumentation site uses, so
/// a null tracer (the default everywhere) costs one branch.
inline Span StartSpan(Tracer* tracer, const char* name, uint64_t parent = 0,
                      std::string detail = {}) {
  if (tracer == nullptr) return Span();
  return tracer->StartSpan(name, parent, std::move(detail));
}

}  // namespace revere::obs

#endif  // REVERE_OBS_TRACE_H_
