#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace revere::obs {

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    tracer_ = other.tracer_;
    id_ = other.id_;
    parent_ = other.parent_;
    name_ = other.name_;
    detail_ = std::move(other.detail_);
    start_ns_ = other.start_ns_;
    attrs_ = std::move(other.attrs_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::AddAttr(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  attrs_.emplace_back(std::string(key), value);
}

void Span::SetDetail(std::string detail) {
  if (tracer_ == nullptr) return;
  detail_ = std::move(detail);
}

void Span::Finish() {
  if (tracer_ == nullptr) return;
  tracer_->FinishSpan(this);
  tracer_ = nullptr;
}

Span Tracer::StartSpan(const char* name, uint64_t parent,
                       std::string detail) {
  if (mode_ == TraceMode::kDisabled) return Span();
  Span span;
  span.tracer_ = this;
  span.id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_ = parent;
  span.name_ = name;
  span.detail_ = std::move(detail);
  span.start_ns_ = NowNs();
  return span;
}

void Tracer::FinishSpan(Span* span) {
  SpanRecord record;
  record.id = span->id_;
  record.parent = span->parent_;
  record.name = span->name_;
  record.detail = std::move(span->detail_);
  record.start_ns = span->start_ns_;
  record.duration_ns = NowNs() - span->start_ns_;
  record.attrs = std::move(span->attrs_);
  if (mode_ != TraceMode::kFull) return;  // null sink: assembled, dropped
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

namespace {

void DumpSubtree(const std::vector<SpanRecord>& records,
                 const std::multimap<uint64_t, size_t>& children,
                 size_t index, int depth, std::string* out) {
  const SpanRecord& r = records[index];
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.3f ms  ",
                static_cast<double>(r.duration_ns) / 1e6);
  *out += buf;
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += r.name;
  if (!r.detail.empty()) {
    *out += " [";
    *out += r.detail;
    *out += "]";
  }
  for (const auto& [key, value] : r.attrs) {
    std::snprintf(buf, sizeof(buf), " %s=%g", key.c_str(), value);
    *out += buf;
  }
  *out += "\n";
  // Children in start order, so the dump reads chronologically.
  std::vector<size_t> kids;
  auto [lo, hi] = children.equal_range(r.id);
  for (auto it = lo; it != hi; ++it) kids.push_back(it->second);
  std::sort(kids.begin(), kids.end(), [&](size_t a, size_t b) {
    return records[a].start_ns < records[b].start_ns;
  });
  for (size_t kid : kids) {
    DumpSubtree(records, children, kid, depth + 1, out);
  }
}

}  // namespace

std::string Tracer::TextDump() const {
  std::vector<SpanRecord> records = Records();
  std::multimap<uint64_t, size_t> children;
  std::vector<size_t> roots;
  for (size_t i = 0; i < records.size(); ++i) {
    // A span whose parent was never retained (e.g. cleared, or an
    // external id) dumps as a root rather than vanishing.
    bool parent_known = false;
    if (records[i].parent != 0) {
      for (const SpanRecord& r : records) {
        if (r.id == records[i].parent) {
          parent_known = true;
          break;
        }
      }
    }
    if (parent_known) {
      children.emplace(records[i].parent, i);
    } else {
      roots.push_back(i);
    }
  }
  std::sort(roots.begin(), roots.end(), [&](size_t a, size_t b) {
    return records[a].start_ns < records[b].start_ns;
  });
  std::string out;
  for (size_t root : roots) {
    DumpSubtree(records, children, root, 0, &out);
  }
  return out;
}

}  // namespace revere::obs
