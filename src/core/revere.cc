#include "src/core/revere.h"

#include "src/mangrove/export.h"
#include "src/piazza/peer.h"

namespace revere::core {

Revere::Revere(std::string org, mangrove::MangroveSchema schema)
    : org_(std::move(org)),
      schema_(std::move(schema)),
      synonyms_(text::SynonymTable::UniversityDomainDefaults()),
      annotator_(&schema_),
      publisher_(&schema_, &repository_) {
  (void)pdms_.AddPeer(org_);
}

std::unique_ptr<Revere> Revere::ForUniversity(const std::string& org) {
  return std::make_unique<Revere>(
      org, mangrove::MangroveSchema::UniversityDefaults());
}

Result<mangrove::PublishReceipt> Revere::PublishPage(
    const std::string& url, const std::string& html) {
  return publisher_.Publish(url, html);
}

Result<size_t> Revere::ExportConceptToPeer(
    const std::string& concept_name,
    const mangrove::CleaningPolicy& policy) {
  std::string qualified = piazza::QualifiedName(org_, concept_name);
  // Replace a previous export.
  if (pdms_.storage().HasTable(qualified)) {
    REVERE_RETURN_IF_ERROR(pdms_.mutable_storage()->DropTable(qualified));
  }
  REVERE_ASSIGN_OR_RETURN(
      storage::TableSchema table_schema,
      mangrove::ConceptTableSchema(schema_, concept_name, qualified));
  REVERE_ASSIGN_OR_RETURN(
      storage::Table * table,
      pdms_.mutable_storage()->CreateTable(std::move(table_schema)));
  return mangrove::MaterializeConcept(repository_, schema_, concept_name,
                                      policy, table);
}

Status Revere::ContributeSchemaToCorpus() {
  corpus::SchemaEntry entry;
  entry.id = org_;
  entry.domain = schema_.name();
  for (const auto& c : schema_.concepts()) {
    corpus::RelationDecl rel;
    rel.name = c.name;
    for (const auto& p : c.properties) rel.attributes.push_back(p.name);
    entry.relations.push_back(std::move(rel));
  }
  return corpus_.AddSchema(std::move(entry));
}

Result<std::vector<advisor::MatchCorrespondence>> Revere::AdviseMatching(
    const std::string& schema_a, const std::string& schema_b,
    const advisor::MatcherOptions& options) const {
  const corpus::SchemaEntry* a = corpus_.FindSchema(schema_a);
  const corpus::SchemaEntry* b = corpus_.FindSchema(schema_b);
  if (a == nullptr || b == nullptr) {
    return Status::NotFound("both schemas must be in the corpus");
  }
  advisor::SchemaMatcher matcher(options);
  return matcher.Match(advisor::ColumnsOf(corpus_, *a),
                       advisor::ColumnsOf(corpus_, *b));
}

advisor::DesignAdvisor Revere::MakeDesignAdvisor(
    advisor::DesignAdvisorOptions options) const {
  return advisor::DesignAdvisor(&corpus_, options);
}

Result<std::vector<storage::Row>> Revere::QueryFlexibly(
    const std::string& user_query_text,
    advisor::QuerySuggestion* used) const {
  REVERE_ASSIGN_OR_RETURN(query::ConjunctiveQuery q,
                          query::ConjunctiveQuery::Parse(user_query_text));
  advisor::QueryAssistantOptions options;
  options.name_options.use_synonyms = true;
  options.name_options.synonyms = &synonyms_;
  advisor::QueryAssistant assistant(&pdms_.storage(), options);
  return assistant.AnswerFlexibly(q, used);
}

}  // namespace revere::core
