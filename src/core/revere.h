#ifndef REVERE_CORE_REVERE_H_
#define REVERE_CORE_REVERE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/advisor/design_advisor.h"
#include "src/advisor/matcher.h"
#include "src/advisor/query_assistant.h"
#include "src/common/status.h"
#include "src/corpus/corpus.h"
#include "src/mangrove/annotator.h"
#include "src/mangrove/apps.h"
#include "src/mangrove/cleaning.h"
#include "src/mangrove/publisher.h"
#include "src/mangrove/schema.h"
#include "src/piazza/pdms.h"
#include "src/rdf/triple_store.h"
#include "src/text/synonyms.h"

namespace revere::core {

/// The REVERE system facade (Figure 1): one organization's deployment,
/// wiring together
///   - MANGROVE: annotation tool + publish path + triple repository +
///     instant-gratification applications,
///   - Piazza: the peer data management network,
///   - the corpus of structures and its advisor tools.
///
/// The glue method ExportConceptToPeer turns locally published
/// annotations into a stored relation at a PDMS peer — the full
/// "structure locally, share globally" pipeline of the paper.
class Revere {
 public:
  /// `org` names this deployment's PDMS peer; `schema` is the MANGROVE
  /// tag schema its authors annotate against.
  Revere(std::string org, mangrove::MangroveSchema schema);

  /// Convenience: university-domain defaults.
  static std::unique_ptr<Revere> ForUniversity(const std::string& org);

  const std::string& org() const { return org_; }
  const mangrove::MangroveSchema& schema() const { return schema_; }

  // ---- MANGROVE ----
  mangrove::AnnotationTool& annotator() { return annotator_; }
  mangrove::Publisher& publisher() { return publisher_; }
  rdf::TripleStore& repository() { return repository_; }

  /// Annotate-and-publish in one step (the GUI's "publish" button).
  Result<mangrove::PublishReceipt> PublishPage(const std::string& url,
                                               const std::string& html);

  // ---- Piazza ----
  piazza::PdmsNetwork& pdms() { return pdms_; }

  /// Materializes one MANGROVE concept as a stored relation at this
  /// org's peer: table `concept`(subject, prop1, ..., propK) filled from
  /// the repository under `policy`. Replaces any previous export.
  Result<size_t> ExportConceptToPeer(const std::string& concept_name,
                                     const mangrove::CleaningPolicy& policy);

  // ---- Corpus & advisors ----
  corpus::Corpus& corpus() { return corpus_; }

  /// Registers this org's current schemas into the corpus so other
  /// tools can learn from them.
  Status ContributeSchemaToCorpus();

  /// MatchingAdvisor: proposes correspondences between two corpus
  /// schemas (both must be in the corpus).
  Result<std::vector<advisor::MatchCorrespondence>> AdviseMatching(
      const std::string& schema_a, const std::string& schema_b,
      const advisor::MatcherOptions& options = {}) const;

  /// DesignAdvisor over this deployment's corpus.
  advisor::DesignAdvisor MakeDesignAdvisor(
      advisor::DesignAdvisorOptions options = {}) const;

  /// §4.4 flexible querying: parses `user_query_text` (datalog syntax),
  /// repairs unknown relation names against this deployment's stored
  /// relations using the domain synonym table, evaluates the best
  /// repair. The suggestion used is written to `*used` when non-null.
  Result<std::vector<storage::Row>> QueryFlexibly(
      const std::string& user_query_text,
      advisor::QuerySuggestion* used = nullptr) const;

  /// The deployment-wide synonym table (university defaults, including
  /// the inter-language entries).
  const text::SynonymTable& synonyms() const { return synonyms_; }

 private:
  std::string org_;
  mangrove::MangroveSchema schema_;
  text::SynonymTable synonyms_;
  rdf::TripleStore repository_;
  mangrove::AnnotationTool annotator_;
  mangrove::Publisher publisher_;
  piazza::PdmsNetwork pdms_;
  corpus::Corpus corpus_;
};

}  // namespace revere::core

#endif  // REVERE_CORE_REVERE_H_
