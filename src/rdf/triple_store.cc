#include "src/rdf/triple_store.h"

#include <unordered_set>

namespace revere::rdf {

namespace {
constexpr size_t kSubject = 0;
constexpr size_t kPredicate = 1;
constexpr size_t kObject = 2;
constexpr size_t kSource = 3;

Triple RowToTriple(const storage::Row& row) {
  return Triple{row[kSubject].as_string(), row[kPredicate].as_string(),
                row[kObject].as_string(), row[kSource].as_string()};
}
}  // namespace

TripleStore::TripleStore()
    : table_(std::make_unique<storage::Table>(storage::TableSchema::AllStrings(
          "triples", {"subject", "predicate", "object", "source"}))) {
  // Index every matchable position; Match() picks the most selective.
  (void)table_->CreateIndex(kSubject);
  (void)table_->CreateIndex(kPredicate);
  (void)table_->CreateIndex(kObject);
  (void)table_->CreateIndex(kSource);
}

Status TripleStore::Add(const Triple& triple) {
  return table_->Insert({storage::Value(triple.subject),
                        storage::Value(triple.predicate),
                        storage::Value(triple.object),
                        storage::Value(triple.source)});
}

Status TripleStore::Add(const std::string& subject,
                        const std::string& predicate,
                        const std::string& object,
                        const std::string& source) {
  return Add(Triple{subject, predicate, object, source});
}

size_t TripleStore::RemoveSource(const std::string& source) {
  return table_->DeleteWhere(kSource, storage::Value(source));
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  // Pick the first bound position as the index probe (subject tends to be
  // most selective, then object, then predicate).
  std::optional<size_t> probe_col;
  std::string probe_key;
  if (pattern.subject) {
    probe_col = kSubject;
    probe_key = *pattern.subject;
  } else if (pattern.object) {
    probe_col = kObject;
    probe_key = *pattern.object;
  } else if (pattern.predicate) {
    probe_col = kPredicate;
    probe_key = *pattern.predicate;
  }

  auto matches = [&](const storage::Row& row) {
    if (pattern.subject && row[kSubject].as_string() != *pattern.subject)
      return false;
    if (pattern.predicate &&
        row[kPredicate].as_string() != *pattern.predicate)
      return false;
    if (pattern.object && row[kObject].as_string() != *pattern.object)
      return false;
    return true;
  };

  // One pinned snapshot per Match call: probe indices and row reads
  // come from the same immutable version even while triples are added
  // or a source is retracted concurrently.
  auto snap = table_->Snapshot();
  if (probe_col) {
    for (size_t idx :
         snap->LookupIndices(*probe_col, storage::Value(probe_key))) {
      const storage::Row& row = snap->row(idx);
      if (matches(row)) out.push_back(RowToTriple(row));
    }
  } else {
    for (size_t r = 0; r < snap->size(); ++r) {
      const storage::Row& row = snap->row(r);
      if (matches(row)) out.push_back(RowToTriple(row));
    }
  }
  return out;
}

std::vector<std::string> TripleStore::SubjectsWithPredicate(
    const std::string& predicate) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& t : Match({std::nullopt, predicate, std::nullopt})) {
    if (seen.insert(t.subject).second) out.push_back(t.subject);
  }
  return out;
}

std::optional<std::string> TripleStore::ObjectOf(
    const std::string& subject, const std::string& predicate) const {
  auto matches = Match({subject, predicate, std::nullopt});
  if (matches.empty()) return std::nullopt;
  return matches.front().object;
}

std::vector<std::string> TripleStore::ObjectsOf(
    const std::string& subject, const std::string& predicate) const {
  std::vector<std::string> out;
  for (const auto& t : Match({subject, predicate, std::nullopt})) {
    out.push_back(t.object);
  }
  return out;
}

}  // namespace revere::rdf
