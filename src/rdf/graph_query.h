#ifndef REVERE_RDF_GRAPH_QUERY_H_
#define REVERE_RDF_GRAPH_QUERY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/rdf/triple_store.h"

namespace revere::rdf {

/// A position in a graph pattern: either a constant or a variable.
/// Variables are written with a leading '?', e.g. "?course".
struct Term {
  bool is_variable = false;
  std::string text;

  /// Parses "?x" into a variable, anything else into a constant.
  static Term Parse(std::string_view s);
  static Term Var(std::string name) { return Term{true, std::move(name)}; }
  static Term Const(std::string value) {
    return Term{false, std::move(value)};
  }
};

/// One pattern in a basic graph pattern (BGP) query.
struct QueryTriple {
  Term subject;
  Term predicate;
  Term object;
};

/// Variable bindings produced by query evaluation.
using Binding = std::map<std::string, std::string>;

/// An RDF-style conjunctive query over the triple store — our analogue
/// of the Jena/RDQL queries MANGROVE poses (§2.2). Patterns share
/// variables; evaluation joins them.
class GraphQuery {
 public:
  GraphQuery() = default;

  /// Adds a pattern from three terms, each parsed with Term::Parse.
  GraphQuery& Where(std::string_view s, std::string_view p,
                    std::string_view o);

  /// Restricts output bindings to these variables (without '?'). Empty
  /// selection returns all variables.
  GraphQuery& Select(std::vector<std::string> variables);

  /// Evaluates against `store` via index-backed backtracking join. The
  /// pattern order is chosen greedily: at each step the pattern with the
  /// most positions bound (under current bindings) runs first.
  std::vector<Binding> Run(const TripleStore& store) const;

  const std::vector<QueryTriple>& patterns() const { return patterns_; }

 private:
  std::vector<QueryTriple> patterns_;
  std::vector<std::string> select_;
};

}  // namespace revere::rdf

#endif  // REVERE_RDF_GRAPH_QUERY_H_
