#ifndef REVERE_RDF_TRIPLE_STORE_H_
#define REVERE_RDF_TRIPLE_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/rdf/triple.h"
#include "src/storage/table.h"

namespace revere::rdf {

/// A triple pattern: each position is either a constant or a wildcard
/// (nullopt). Used by Match() and by graph queries.
struct TriplePattern {
  std::optional<std::string> subject;
  std::optional<std::string> predicate;
  std::optional<std::string> object;
};

/// The MANGROVE annotation repository (§2.2): triples stored "in a
/// relational database using a simple graph representation". Backed by a
/// storage::Table with hash indexes on subject, predicate, and object —
/// our stand-in for the paper's Jena-over-RDBMS stack.
class TripleStore {
 public:
  TripleStore();

  /// Adds one statement (duplicates allowed — dirty data is legal, §2.3).
  Status Add(const Triple& triple);
  Status Add(const std::string& subject, const std::string& predicate,
             const std::string& object, const std::string& source = "");

  /// Removes every triple published from `source`; returns count removed.
  /// This is how republishing a page replaces its previous annotations.
  size_t RemoveSource(const std::string& source);

  /// All triples matching `pattern` (wildcards match anything). Uses the
  /// most selective available index.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// All distinct subjects having `predicate` (convenience for apps).
  std::vector<std::string> SubjectsWithPredicate(
      const std::string& predicate) const;

  /// First object of (subject, predicate, ?), if any.
  std::optional<std::string> ObjectOf(const std::string& subject,
                                      const std::string& predicate) const;

  /// All objects of (subject, predicate, ?).
  std::vector<std::string> ObjectsOf(const std::string& subject,
                                     const std::string& predicate) const;

  size_t size() const { return table_->size(); }

  /// Underlying relation, exposed for the executor-level benchmarks.
  const storage::Table& table() const { return *table_; }

 private:
  /// By pointer so TripleStore stays movable: Table itself is pinned by
  /// address (MVCC snapshots key on it) and neither copies nor moves.
  std::unique_ptr<storage::Table> table_;
};

}  // namespace revere::rdf

#endif  // REVERE_RDF_TRIPLE_STORE_H_
