#include "src/rdf/graph_query.h"

#include <algorithm>

namespace revere::rdf {

Term Term::Parse(std::string_view s) {
  if (!s.empty() && s.front() == '?') {
    return Term{true, std::string(s.substr(1))};
  }
  return Term{false, std::string(s)};
}

GraphQuery& GraphQuery::Where(std::string_view s, std::string_view p,
                              std::string_view o) {
  patterns_.push_back(
      QueryTriple{Term::Parse(s), Term::Parse(p), Term::Parse(o)});
  return *this;
}

GraphQuery& GraphQuery::Select(std::vector<std::string> variables) {
  select_ = std::move(variables);
  return *this;
}

namespace {

// Resolves a term under bindings: returns a constant if the term is a
// constant or a bound variable, nullopt if it is an unbound variable.
std::optional<std::string> Resolve(const Term& t, const Binding& binding) {
  if (!t.is_variable) return t.text;
  auto it = binding.find(t.text);
  if (it != binding.end()) return it->second;
  return std::nullopt;
}

int BoundCount(const QueryTriple& p, const Binding& binding) {
  int n = 0;
  if (Resolve(p.subject, binding)) ++n;
  if (Resolve(p.predicate, binding)) ++n;
  if (Resolve(p.object, binding)) ++n;
  return n;
}

void Search(const TripleStore& store, std::vector<QueryTriple> remaining,
            const Binding& binding, std::vector<Binding>* out) {
  if (remaining.empty()) {
    out->push_back(binding);
    return;
  }
  // Greedy join ordering: most-bound pattern first (fewest matches).
  size_t best = 0;
  int best_bound = -1;
  for (size_t i = 0; i < remaining.size(); ++i) {
    int b = BoundCount(remaining[i], binding);
    if (b > best_bound) {
      best_bound = b;
      best = i;
    }
  }
  QueryTriple pat = remaining[best];
  remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));

  TriplePattern probe{Resolve(pat.subject, binding),
                      Resolve(pat.predicate, binding),
                      Resolve(pat.object, binding)};
  for (const Triple& t : store.Match(probe)) {
    Binding next = binding;
    bool ok = true;
    auto bind = [&](const Term& term, const std::string& value) {
      if (!term.is_variable) return;
      auto [it, inserted] = next.emplace(term.text, value);
      if (!inserted && it->second != value) ok = false;
    };
    bind(pat.subject, t.subject);
    if (ok) bind(pat.predicate, t.predicate);
    if (ok) bind(pat.object, t.object);
    if (ok) Search(store, remaining, next, out);
  }
}

}  // namespace

std::vector<Binding> GraphQuery::Run(const TripleStore& store) const {
  std::vector<Binding> all;
  Search(store, patterns_, Binding{}, &all);
  if (select_.empty()) return all;
  // Project to selected variables, de-duplicating.
  std::vector<Binding> projected;
  for (const auto& b : all) {
    Binding p;
    for (const auto& v : select_) {
      auto it = b.find(v);
      if (it != b.end()) p[v] = it->second;
    }
    if (std::find(projected.begin(), projected.end(), p) == projected.end()) {
      projected.push_back(std::move(p));
    }
  }
  return projected;
}

}  // namespace revere::rdf
