#ifndef REVERE_RDF_TRIPLE_H_
#define REVERE_RDF_TRIPLE_H_

#include <string>

namespace revere::rdf {

/// One (subject, predicate, object) statement plus its provenance: the
/// URL of the page the annotation came from. MANGROVE stores the source
/// URL with every fact (§2.3) so applications can scope or clean data by
/// origin.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;
  std::string source;  // URL of the publishing page; may be empty

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object && source == other.source;
  }

  std::string ToString() const {
    return "(" + subject + ", " + predicate + ", " + object + ")@" + source;
  }
};

}  // namespace revere::rdf

#endif  // REVERE_RDF_TRIPLE_H_
