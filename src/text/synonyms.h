#ifndef REVERE_TEXT_SYNONYMS_H_
#define REVERE_TEXT_SYNONYMS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace revere::text {

/// Groups of interchangeable terms. The paper's corpus statistics keep
/// variants "depending on whether we take into consideration word
/// stemming, synonym tables, inter-language dictionaries"; this is the
/// synonym-table substrate. Groups are symmetric and transitive: adding
/// {a,b} and {b,c} puts a,b,c in one group.
class SynonymTable {
 public:
  SynonymTable() = default;

  /// Declares all terms in `group` synonyms of one another. Terms are
  /// stored lower-cased.
  void AddGroup(const std::vector<std::string>& group);

  /// Canonical representative of `term`'s group (the lexicographically
  /// smallest member); `term` itself (lower-cased) when unknown.
  std::string Canonical(std::string_view term) const;

  /// True if `a` and `b` are in the same group (or equal ignoring case).
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// All members of `term`'s group, including itself. Singleton when
  /// unknown.
  std::vector<std::string> Group(std::string_view term) const;

  /// A table preloaded with common database/university-domain synonym
  /// groups (course/class/subject, instructor/teacher/professor/faculty,
  /// phone/telephone, ...), used as the default by corpus tools.
  static SynonymTable UniversityDomainDefaults();

  size_t group_count() const { return groups_.size(); }

 private:
  // term -> group id; groups_ holds members per id.
  std::unordered_map<std::string, size_t> term_to_group_;
  std::vector<std::vector<std::string>> groups_;
};

}  // namespace revere::text

#endif  // REVERE_TEXT_SYNONYMS_H_
