#include "src/text/stemmer.h"

#include <cstring>

namespace revere::text {

namespace {

// Implementation follows Porter's original description. `b` holds the
// word; k is the index of its last character.
class PorterContext {
 public:
  explicit PorterContext(std::string_view word) : b_(word) {
    k_ = static_cast<int>(b_.size()) - 1;
  }

  std::string Run() {
    if (k_ <= 1) return b_;  // words of length <= 2 are left alone
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_) + 1);
    return b_;
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measures the number of consonant sequences between 0 and j.
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<size_t>(j)] != b_[static_cast<size_t>(j - 1)])
      return false;
    return IsConsonant(j);
  }

  // cvc, where the second c is not w, x, or y.
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2))
      return false;
    char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool EndsWith(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ - len + 1), static_cast<size_t>(len),
                   s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    b_.resize(static_cast<size_t>(j_ + 1));
    b_.append(s);
    k_ = j_ + len;
  }

  void ReplaceIfM(const char* s) {
    if (Measure(j_) > 0) SetTo(s);
  }

  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (EndsWith("sses")) {
        k_ -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((EndsWith("ed") || EndsWith("ing")) && VowelInStem(j_)) {
      k_ = j_;
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = b_[static_cast<size_t>(k_)];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure(k_) == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && VowelInStem(j_)) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("ational")) { ReplaceIfM("ate"); break; }
        if (EndsWith("tional")) { ReplaceIfM("tion"); break; }
        break;
      case 'c':
        if (EndsWith("enci")) { ReplaceIfM("ence"); break; }
        if (EndsWith("anci")) { ReplaceIfM("ance"); break; }
        break;
      case 'e':
        if (EndsWith("izer")) { ReplaceIfM("ize"); break; }
        break;
      case 'l':
        if (EndsWith("bli")) { ReplaceIfM("ble"); break; }
        if (EndsWith("alli")) { ReplaceIfM("al"); break; }
        if (EndsWith("entli")) { ReplaceIfM("ent"); break; }
        if (EndsWith("eli")) { ReplaceIfM("e"); break; }
        if (EndsWith("ousli")) { ReplaceIfM("ous"); break; }
        break;
      case 'o':
        if (EndsWith("ization")) { ReplaceIfM("ize"); break; }
        if (EndsWith("ation")) { ReplaceIfM("ate"); break; }
        if (EndsWith("ator")) { ReplaceIfM("ate"); break; }
        break;
      case 's':
        if (EndsWith("alism")) { ReplaceIfM("al"); break; }
        if (EndsWith("iveness")) { ReplaceIfM("ive"); break; }
        if (EndsWith("fulness")) { ReplaceIfM("ful"); break; }
        if (EndsWith("ousness")) { ReplaceIfM("ous"); break; }
        break;
      case 't':
        if (EndsWith("aliti")) { ReplaceIfM("al"); break; }
        if (EndsWith("iviti")) { ReplaceIfM("ive"); break; }
        if (EndsWith("biliti")) { ReplaceIfM("ble"); break; }
        break;
      case 'g':
        if (EndsWith("logi")) { ReplaceIfM("log"); break; }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (EndsWith("icate")) { ReplaceIfM("ic"); break; }
        if (EndsWith("ative")) { ReplaceIfM(""); break; }
        if (EndsWith("alize")) { ReplaceIfM("al"); break; }
        break;
      case 'i':
        if (EndsWith("iciti")) { ReplaceIfM("ic"); break; }
        break;
      case 'l':
        if (EndsWith("ical")) { ReplaceIfM("ic"); break; }
        if (EndsWith("ful")) { ReplaceIfM(""); break; }
        break;
      case 's':
        if (EndsWith("ness")) { ReplaceIfM(""); break; }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("al")) break;
        return;
      case 'c':
        if (EndsWith("ance")) break;
        if (EndsWith("ence")) break;
        return;
      case 'e':
        if (EndsWith("er")) break;
        return;
      case 'i':
        if (EndsWith("ic")) break;
        return;
      case 'l':
        if (EndsWith("able")) break;
        if (EndsWith("ible")) break;
        return;
      case 'n':
        if (EndsWith("ant")) break;
        if (EndsWith("ement")) break;
        if (EndsWith("ment")) break;
        if (EndsWith("ent")) break;
        return;
      case 'o':
        if (EndsWith("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (EndsWith("ou")) break;
        return;
      case 's':
        if (EndsWith("ism")) break;
        return;
      case 't':
        if (EndsWith("ate")) break;
        if (EndsWith("iti")) break;
        return;
      case 'u':
        if (EndsWith("ous")) break;
        return;
      case 'v':
        if (EndsWith("ive")) break;
        return;
      case 'z':
        if (EndsWith("ize")) break;
        return;
      default:
        return;
    }
    if (Measure(j_) > 1) k_ = j_;
  }

  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int a = Measure(k_);
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure(k_) > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_ = 0;
  int j_ = 0;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  return PorterContext(word).Run();
}

}  // namespace revere::text
