#ifndef REVERE_TEXT_STEMMER_H_
#define REVERE_TEXT_STEMMER_H_

#include <string>
#include <string_view>

namespace revere::text {

/// Porter stemming algorithm (Porter, 1980). Reduces English word forms
/// to a common stem so corpus statistics can fold "course"/"courses" and
/// "teaching"/"teaches" together — the exact U-WORLD trick the paper
/// imports into the S-WORLD. Input should be a lower-case token.
std::string PorterStem(std::string_view word);

}  // namespace revere::text

#endif  // REVERE_TEXT_STEMMER_H_
