#include "src/text/similarity.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/strings.h"
#include "src/text/stemmer.h"
#include "src/text/tokenizer.h"

namespace revere::text {

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double NGramSimilarity(std::string_view a, std::string_view b, size_t n) {
  auto grams = [n](std::string_view s) {
    std::vector<std::string> out;
    std::string padded = "^" + std::string(s) + "$";
    if (padded.size() < n) {
      out.push_back(padded);
      return out;
    }
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      out.push_back(padded.substr(i, n));
    }
    return out;
  };
  return JaccardSimilarity(grams(a), grams(b));
}

namespace {

std::vector<std::string> NormalizedTokens(std::string_view name,
                                          const NameSimilarityOptions& opts) {
  std::vector<std::string> tokens = TokenizeIdentifier(name);
  for (auto& t : tokens) {
    if (opts.use_synonyms && opts.synonyms != nullptr) {
      t = opts.synonyms->Canonical(t);
    }
    if (opts.use_stemming) t = PorterStem(t);
  }
  return tokens;
}

}  // namespace

namespace {

// Similarity of two normalized tokens: exact match, or a conservative
// abbreviation signal when one is a prefix of the other ("dept" ~
// "department", "instr" ~ "instructor").
double TokenSimilarity(const std::string& a, const std::string& b) {
  if (a == b) return 1.0;
  const std::string& shorter = a.size() <= b.size() ? a : b;
  const std::string& longer = a.size() <= b.size() ? b : a;
  if (shorter.size() < 3) return 0.0;
  // Truncation: "instr" ~ "instructor".
  if (longer.compare(0, shorter.size(), shorter) == 0) return 0.85;
  // Contraction: "dept" ~ "department" — the shorter token must start
  // the longer one and read as an in-order subsequence of it.
  if (shorter.front() == longer.front() &&
      shorter.size() * 3 >= longer.size()) {
    size_t j = 0;
    for (char c : longer) {
      if (j < shorter.size() && shorter[j] == c) ++j;
    }
    if (j == shorter.size()) return 0.75;
  }
  return 0.0;
}

// Soft token-set overlap: each side's tokens greedily claim their best
// counterpart; the two directional averages are averaged. Degenerates
// to Jaccard-like behavior on exact tokens while crediting
// abbreviations.
double SoftTokenOverlap(const std::vector<std::string>& ta,
                        const std::vector<std::string>& tb) {
  if (ta.empty() || tb.empty()) return ta.empty() && tb.empty() ? 1.0 : 0.0;
  auto directional = [](const std::vector<std::string>& from,
                        const std::vector<std::string>& to) {
    double sum = 0.0;
    for (const auto& x : from) {
      double best = 0.0;
      for (const auto& y : to) best = std::max(best, TokenSimilarity(x, y));
      sum += best;
    }
    return sum / static_cast<double>(from.size());
  };
  return 0.5 * (directional(ta, tb) + directional(tb, ta));
}

}  // namespace

double NameSimilarity(std::string_view a, std::string_view b,
                      const NameSimilarityOptions& opts) {
  if (EqualsIgnoreCase(a, b)) return 1.0;
  std::vector<std::string> ta = NormalizedTokens(a, opts);
  std::vector<std::string> tb = NormalizedTokens(b, opts);
  if (!ta.empty() && ta == tb) return 1.0;
  // Also compare raw (unstemmed) tokens: stemming can destroy the
  // prefix relationship abbreviations rely on ("dept" vs "depart").
  double token_sim =
      std::max(SoftTokenOverlap(ta, tb),
               SoftTokenOverlap(TokenizeIdentifier(a), TokenizeIdentifier(b)));
  double gram_sim = NGramSimilarity(ToLower(a), ToLower(b));
  // Token overlap dominates (it carries the synonym/stemming/
  // abbreviation signal); n-grams rescue spellings that tokenization
  // can't align.
  return std::max(0.7 * token_sim + 0.3 * gram_sim, gram_sim * 0.9);
}

}  // namespace revere::text
