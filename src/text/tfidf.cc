#include "src/text/tfidf.h"

#include <cmath>
#include <unordered_set>

namespace revere::text {

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->first < ib->first) {
      na += ia->second * ia->second;
      ++ia;
    } else if (ib->first < ia->first) {
      nb += ib->second * ib->second;
      ++ib;
    } else {
      dot += ia->second * ib->second;
      na += ia->second * ia->second;
      nb += ib->second * ib->second;
      ++ia;
      ++ib;
    }
  }
  for (; ia != a.end(); ++ia) na += ia->second * ia->second;
  for (; ib != b.end(); ++ib) nb += ib->second * ib->second;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void Normalize(SparseVector* v) {
  double norm = 0.0;
  for (const auto& [term, w] : *v) norm += w * w;
  if (norm == 0.0) return;
  norm = std::sqrt(norm);
  for (auto& [term, w] : *v) w /= norm;
}

SparseVector TermFrequency(const std::vector<std::string>& tokens) {
  SparseVector tf;
  for (const auto& t : tokens) tf[t] += 1.0;
  return tf;
}

void TfIdfModel::AddDocument(const std::vector<std::string>& tokens) {
  ++num_documents_;
  std::unordered_set<std::string> seen;
  for (const auto& t : tokens) {
    if (seen.insert(t).second) ++document_frequency_[t];
  }
}

double TfIdfModel::Idf(const std::string& term) const {
  auto it = document_frequency_.find(term);
  size_t df = it == document_frequency_.end() ? 0 : it->second;
  return std::log((1.0 + static_cast<double>(num_documents_)) /
                  (1.0 + static_cast<double>(df))) +
         1.0;
}

SparseVector TfIdfModel::Vectorize(
    const std::vector<std::string>& tokens) const {
  SparseVector v = TermFrequency(tokens);
  for (auto& [term, w] : v) w *= Idf(term);
  Normalize(&v);
  return v;
}

}  // namespace revere::text
