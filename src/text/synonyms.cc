#include "src/text/synonyms.h"

#include <algorithm>

#include "src/common/strings.h"

namespace revere::text {

void SynonymTable::AddGroup(const std::vector<std::string>& group) {
  if (group.empty()) return;
  // Find any existing group a member already belongs to; merge into it.
  size_t target = groups_.size();
  std::vector<std::string> lowered;
  lowered.reserve(group.size());
  for (const auto& t : group) lowered.push_back(ToLower(t));
  for (const auto& t : lowered) {
    auto it = term_to_group_.find(t);
    if (it != term_to_group_.end()) {
      target = it->second;
      break;
    }
  }
  if (target == groups_.size()) groups_.emplace_back();
  for (const auto& t : lowered) {
    auto it = term_to_group_.find(t);
    if (it == term_to_group_.end()) {
      term_to_group_[t] = target;
      groups_[target].push_back(t);
    } else if (it->second != target) {
      // Transitive merge: move the other group's members over.
      size_t old = it->second;
      for (const auto& member : groups_[old]) {
        term_to_group_[member] = target;
        groups_[target].push_back(member);
      }
      groups_[old].clear();
    }
  }
  std::sort(groups_[target].begin(), groups_[target].end());
  groups_[target].erase(
      std::unique(groups_[target].begin(), groups_[target].end()),
      groups_[target].end());
}

std::string SynonymTable::Canonical(std::string_view term) const {
  std::string lower = ToLower(term);
  auto it = term_to_group_.find(lower);
  if (it == term_to_group_.end() || groups_[it->second].empty()) return lower;
  return groups_[it->second].front();
}

bool SynonymTable::AreSynonyms(std::string_view a, std::string_view b) const {
  std::string la = ToLower(a), lb = ToLower(b);
  if (la == lb) return true;
  auto ia = term_to_group_.find(la);
  auto ib = term_to_group_.find(lb);
  return ia != term_to_group_.end() && ib != term_to_group_.end() &&
         ia->second == ib->second;
}

std::vector<std::string> SynonymTable::Group(std::string_view term) const {
  std::string lower = ToLower(term);
  auto it = term_to_group_.find(lower);
  if (it == term_to_group_.end()) return {lower};
  return groups_[it->second];
}

SynonymTable SynonymTable::UniversityDomainDefaults() {
  SynonymTable table;
  table.AddGroup({"course", "class", "subject"});
  table.AddGroup({"instructor", "teacher", "professor", "faculty", "lecturer"});
  table.AddGroup({"phone", "telephone", "tel"});
  table.AddGroup({"email", "mail", "e-mail"});
  table.AddGroup({"department", "dept", "division"});
  table.AddGroup({"enrollment", "size", "capacity", "seats"});
  table.AddGroup({"title", "name", "label"});
  table.AddGroup({"room", "location", "venue", "place"});
  table.AddGroup({"schedule", "timetable", "calendar"});
  table.AddGroup({"student", "pupil"});
  table.AddGroup({"grade", "mark", "score"});
  table.AddGroup({"assignment", "homework", "problem-set"});
  table.AddGroup({"paper", "publication", "article"});
  table.AddGroup({"ta", "assistant", "grader"});
  table.AddGroup({"prerequisite", "prereq", "requirement"});
  table.AddGroup({"semester", "term", "quarter"});
  table.AddGroup({"college", "school", "university"});
  table.AddGroup({"catalog", "catalogue", "listing"});
  table.AddGroup({"office", "bureau"});
  table.AddGroup({"textbook", "book", "text"});
  // Inter-language dictionary entries (§4.2.1 keeps statistics versions
  // under "inter-language dictionaries"; §3's example maps the
  // University of Rome's Italian-term schema).
  table.AddGroup({"course", "corso", "kurs", "cours"});
  table.AddGroup({"university", "universita", "universitaet", "universite"});
  table.AddGroup({"student", "studente", "etudiant"});
  table.AddGroup({"instructor", "docente", "dozent", "enseignant"});
  table.AddGroup({"title", "titolo", "titel", "titre"});
  return table;
}

}  // namespace revere::text
