#ifndef REVERE_TEXT_TFIDF_H_
#define REVERE_TEXT_TFIDF_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace revere::text {

/// Sparse term-weight vector (term -> weight). Ordered map so iteration
/// and merging are deterministic.
using SparseVector = std::map<std::string, double>;

/// Cosine similarity between two sparse vectors; 0 when either is empty.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// L2-normalizes `v` in place (no-op on the zero vector).
void Normalize(SparseVector* v);

/// Raw term-frequency vector of `tokens`.
SparseVector TermFrequency(const std::vector<std::string>& tokens);

/// The paper's motivating U-WORLD statistic (§4): TF/IDF over a corpus
/// of documents. Documents are added as token vectors; Vectorize() then
/// weighs a document by tf * log(N / df).
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Adds one document's tokens to the corpus (updates df counts).
  void AddDocument(const std::vector<std::string>& tokens);

  /// tf-idf weighted, L2-normalized vector for `tokens` under the
  /// current corpus statistics. Unknown terms get df=0 -> smoothed idf.
  SparseVector Vectorize(const std::vector<std::string>& tokens) const;

  /// Inverse document frequency of `term` with add-one smoothing.
  double Idf(const std::string& term) const;

  size_t document_count() const { return num_documents_; }
  size_t vocabulary_size() const { return document_frequency_.size(); }

 private:
  size_t num_documents_ = 0;
  std::unordered_map<std::string, size_t> document_frequency_;
};

}  // namespace revere::text

#endif  // REVERE_TEXT_TFIDF_H_
