#include "src/text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace revere::text {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::vector<std::string> TokenizeText(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (IsWordChar(c)) {
      cur.push_back(LowerChar(c));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

std::vector<std::string> TokenizeIdentifier(std::string_view name) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    unsigned char uc = static_cast<unsigned char>(c);
    if (!IsWordChar(c)) {
      flush();  // separator (underscore, dash, dot, space, ...)
      continue;
    }
    bool is_upper = std::isupper(uc) != 0;
    bool is_digit = std::isdigit(uc) != 0;
    if (!cur.empty()) {
      unsigned char prev = static_cast<unsigned char>(name[i - 1]);
      bool prev_digit = std::isdigit(prev) != 0;
      bool prev_lower = std::islower(prev) != 0;
      bool prev_upper = std::isupper(prev) != 0;
      // Boundaries: lower->Upper (camelCase), letter<->digit, and
      // UPPERCase run ending before a lower ("XMLFile" -> "xml","file").
      bool boundary = false;
      if (is_upper && prev_lower) boundary = true;
      if (is_digit != prev_digit) boundary = true;
      if (!is_digit && !is_upper && prev_upper && i + 0 < name.size()) {
        // prev was upper, current lower: if the run before prev was also
        // upper, prev starts this token ("XMLFile": boundary before 'F').
        if (i >= 2 &&
            std::isupper(static_cast<unsigned char>(name[i - 2])) != 0) {
          // Move prev from cur into a new token.
          char moved = cur.back();
          cur.pop_back();
          flush();
          cur.push_back(moved);
        }
      }
      if (boundary) flush();
    }
    cur.push_back(LowerChar(c));
  }
  flush();
  return tokens;
}

bool IsStopword(std::string_view token) {
  static const std::unordered_set<std::string_view> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
      "for",  "from", "has",  "he",   "in",   "is",   "it",   "its",
      "of",   "on",   "or",   "that", "the",  "to",   "was",  "were",
      "will", "with", "this", "these", "those", "their", "which"};
  return kStopwords.count(token) > 0;
}

std::vector<std::string> ContentTokens(std::string_view text) {
  std::vector<std::string> all = TokenizeText(text);
  std::vector<std::string> out;
  out.reserve(all.size());
  for (auto& t : all) {
    if (!IsStopword(t)) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace revere::text
