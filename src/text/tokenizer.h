#ifndef REVERE_TEXT_TOKENIZER_H_
#define REVERE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace revere::text {

/// Splits free-running text into lower-cased word tokens (letters and
/// digits; everything else is a separator).
std::vector<std::string> TokenizeText(std::string_view text);

/// Splits a schema identifier into lower-cased word tokens, handling the
/// conventions found in real schemas: camelCase, PascalCase, snake_case,
/// dash-case, dotted.names, and digit boundaries. E.g.
/// "courseTitle_v2" -> {"course", "title", "v", "2"}.
std::vector<std::string> TokenizeIdentifier(std::string_view name);

/// True for common English stopwords ("the", "of", ...), used when
/// computing corpus statistics over data values.
bool IsStopword(std::string_view token);

/// TokenizeText minus stopwords.
std::vector<std::string> ContentTokens(std::string_view text);

}  // namespace revere::text

#endif  // REVERE_TEXT_TOKENIZER_H_
