#ifndef REVERE_TEXT_SIMILARITY_H_
#define REVERE_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/text/synonyms.h"

namespace revere::text {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// 1 - EditDistance/max(|a|,|b|); 1.0 for two empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of two token multiset *supports* (set semantics).
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Character n-gram (default trigram) Jaccard similarity, robust to
/// abbreviation and truncation ("enroll" vs "enrollment").
double NGramSimilarity(std::string_view a, std::string_view b, size_t n = 3);

/// Options controlling NameSimilarity's normalization pipeline —
/// these are exactly the "versions" of statistics the paper keeps
/// (stemming on/off, synonyms on/off).
struct NameSimilarityOptions {
  bool use_stemming = true;
  bool use_synonyms = true;
  const SynonymTable* synonyms = nullptr;  // nullptr -> no table
};

/// Composite similarity between two schema identifiers: tokenizes each
/// (camelCase/snake_case aware), normalizes tokens (stemming, synonym
/// canonicalization), then combines token-set Jaccard with whole-string
/// n-gram similarity. Returns a score in [0, 1].
double NameSimilarity(std::string_view a, std::string_view b,
                      const NameSimilarityOptions& opts = {});

}  // namespace revere::text

#endif  // REVERE_TEXT_SIMILARITY_H_
