#include "src/mangrove/annotator.h"

#include "src/html/annotation.h"

namespace revere::mangrove {

Result<std::string> AnnotationTool::Annotate(
    std::string_view html_source, const FieldAnnotation& field) const {
  if (!schema_->IsValidTag(field.tag)) {
    return Status::InvalidArgument("tag '" + field.tag +
                                   "' is not in schema '" + schema_->name() +
                                   "'");
  }
  return html::AnnotateFirst(html_source, field.text, field.tag);
}

Result<std::string> AnnotationTool::AnnotateConcept(
    std::string_view html_source, const ConceptAnnotation& request,
    std::vector<std::string>* missing) const {
  if (schema_->FindConcept(request.concept_tag) == nullptr) {
    return Status::InvalidArgument("concept '" + request.concept_tag +
                                   "' is not in schema '" + schema_->name() +
                                   "'");
  }
  for (const auto& f : request.fields) {
    auto [c, p] = MangroveSchema::SplitTag(f.tag);
    if (!c.empty() && c != request.concept_tag) {
      return Status::InvalidArgument("field tag '" + f.tag +
                                     "' does not belong to concept '" +
                                     request.concept_tag + "'");
    }
    if (!schema_->IsValidTag(request.concept_tag + "." + p)) {
      return Status::InvalidArgument("no property '" + p + "' on concept '" +
                                     request.concept_tag + "'");
    }
  }
  // Locate the concept region first, then mark the fields strictly
  // inside it — this guarantees properly nested spans even when a field
  // sits exactly at the region boundary.
  std::string page(html_source);
  size_t start = html::FindTextOccurrence(page, request.region_start);
  if (start == std::string::npos) {
    return Status::NotFound("region start '" + request.region_start +
                            "' not found in page");
  }
  size_t end_pos = html::FindTextOccurrence(
      page, request.region_end, start + request.region_start.size());
  if (end_pos == std::string::npos) {
    return Status::NotFound("region end '" + request.region_end +
                            "' not found after start");
  }
  size_t stop = end_pos + request.region_end.size();

  for (const auto& f : request.fields) {
    auto [c, p] = MangroveSchema::SplitTag(f.tag);
    size_t pos = html::FindTextOccurrence(page, f.text, start);
    if (pos == std::string::npos || pos + f.text.size() > stop) {
      if (missing != nullptr) missing->push_back(f.text);
      continue;
    }
    REVERE_ASSIGN_OR_RETURN(page,
                            html::WrapSpan(page, pos, pos + f.text.size(), p));
    // The inserted open tag + "</span>" shift the region end.
    stop += html::SpanOpenTag(p).size() + 7;
  }
  REVERE_ASSIGN_OR_RETURN(page, html::WrapSpan(page, start, stop,
                                               request.concept_tag,
                                               request.id));
  return page;
}

}  // namespace revere::mangrove
