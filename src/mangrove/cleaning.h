#ifndef REVERE_MANGROVE_CLEANING_H_
#define REVERE_MANGROVE_CLEANING_H_

#include <optional>
#include <string>
#include <vector>

#include "src/mangrove/schema.h"
#include "src/rdf/triple_store.h"

namespace revere::mangrove {

/// How an application resolves conflicting values for a single-valued
/// property (§2.3: "The burden of cleaning up the data is passed to the
/// application using the data").
enum class ConflictResolution {
  /// Take whatever value comes first (cheapest, tolerates dirt).
  kAny,
  /// Majority vote over distinct values; ties go to the first seen.
  kMajority,
  /// Only accept values published from a source whose URL starts with
  /// `trusted_source_prefix` — the paper's "extract a phone number from
  /// the faculty's web space, rather than anywhere on the web".
  kTrustedSourceOnly,
  /// Refuse: return nothing when values conflict (strictest).
  kRejectConflicts,
};

/// Application-level cleaning configuration.
struct CleaningPolicy {
  ConflictResolution resolution = ConflictResolution::kAny;
  std::string trusted_source_prefix;  // used by kTrustedSourceOnly
};

/// Resolves the value of (subject, predicate) under `policy`. Returns
/// nullopt when no acceptable value exists.
std::optional<std::string> ResolveValue(const rdf::TripleStore& store,
                                        const std::string& subject,
                                        const std::string& predicate,
                                        const CleaningPolicy& policy);

/// One detected inconsistency: a single-valued property with multiple
/// distinct values.
struct Inconsistency {
  std::string subject;
  std::string predicate;
  std::vector<std::string> values;
  std::vector<std::string> sources;  // who to notify (§2.3)
};

/// The proactive checker the paper suggests: "build special applications
/// whose goal is to proactively find inconsistencies in the database and
/// notify the relevant authors." Scans the store for violations of the
/// schema's single-valued properties.
std::vector<Inconsistency> FindInconsistencies(const rdf::TripleStore& store,
                                               const MangroveSchema& schema);

}  // namespace revere::mangrove

#endif  // REVERE_MANGROVE_CLEANING_H_
