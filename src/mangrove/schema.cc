#include "src/mangrove/schema.h"

namespace revere::mangrove {

const Property* Concept::FindProperty(std::string_view prop) const {
  for (const auto& p : properties) {
    if (p.name == prop) return &p;
  }
  return nullptr;
}

Status MangroveSchema::AddConcept(Concept concept_def) {
  if (FindConcept(concept_def.name) != nullptr) {
    return Status::AlreadyExists("concept '" + concept_def.name +
                                 "' already in schema");
  }
  concepts_.push_back(std::move(concept_def));
  return Status::Ok();
}

const Concept* MangroveSchema::FindConcept(std::string_view concept_name) const {
  for (const auto& c : concepts_) {
    if (c.name == concept_name) return &c;
  }
  return nullptr;
}

std::pair<std::string, std::string> MangroveSchema::SplitTag(
    std::string_view tag) {
  size_t dot = tag.find('.');
  if (dot == std::string_view::npos) {
    return {"", std::string(tag)};
  }
  return {std::string(tag.substr(0, dot)), std::string(tag.substr(dot + 1))};
}

bool MangroveSchema::IsValidTag(std::string_view tag) const {
  auto [concept_name, prop] = SplitTag(tag);
  if (!concept_name.empty()) {
    const Concept* c = FindConcept(concept_name);
    return c != nullptr && c->FindProperty(prop) != nullptr;
  }
  if (FindConcept(prop) != nullptr) return true;  // bare concept tag
  for (const auto& c : concepts_) {
    if (c.FindProperty(prop) != nullptr) return true;
  }
  return false;
}

std::vector<std::string> MangroveSchema::AllTags() const {
  std::vector<std::string> tags;
  for (const auto& c : concepts_) {
    tags.push_back(c.name);
    for (const auto& p : c.properties) {
      tags.push_back(c.name + "." + p.name);
    }
  }
  return tags;
}

MangroveSchema MangroveSchema::UniversityDefaults() {
  MangroveSchema schema("university");
  (void)schema.AddConcept(Concept{
      "course",
      {{"title", false},
       {"number", true},
       {"instructor", false},
       {"time", true},
       {"room", true},
       {"textbook", false},
       {"description", false}}});
  (void)schema.AddConcept(Concept{"person",
                                  {{"name", false},
                                   {"email", true},
                                   {"phone", true},
                                   {"office", true},
                                   {"position", false}}});
  (void)schema.AddConcept(Concept{
      "publication",
      {{"title", false}, {"author", false}, {"year", true}, {"venue", false}}});
  (void)schema.AddConcept(Concept{
      "talk", {{"title", false}, {"speaker", false}, {"time", true},
               {"room", true}}});
  return schema;
}

}  // namespace revere::mangrove
