#ifndef REVERE_MANGROVE_EXPORT_H_
#define REVERE_MANGROVE_EXPORT_H_

#include <string>

#include "src/common/status.h"
#include "src/mangrove/cleaning.h"
#include "src/mangrove/schema.h"
#include "src/rdf/triple_store.h"
#include "src/storage/table.h"

namespace revere::mangrove {

/// Materializes one concept from an annotation repository into a
/// relational table — the bridge from MANGROVE's web of annotations to
/// Piazza's stored relations. `out`'s schema must be
/// (subject, prop1, ..., propK) in the concept's property order; rows
/// are resolved under `policy` and appended (call out->Clear() first
/// for replace semantics). Returns the number of instances exported.
Result<size_t> MaterializeConcept(const rdf::TripleStore& store,
                                  const MangroveSchema& schema,
                                  const std::string& concept_name,
                                  const CleaningPolicy& policy,
                                  storage::Table* out);

/// The table schema MaterializeConcept expects for `concept_name`,
/// under the given relation name.
Result<storage::TableSchema> ConceptTableSchema(
    const MangroveSchema& schema, const std::string& concept_name,
    const std::string& table_name);

}  // namespace revere::mangrove

#endif  // REVERE_MANGROVE_EXPORT_H_
