#include "src/mangrove/export.h"

#include "src/mangrove/publisher.h"

namespace revere::mangrove {

Result<storage::TableSchema> ConceptTableSchema(
    const MangroveSchema& schema, const std::string& concept_name,
    const std::string& table_name) {
  const Concept* concept_def = schema.FindConcept(concept_name);
  if (concept_def == nullptr) {
    return Status::NotFound("no concept '" + concept_name + "' in schema");
  }
  std::vector<std::string> columns{"subject"};
  for (const auto& p : concept_def->properties) columns.push_back(p.name);
  return storage::TableSchema::AllStrings(table_name, columns);
}

Result<size_t> MaterializeConcept(const rdf::TripleStore& store,
                                  const MangroveSchema& schema,
                                  const std::string& concept_name,
                                  const CleaningPolicy& policy,
                                  storage::Table* out) {
  const Concept* concept_def = schema.FindConcept(concept_name);
  if (concept_def == nullptr) {
    return Status::NotFound("no concept '" + concept_name + "' in schema");
  }
  if (out->schema().arity() != concept_def->properties.size() + 1) {
    return Status::InvalidArgument(
        "table arity does not match concept '" + concept_name + "'");
  }
  size_t exported = 0;
  for (const auto& triple :
       store.Match({std::nullopt, kTypePredicate, concept_name})) {
    storage::Row row{storage::Value(triple.subject)};
    for (const auto& p : concept_def->properties) {
      auto value = ResolveValue(store, triple.subject, p.name, policy);
      row.push_back(storage::Value(value.value_or("")));
    }
    REVERE_RETURN_IF_ERROR(out->Insert(std::move(row)));
    ++exported;
  }
  return exported;
}

}  // namespace revere::mangrove
