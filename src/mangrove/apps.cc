#include "src/mangrove/apps.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/mangrove/publisher.h"
#include "src/text/tokenizer.h"

namespace revere::mangrove {

namespace {

// Subjects typed as `concept_name`.
std::vector<std::string> InstancesOf(const rdf::TripleStore& store,
                                     const std::string& concept_name) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& t :
       store.Match({std::nullopt, kTypePredicate, concept_name})) {
    if (seen.insert(t.subject).second) out.push_back(t.subject);
  }
  return out;
}

std::string Get(const rdf::TripleStore& store, const std::string& subject,
                const std::string& predicate, const CleaningPolicy& policy) {
  return ResolveValue(store, subject, predicate, policy).value_or("");
}

}  // namespace

std::vector<CalendarEntry> CourseCalendar::Refresh() const {
  std::vector<CalendarEntry> out;
  for (const auto& course : InstancesOf(*store_, "course")) {
    CalendarEntry e;
    e.course = course;
    e.title = Get(*store_, course, "title", policy_);
    e.time = Get(*store_, course, "time", policy_);
    e.room = Get(*store_, course, "room", policy_);
    e.instructor = Get(*store_, course, "instructor", policy_);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const CalendarEntry& a, const CalendarEntry& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.course < b.course;
            });
  return out;
}

std::vector<DirectoryEntry> WhosWho::Refresh() const {
  std::vector<DirectoryEntry> out;
  for (const auto& person : InstancesOf(*store_, "person")) {
    DirectoryEntry e;
    e.person = person;
    e.name = Get(*store_, person, "name", policy_);
    e.email = Get(*store_, person, "email", policy_);
    e.phone = Get(*store_, person, "phone", policy_);
    e.office = Get(*store_, person, "office", policy_);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const DirectoryEntry& a, const DirectoryEntry& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<PublicationEntry> PublicationDatabase::Refresh() const {
  CleaningPolicy any;  // publications tolerate dirt: show first value
  std::vector<PublicationEntry> out;
  for (const auto& pub : InstancesOf(*store_, "publication")) {
    PublicationEntry e;
    e.id = pub;
    e.title = Get(*store_, pub, "title", any);
    e.author = Get(*store_, pub, "author", any);
    e.year = Get(*store_, pub, "year", any);
    e.venue = Get(*store_, pub, "venue", any);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const PublicationEntry& a, const PublicationEntry& b) {
              if (a.year != b.year) return a.year > b.year;  // newest first
              return a.title < b.title;
            });
  return out;
}

std::vector<PublicationEntry> PublicationDatabase::ByAuthor(
    const std::string& author_name) const {
  std::vector<PublicationEntry> out;
  for (const auto& e : Refresh()) {
    if (e.author.find(author_name) != std::string::npos) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<SearchHit> AnnotationSearch::Search(const std::string& keywords,
                                                size_t limit) const {
  std::vector<std::string> query_tokens = text::ContentTokens(keywords);
  if (query_tokens.empty()) return {};

  // Token -> number of triples containing it (for idf-style weighting).
  std::map<std::string, size_t> token_frequency;
  // Subject -> (token -> predicates it appeared under).
  std::map<std::string, std::map<std::string, std::set<std::string>>> hits;

  for (const auto& t : store_->Match({})) {
    for (const auto& tok : text::ContentTokens(t.object)) {
      ++token_frequency[tok];
      for (const auto& q : query_tokens) {
        if (tok == q) hits[t.subject][q].insert(t.predicate);
      }
    }
  }

  std::vector<SearchHit> out;
  double total = static_cast<double>(std::max<size_t>(store_->size(), 1));
  for (const auto& [subject, token_hits] : hits) {
    SearchHit hit;
    hit.subject = subject;
    std::set<std::string> preds;
    for (const auto& [tok, pred_set] : token_hits) {
      double idf =
          std::log(total / (1.0 + static_cast<double>(token_frequency[tok])))
          + 1.0;
      hit.score += idf;
      preds.insert(pred_set.begin(), pred_set.end());
    }
    // Favor resources matching more distinct query tokens.
    hit.score *= static_cast<double>(token_hits.size()) /
                 static_cast<double>(query_tokens.size());
    hit.matched_predicates.assign(preds.begin(), preds.end());
    out.push_back(std::move(hit));
  }
  std::sort(out.begin(), out.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.subject < b.subject;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::string RenderDepartmentSummary(const rdf::TripleStore& store,
                                    const CleaningPolicy& policy,
                                    const std::string& department_name) {
  auto esc = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '&':
          out += "&amp;";
          break;
        case '<':
          out += "&lt;";
          break;
        case '>':
          out += "&gt;";
          break;
        default:
          out.push_back(c);
      }
    }
    return out;
  };

  std::string html = "<html><head><title>" + esc(department_name) +
                     " — Course Summary</title></head><body>";
  html += "<h1>" + esc(department_name) + "</h1>";

  html += "<h2>Schedule</h2><table>";
  CourseCalendar calendar(&store, policy);
  for (const auto& e : calendar.Refresh()) {
    html += "<tr><td><span m=\"course\" m-id=\"" + esc(e.course) + "\">";
    html += "<span m=\"title\">" + esc(e.title) + "</span></span></td>";
    html += "<td>" + esc(e.time) + "</td><td>" + esc(e.room) + "</td>";
    html += "<td>" + esc(e.instructor) + "</td></tr>";
  }
  html += "</table>";

  html += "<h2>People</h2><ul>";
  WhosWho who(&store, policy);
  for (const auto& p : who.Refresh()) {
    html += "<li><span m=\"person\" m-id=\"" + esc(p.person) + "\">";
    html += "<span m=\"name\">" + esc(p.name) + "</span>";
    if (!p.phone.empty()) {
      html += " — <span m=\"phone\">" + esc(p.phone) + "</span>";
    }
    html += "</span></li>";
  }
  html += "</ul>";

  html += "<h2>Recent publications</h2><ol>";
  PublicationDatabase pubs(&store);
  for (const auto& pub : pubs.Refresh()) {
    html += "<li>" + esc(pub.title) + " (" + esc(pub.venue) + " " +
            esc(pub.year) + ")</li>";
  }
  html += "</ol></body></html>";
  return html;
}

}  // namespace revere::mangrove
