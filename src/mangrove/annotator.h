#ifndef REVERE_MANGROVE_ANNOTATOR_H_
#define REVERE_MANGROVE_ANNOTATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/mangrove/schema.h"

namespace revere::mangrove {

/// One highlight-and-tag gesture: wrap the page text `text` with the
/// schema tag `tag` ("title" or "course.title").
struct FieldAnnotation {
  std::string tag;
  std::string text;
};

/// A whole concept block: the region between `region_start` and
/// `region_end` becomes the concept resource; the listed fields inside
/// it become its properties.
struct ConceptAnnotation {
  std::string concept_tag;  // e.g. "course"
  std::string id;           // optional explicit resource id
  std::string region_start;
  std::string region_end;
  std::vector<FieldAnnotation> fields;
};

/// The programmatic analogue of MANGROVE's graphical annotation tool
/// (§2.1): "Users highlight portions of the HTML document, then annotate
/// by choosing a corresponding tag name from the schema." It validates
/// each requested tag against the schema before touching the page, and
/// edits the page *in place* — the data is never copied out.
class AnnotationTool {
 public:
  explicit AnnotationTool(const MangroveSchema* schema) : schema_(schema) {}

  /// Tags one text occurrence. InvalidArgument when the tag is not in
  /// the schema; NotFound when the text is absent.
  Result<std::string> Annotate(std::string_view html_source,
                               const FieldAnnotation& field) const;

  /// Tags a concept block and its fields. Fields whose text cannot be
  /// found inside the page are reported in `*missing` (annotation is
  /// best-effort, like a human skipping a field).
  Result<std::string> AnnotateConcept(std::string_view html_source,
                                      const ConceptAnnotation& request,
                                      std::vector<std::string>* missing =
                                          nullptr) const;

  const MangroveSchema& schema() const { return *schema_; }

 private:
  const MangroveSchema* schema_;
};

}  // namespace revere::mangrove

#endif  // REVERE_MANGROVE_ANNOTATOR_H_
