#include "src/mangrove/publisher.h"

#include <memory>

#include "src/common/strings.h"
#include "src/html/annotation.h"
#include "src/html/parser.h"
#include "src/xml/node.h"

namespace revere::mangrove {

namespace {

struct ExtractionContext {
  const MangroveSchema* schema;
  rdf::TripleStore* repository;
  const std::string* url;
  PublishReceipt* receipt;
  int concept_counter = 0;
  // Page-level property annotations are buffered: if the page declares
  // exactly one concept instance, they attach to it (a page is usually
  // *about* its one entity); otherwise they attach to the page URL.
  std::vector<rdf::Triple> page_level;
  std::vector<std::pair<std::string, std::string>> instances;  // (subj, type)
};

// Extracts property annotations beneath `node`, attached to `subject`.
// Stops descending when hitting a nested concept region (which owns its
// own properties).
void ExtractProperties(const xml::XmlNode& node, const std::string& subject,
                       const std::string& concept_name,
                       ExtractionContext* ctx);

// Handles one concept region rooted at `node`.
void ExtractConcept(const xml::XmlNode& node, const std::string& tag,
                    const std::string& id, ExtractionContext* ctx) {
  std::string subject =
      !id.empty() ? id
                  : *ctx->url + "#" + tag +
                        std::to_string(ctx->concept_counter++);
  (void)ctx->repository->Add(subject, kTypePredicate, tag, *ctx->url);
  ++ctx->receipt->triples_added;
  ctx->instances.emplace_back(subject, tag);
  ExtractProperties(node, subject, tag, ctx);
}

void ExtractProperties(const xml::XmlNode& node, const std::string& subject,
                       const std::string& concept_name,
                       ExtractionContext* ctx) {
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    auto tag_attr = child->GetAttribute(html::kTagAttr);
    if (tag_attr.has_value() && !tag_attr->empty()) {
      auto [tag_concept, prop] = MangroveSchema::SplitTag(*tag_attr);
      const Concept* as_concept = ctx->schema->FindConcept(*tag_attr);
      if (as_concept != nullptr) {
        // Nested concept region: recurse with a new subject.
        ExtractConcept(*child,
                       std::string(*tag_attr),
                       child->GetAttribute(html::kIdAttr).value_or(""), ctx);
        continue;
      }
      // Property annotation. Valid if it names a property of the
      // enclosing concept (dotted concept must agree when present).
      const Concept* owner = ctx->schema->FindConcept(concept_name);
      bool valid = owner != nullptr && owner->FindProperty(prop) != nullptr &&
                   (tag_concept.empty() || tag_concept == concept_name);
      if (valid) {
        std::string value(Trim(child->InnerText()));
        (void)ctx->repository->Add(subject, prop, value, *ctx->url);
        ++ctx->receipt->triples_added;
      } else {
        ++ctx->receipt->invalid_tags;
      }
      // Properties may contain further annotations (rare); keep walking
      // with the same subject.
      ExtractProperties(*child, subject, concept_name, ctx);
      continue;
    }
    ExtractProperties(*child, subject, concept_name, ctx);
  }
}

// Walks the page top-down looking for concept regions and stray
// page-level property annotations.
void ExtractTopLevel(const xml::XmlNode& node, ExtractionContext* ctx) {
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    auto tag_attr = child->GetAttribute(html::kTagAttr);
    if (tag_attr.has_value() && !tag_attr->empty()) {
      if (ctx->schema->FindConcept(*tag_attr) != nullptr) {
        ExtractConcept(*child, *tag_attr,
                       child->GetAttribute(html::kIdAttr).value_or(""), ctx);
        continue;
      }
      auto [tag_concept, prop] = MangroveSchema::SplitTag(*tag_attr);
      if (ctx->schema->IsValidTag(*tag_attr)) {
        // Page-level property: buffered; final subject decided after the
        // whole page is seen.
        std::string value(Trim(child->InnerText()));
        ctx->page_level.push_back(
            rdf::Triple{*ctx->url, prop, value, *ctx->url});
      } else {
        ++ctx->receipt->invalid_tags;
      }
      ExtractTopLevel(*child, ctx);
      continue;
    }
    ExtractTopLevel(*child, ctx);
  }
}

}  // namespace

Result<PublishReceipt> Publisher::Publish(const std::string& url,
                                          std::string_view html_source) {
  REVERE_ASSIGN_OR_RETURN(std::unique_ptr<xml::XmlNode> doc,
                          html::ParseHtml(html_source));
  PublishReceipt receipt;
  // Republish semantics: this page's previous statements disappear
  // atomically with the new publish.
  receipt.triples_removed = repository_->RemoveSource(url);
  ExtractionContext ctx;
  ctx.schema = schema_;
  ctx.repository = repository_;
  ctx.url = &url;
  ctx.receipt = &receipt;
  ExtractTopLevel(*doc, &ctx);
  // Resolve buffered page-level properties (see ExtractionContext).
  const Concept* sole_concept =
      ctx.instances.size() == 1
          ? schema_->FindConcept(ctx.instances.front().second)
          : nullptr;
  for (auto& triple : ctx.page_level) {
    if (sole_concept != nullptr &&
        sole_concept->FindProperty(triple.predicate) != nullptr) {
      triple.subject = ctx.instances.front().first;
    }
    (void)repository_->Add(triple);
    ++receipt.triples_added;
  }
  receipt.publish_tick = ++tick_;
  return receipt;
}

}  // namespace revere::mangrove
