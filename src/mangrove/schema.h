#ifndef REVERE_MANGROVE_SCHEMA_H_
#define REVERE_MANGROVE_SCHEMA_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace revere::mangrove {

/// One property of a concept, e.g. course.title.
struct Property {
  std::string name;
  /// Applications may ask the cleaner to enforce single-valuedness for
  /// this property; MANGROVE itself never does at publish time (§2.3).
  bool single_valued = false;
};

/// A top-level concept (class) users can annotate, e.g. "course".
struct Concept {
  std::string name;
  std::vector<Property> properties;

  const Property* FindProperty(std::string_view prop) const;
};

/// A MANGROVE lightweight schema (§2.1): just standardized tag names and
/// their allowed nesting. Deliberately *not* a database schema — no keys,
/// no integrity constraints, no types. "Users are free to provide
/// partial, redundant, or conflicting information."
class MangroveSchema {
 public:
  MangroveSchema() = default;
  explicit MangroveSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a concept with its property list; AlreadyExists on duplicates.
  Status AddConcept(Concept concept_def);

  const Concept* FindConcept(std::string_view concept_name) const;
  const std::vector<Concept>& concepts() const { return concepts_; }

  /// True when `tag` is valid: a concept name ("course"), a property of
  /// some concept ("title"), or the dotted form ("course.title").
  bool IsValidTag(std::string_view tag) const;

  /// Splits "course.title" into (concept, property); a bare property
  /// yields an empty concept.
  static std::pair<std::string, std::string> SplitTag(std::string_view tag);

  /// All tag names users may choose from, for the annotation UI.
  std::vector<std::string> AllTags() const;

  /// The department-domain schema used throughout the paper's examples:
  /// course, person, publication, talk.
  static MangroveSchema UniversityDefaults();

 private:
  std::string name_;
  std::vector<Concept> concepts_;
};

}  // namespace revere::mangrove

#endif  // REVERE_MANGROVE_SCHEMA_H_
