#ifndef REVERE_MANGROVE_PUBLISHER_H_
#define REVERE_MANGROVE_PUBLISHER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/mangrove/schema.h"
#include "src/rdf/triple_store.h"

namespace revere::mangrove {

/// Result of publishing one page.
struct PublishReceipt {
  size_t triples_added = 0;
  size_t triples_removed = 0;   // stale triples from a previous publish
  size_t invalid_tags = 0;      // annotations whose tag is not in schema
  int64_t publish_tick = 0;     // logical time of visibility
};

/// MANGROVE's publish path (§2.2): when an author hits "publish", the
/// page's annotations are extracted and stored in the repository *at
/// that moment* — "the database is typically updated the moment a user
/// publishes new or revised content". This immediacy powers the instant
/// gratification applications.
///
/// Extraction semantics:
///   - an annotated element whose tag is a schema concept ("course")
///     becomes a resource; its subject is its m-id if given, else
///     "<url>#<concept><ordinal>",
///   - annotated elements nested inside it whose tag is a property
///     ("title" or "course.title") yield (subject, property, inner text),
///   - a property annotation outside any concept region attaches to the
///     page itself (subject = url),
///   - tags not in the schema are counted and skipped — never an error:
///     authors are free to publish anything (§2.3).
class Publisher {
 public:
  Publisher(const MangroveSchema* schema, rdf::TripleStore* repository)
      : schema_(schema), repository_(repository) {}

  /// Re-publishes `url` from its HTML source: removes the url's previous
  /// triples, extracts current annotations, inserts them.
  Result<PublishReceipt> Publish(const std::string& url,
                                 std::string_view html_source);

  /// Logical clock: increments on every publish. Applications compare
  /// their refresh tick against this to measure staleness.
  int64_t current_tick() const { return tick_; }

 private:
  const MangroveSchema* schema_;
  rdf::TripleStore* repository_;
  int64_t tick_ = 0;
};

/// The predicate used to type resources, e.g. ("x", kTypePredicate,
/// "course").
inline constexpr char kTypePredicate[] = "rdf:type";

}  // namespace revere::mangrove

#endif  // REVERE_MANGROVE_PUBLISHER_H_
