#include "src/mangrove/cleaning.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/mangrove/publisher.h"

namespace revere::mangrove {

std::optional<std::string> ResolveValue(const rdf::TripleStore& store,
                                        const std::string& subject,
                                        const std::string& predicate,
                                        const CleaningPolicy& policy) {
  std::vector<rdf::Triple> matches =
      store.Match({subject, predicate, std::nullopt});
  if (matches.empty()) return std::nullopt;
  switch (policy.resolution) {
    case ConflictResolution::kAny:
      return matches.front().object;
    case ConflictResolution::kMajority: {
      std::map<std::string, size_t> counts;
      std::vector<std::string> order;
      for (const auto& t : matches) {
        if (counts[t.object]++ == 0) order.push_back(t.object);
      }
      std::string best = order.front();
      for (const auto& v : order) {
        if (counts[v] > counts[best]) best = v;
      }
      return best;
    }
    case ConflictResolution::kTrustedSourceOnly: {
      for (const auto& t : matches) {
        if (StartsWith(t.source, policy.trusted_source_prefix)) {
          return t.object;
        }
      }
      return std::nullopt;
    }
    case ConflictResolution::kRejectConflicts: {
      std::set<std::string> distinct;
      for (const auto& t : matches) distinct.insert(t.object);
      if (distinct.size() == 1) return *distinct.begin();
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::vector<Inconsistency> FindInconsistencies(
    const rdf::TripleStore& store, const MangroveSchema& schema) {
  std::vector<Inconsistency> out;
  for (const auto& concept_def : schema.concepts()) {
    for (const auto& prop : concept_def.properties) {
      if (!prop.single_valued) continue;
      // For every typed instance of this concept, collect values.
      for (const auto& subject :
           store.SubjectsWithPredicate(kTypePredicate)) {
        bool is_instance = false;
        for (const auto& t :
             store.Match({subject, kTypePredicate, std::nullopt})) {
          if (t.object == concept_def.name) {
            is_instance = true;
            break;
          }
        }
        if (!is_instance) continue;
        std::set<std::string> values;
        std::set<std::string> sources;
        for (const auto& t :
             store.Match({subject, prop.name, std::nullopt})) {
          values.insert(t.object);
          sources.insert(t.source);
        }
        if (values.size() > 1) {
          out.push_back(Inconsistency{
              subject, prop.name,
              std::vector<std::string>(values.begin(), values.end()),
              std::vector<std::string>(sources.begin(), sources.end())});
        }
      }
    }
  }
  return out;
}

}  // namespace revere::mangrove
