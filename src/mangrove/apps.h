#ifndef REVERE_MANGROVE_APPS_H_
#define REVERE_MANGROVE_APPS_H_

#include <string>
#include <vector>

#include "src/mangrove/cleaning.h"
#include "src/rdf/triple_store.h"

namespace revere::mangrove {

/// The "instant gratification" applications (§2.2): they read the live
/// annotation repository, so a publish is visible on the very next
/// refresh — the feedback loop that motivates authors to annotate.
/// Each application chooses its own cleaning policy (§2.3).

/// One row of the department course calendar.
struct CalendarEntry {
  std::string course;      // resource id
  std::string title;
  std::string time;
  std::string room;
  std::string instructor;
};

/// Department-wide course schedule assembled from everyone's pages.
class CourseCalendar {
 public:
  CourseCalendar(const rdf::TripleStore* store, CleaningPolicy policy)
      : store_(store), policy_(std::move(policy)) {}

  /// Recomputes the calendar from the current repository state. Sorted
  /// by (time, course id) for stable display.
  std::vector<CalendarEntry> Refresh() const;

 private:
  const rdf::TripleStore* store_;
  CleaningPolicy policy_;
};

/// One entry of the department "Who's Who".
struct DirectoryEntry {
  std::string person;
  std::string name;
  std::string email;
  std::string phone;
  std::string office;
};

/// The Who's Who / phone directory application.
class WhosWho {
 public:
  WhosWho(const rdf::TripleStore* store, CleaningPolicy policy)
      : store_(store), policy_(std::move(policy)) {}

  std::vector<DirectoryEntry> Refresh() const;

 private:
  const rdf::TripleStore* store_;
  CleaningPolicy policy_;
};

/// One publication record.
struct PublicationEntry {
  std::string id;
  std::string title;
  std::string author;
  std::string year;
  std::string venue;
};

/// The departmental paper database.
class PublicationDatabase {
 public:
  explicit PublicationDatabase(const rdf::TripleStore* store)
      : store_(store) {}

  /// All publications, newest year first.
  std::vector<PublicationEntry> Refresh() const;
  /// Publications whose author field contains `author_name`.
  std::vector<PublicationEntry> ByAuthor(const std::string& author_name) const;

 private:
  const rdf::TripleStore* store_;
};

/// A ranked structured-search hit.
struct SearchHit {
  std::string subject;
  double score = 0.0;
  std::vector<std::string> matched_predicates;
};

/// The annotation-enabled search engine: keyword search over annotated
/// values, ranked by how many query tokens a resource's properties
/// cover (weighted by inverse frequency over the store).
class AnnotationSearch {
 public:
  explicit AnnotationSearch(const rdf::TripleStore* store) : store_(store) {}

  std::vector<SearchHit> Search(const std::string& keywords,
                                size_t limit = 10) const;

 private:
  const rdf::TripleStore* store_;
};

/// Dynamic page generation "in the spirit of systems like Strudel"
/// (§2.3): renders the department-wide course summary page — the kind
/// of page that used to be compiled by hand — directly from the live
/// repository. The returned HTML carries MANGROVE annotations itself,
/// so the generated page is a first-class citizen of the semantic web
/// it was derived from.
std::string RenderDepartmentSummary(const rdf::TripleStore& store,
                                    const CleaningPolicy& policy,
                                    const std::string& department_name);

}  // namespace revere::mangrove

#endif  // REVERE_MANGROVE_APPS_H_
