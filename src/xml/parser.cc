#include "src/xml/parser.h"

#include <cctype>

#include "src/common/strings.h"

namespace revere::xml {

namespace {

/// Recursive-descent XML parser over a flat character cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<XmlNode>> Parse() {
    auto doc = XmlNode::Element("#document");
    while (!AtEnd()) {
      SkipMisc();
      if (AtEnd()) break;
      if (Peek() != '<') {
        // Top-level stray text: keep it (whitespace-only is dropped).
        std::string text = ReadText();
        if (!Trim(text).empty()) doc->AddText(UnescapeText(text));
        continue;
      }
      REVERE_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> el, ParseElement());
      if (el != nullptr) doc->AddChild(std::move(el));
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  bool LookingAt(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  // Skips declarations, processing instructions, comments, DOCTYPE.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        size_t end = input_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
      } else if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else if (LookingAt("<!DOCTYPE") || LookingAt("<!doctype")) {
        size_t end = input_.find('>', pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  std::string ReadText() {
    size_t start = pos_;
    while (!AtEnd() && Peek() != '<') ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string ReadName() {
    size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  Status ParseAttributes(XmlNode* el, bool* self_closing) {
    *self_closing = false;
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Status::ParseError("unterminated tag");
      if (Peek() == '>') {
        ++pos_;
        return Status::Ok();
      }
      if (LookingAt("/>")) {
        pos_ += 2;
        *self_closing = true;
        return Status::Ok();
      }
      std::string name = ReadName();
      if (name.empty()) {
        return Status::ParseError("bad attribute at offset " +
                                  std::to_string(pos_));
      }
      SkipWhitespace();
      std::string value;
      if (Peek() == '=') {
        ++pos_;
        SkipWhitespace();
        char quote = Peek();
        if (quote == '"' || quote == '\'') {
          ++pos_;
          size_t start = pos_;
          while (!AtEnd() && Peek() != quote) ++pos_;
          if (AtEnd()) return Status::ParseError("unterminated attribute");
          value = UnescapeText(input_.substr(start, pos_ - start));
          ++pos_;
        } else {
          // Unquoted value (HTML tolerance).
          size_t start = pos_;
          while (!AtEnd() && !std::isspace(static_cast<unsigned char>(Peek())) &&
                 Peek() != '>' && !LookingAt("/>")) {
            ++pos_;
          }
          value = std::string(input_.substr(start, pos_ - start));
        }
      }
      el->SetAttribute(std::move(name), std::move(value));
    }
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    // Caller guarantees Peek() == '<'.
    ++pos_;
    std::string tag = ReadName();
    if (tag.empty()) {
      return Status::ParseError("expected tag name at offset " +
                                std::to_string(pos_));
    }
    auto el = XmlNode::Element(tag);
    bool self_closing = false;
    REVERE_RETURN_IF_ERROR(ParseAttributes(el.get(), &self_closing));
    if (self_closing) return el;

    // Children until matching close tag.
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unclosed element <" + tag + ">");
      }
      if (LookingAt("</")) {
        pos_ += 2;
        std::string close = ReadName();
        SkipWhitespace();
        if (Peek() == '>') ++pos_;
        if (close != tag) {
          return Status::ParseError("mismatched close tag </" + close +
                                    "> for <" + tag + ">");
        }
        return el;
      }
      if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        size_t start = pos_ + 9;
        size_t end = input_.find("]]>", start);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA");
        }
        el->AddText(std::string(input_.substr(start, end - start)));
        pos_ = end + 3;
        continue;
      }
      if (Peek() == '<') {
        REVERE_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child,
                                ParseElement());
        el->AddChild(std::move(child));
        continue;
      }
      std::string text = ReadText();
      if (!Trim(text).empty()) el->AddText(UnescapeText(text));
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void SerializeNode(const XmlNode& node, bool pretty, int depth,
                   std::string* out) {
  auto indent = [&] {
    if (pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  };
  if (node.is_text()) {
    indent();
    out->append(EscapeText(node.text()));
    if (pretty) out->push_back('\n');
    return;
  }
  if (node.tag() == "#document") {
    for (const auto& c : node.children()) {
      SerializeNode(*c, pretty, depth, out);
    }
    return;
  }
  indent();
  out->push_back('<');
  out->append(node.tag());
  for (const auto& [n, v] : node.attributes()) {
    out->push_back(' ');
    out->append(n);
    out->append("=\"");
    out->append(EscapeText(v));
    out->push_back('"');
  }
  if (node.children().empty()) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  // Single text child stays inline even in pretty mode.
  bool inline_text =
      node.children().size() == 1 && node.children()[0]->is_text();
  if (inline_text) {
    out->append(EscapeText(node.children()[0]->text()));
  } else {
    if (pretty) out->push_back('\n');
    for (const auto& c : node.children()) {
      SerializeNode(*c, pretty, depth + 1, out);
    }
    indent();
  }
  out->append("</");
  out->append(node.tag());
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

}  // namespace

Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input) {
  return Parser(input).Parse();
}

std::string Serialize(const XmlNode& node, bool pretty) {
  std::string out;
  SerializeNode(node, pretty, 0, &out);
  return out;
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '&') {
      auto try_entity = [&](std::string_view entity, char repl) {
        if (text.substr(i, entity.size()) == entity) {
          out.push_back(repl);
          i += entity.size();
          return true;
        }
        return false;
      };
      if (try_entity("&amp;", '&') || try_entity("&lt;", '<') ||
          try_entity("&gt;", '>') || try_entity("&quot;", '"') ||
          try_entity("&apos;", '\'')) {
        continue;
      }
      if (text.substr(i, 2) == "&#") {
        size_t end = text.find(';', i);
        if (end != std::string_view::npos && end - i <= 8) {
          int code = 0;
          bool valid = true;
          for (size_t j = i + 2; j < end; ++j) {
            if (!std::isdigit(static_cast<unsigned char>(text[j]))) {
              valid = false;
              break;
            }
            code = code * 10 + (text[j] - '0');
          }
          if (valid && code > 0 && code < 128) {
            out.push_back(static_cast<char>(code));
            i = end + 1;
            continue;
          }
        }
      }
    }
    out.push_back(text[i++]);
  }
  return out;
}

}  // namespace revere::xml
