#include "src/xml/node.h"

namespace revere::xml {

XmlNode::XmlNode(Kind kind, std::string payload) : kind_(kind) {
  if (kind_ == Kind::kElement) {
    tag_ = std::move(payload);
  } else {
    text_ = std::move(payload);
  }
}

std::unique_ptr<XmlNode> XmlNode::Element(std::string tag) {
  return std::unique_ptr<XmlNode>(
      new XmlNode(Kind::kElement, std::move(tag)));
}

std::unique_ptr<XmlNode> XmlNode::Text(std::string text) {
  return std::unique_ptr<XmlNode>(new XmlNode(Kind::kText, std::move(text)));
}

void XmlNode::SetAttribute(std::string name, std::string value) {
  for (auto& [n, v] : attributes_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> XmlNode::GetAttribute(
    std::string_view name) const {
  for (const auto& [n, v] : attributes_) {
    if (n == name) return v;
  }
  return std::nullopt;
}

bool XmlNode::HasAttribute(std::string_view name) const {
  return GetAttribute(name).has_value();
}

XmlNode* XmlNode::AddChild(std::unique_ptr<XmlNode> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

XmlNode* XmlNode::AddElement(std::string tag, std::string text) {
  XmlNode* el = AddChild(Element(std::move(tag)));
  if (!text.empty()) el->AddText(std::move(text));
  return el;
}

XmlNode* XmlNode::AddText(std::string text) {
  return AddChild(Text(std::move(text)));
}

std::vector<XmlNode*> XmlNode::ChildElements(std::string_view tag) const {
  std::vector<XmlNode*> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->tag() == tag) out.push_back(c.get());
  }
  return out;
}

std::vector<XmlNode*> XmlNode::ChildElements() const {
  std::vector<XmlNode*> out;
  for (const auto& c : children_) {
    if (c->is_element()) out.push_back(c.get());
  }
  return out;
}

XmlNode* XmlNode::FirstChild(std::string_view tag) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->tag() == tag) return c.get();
  }
  return nullptr;
}

namespace {
void CollectDescendants(const XmlNode* node, std::string_view tag,
                        std::vector<XmlNode*>* out) {
  for (const auto& c : node->children()) {
    if (c->is_element()) {
      if (c->tag() == tag) out->push_back(c.get());
      CollectDescendants(c.get(), tag, out);
    }
  }
}
}  // namespace

std::vector<XmlNode*> XmlNode::Descendants(std::string_view tag) const {
  std::vector<XmlNode*> out;
  CollectDescendants(this, tag, &out);
  return out;
}

std::string XmlNode::InnerText() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& c : children_) out += c->InnerText();
  return out;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  std::unique_ptr<XmlNode> copy =
      is_element() ? Element(tag_) : Text(text_);
  copy->attributes_ = attributes_;
  for (const auto& c : children_) copy->AddChild(c->Clone());
  return copy;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace revere::xml
