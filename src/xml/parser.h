#ifndef REVERE_XML_PARSER_H_
#define REVERE_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/xml/node.h"

namespace revere::xml {

/// Parses a well-formed XML document into a tree. The returned node is a
/// synthetic "#document" element whose children are the declaration-free
/// top-level nodes. Strict: mismatched tags are a ParseError.
Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input);

/// Serializes `node` back to markup. Text is escaped; `pretty` adds
/// two-space indentation. A "#document" root serializes its children only.
std::string Serialize(const XmlNode& node, bool pretty = false);

/// Escapes &, <, >, and double quotes for inclusion in markup.
std::string EscapeText(std::string_view text);
/// Reverses EscapeText (also handles &apos; and decimal refs).
std::string UnescapeText(std::string_view text);

}  // namespace revere::xml

#endif  // REVERE_XML_PARSER_H_
