#ifndef REVERE_XML_DTD_H_
#define REVERE_XML_DTD_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/xml/node.h"

namespace revere::xml {

/// How often a child element may occur in a content model.
enum class Occurrence { kOne, kOptional, kStar, kPlus };

/// One slot in a sequence content model, e.g. "college*".
struct ContentParticle {
  std::string element;
  Occurrence occurrence = Occurrence::kOne;
};

/// Declaration of one element type. Elements referenced but never
/// declared are implicitly #PCDATA leaves (as in the paper's Figure 3,
/// where `title` and `size` carry text).
struct ElementDecl {
  std::string name;
  bool is_pcdata = false;                 // leaf holding character data
  std::vector<ContentParticle> children;  // sequence model
};

/// A peer schema in DTD form (Figure 3). Supports both standard syntax
///   <!ELEMENT schedule (college*)>  and  <!ELEMENT title (#PCDATA)>
/// and the paper's shorthand
///   Element schedule(college*)
/// one declaration per line. The first declared element is the root.
class Dtd {
 public:
  Dtd() = default;

  /// Parses a whole schema text (either syntax, mixed allowed).
  static Result<Dtd> Parse(std::string_view text);

  /// Adds one declaration programmatically.
  Status AddElement(ElementDecl decl);

  const ElementDecl* Find(std::string_view name) const;
  const std::vector<ElementDecl>& elements() const { return elements_; }
  /// Root element name (first declared), empty if none.
  const std::string& root() const { return root_; }

  /// Every element name mentioned (declared or referenced).
  std::vector<std::string> AllElementNames() const;

  /// Validates `root_node` (an element) against this DTD: its tag must be
  /// the DTD root, sequences and occurrences must match, and undeclared
  /// leaves may only hold text.
  Status Validate(const XmlNode& root_node) const;

  /// Serializes back to standard DTD syntax.
  std::string ToString() const;

 private:
  Status ValidateElement(const XmlNode& node) const;

  std::vector<ElementDecl> elements_;
  std::string root_;
};

}  // namespace revere::xml

#endif  // REVERE_XML_DTD_H_
