#ifndef REVERE_XML_NODE_H_
#define REVERE_XML_NODE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace revere::xml {

/// A node in an XML/HTML document tree: either an element (tag +
/// attributes + children) or a text node. Piazza "assumes an XML data
/// model, since this is general enough to encompass relational,
/// hierarchical, or semi-structured data, including marked up HTML pages"
/// (§3.1) — this is that model.
class XmlNode {
 public:
  enum class Kind { kElement, kText };

  /// Creates an element node.
  static std::unique_ptr<XmlNode> Element(std::string tag);
  /// Creates a text node.
  static std::unique_ptr<XmlNode> Text(std::string text);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Element tag name (empty for text nodes).
  const std::string& tag() const { return tag_; }
  /// Text content (only for text nodes).
  const std::string& text() const { return text_; }

  // -- Attributes (elements only; insertion order preserved) --
  void SetAttribute(std::string name, std::string value);
  std::optional<std::string> GetAttribute(std::string_view name) const;
  bool HasAttribute(std::string_view name) const;
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  // -- Children --
  XmlNode* AddChild(std::unique_ptr<XmlNode> child);
  /// Convenience: appends <tag>text</tag> and returns the new element.
  XmlNode* AddElement(std::string tag, std::string text = "");
  /// Convenience: appends a text child.
  XmlNode* AddText(std::string text);

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  XmlNode* parent() const { return parent_; }

  /// Direct element children with the given tag.
  std::vector<XmlNode*> ChildElements(std::string_view tag) const;
  /// All direct element children.
  std::vector<XmlNode*> ChildElements() const;
  /// First direct element child with the given tag, or nullptr.
  XmlNode* FirstChild(std::string_view tag) const;

  /// All descendant elements (depth-first, pre-order) with `tag`.
  std::vector<XmlNode*> Descendants(std::string_view tag) const;

  /// Concatenated text of all descendant text nodes.
  std::string InnerText() const;

  /// Deep copy of this subtree.
  std::unique_ptr<XmlNode> Clone() const;

  /// Number of nodes in this subtree (including this one).
  size_t SubtreeSize() const;

 private:
  XmlNode(Kind kind, std::string payload);

  Kind kind_;
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
  XmlNode* parent_ = nullptr;
};

}  // namespace revere::xml

#endif  // REVERE_XML_NODE_H_
