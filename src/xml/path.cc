#include "src/xml/path.h"

#include "src/common/strings.h"

namespace revere::xml {

Result<PathExpr> PathExpr::Parse(std::string_view expr) {
  PathExpr out;
  out.source_ = std::string(expr);
  std::string_view rest = Trim(expr);
  if (rest.empty()) return Status::ParseError("empty path expression");

  bool next_descendant = false;
  if (StartsWith(rest, "//")) {
    out.absolute_ = true;
    next_descendant = true;
    rest = rest.substr(2);
  } else if (StartsWith(rest, "/")) {
    out.absolute_ = true;
    rest = rest.substr(1);
  }

  while (!rest.empty()) {
    size_t slash = rest.find('/');
    std::string_view step = slash == std::string_view::npos
                                ? rest
                                : rest.substr(0, slash);
    if (step.empty()) return Status::ParseError("empty step in: " +
                                                out.source_);
    if (step == "text()") {
      if (slash != std::string_view::npos) {
        return Status::ParseError("text() must be the final step");
      }
      out.yields_text_ = true;
      break;
    }
    out.steps_.push_back(Step{next_descendant, std::string(step)});
    next_descendant = false;
    if (slash == std::string_view::npos) {
      rest = {};
    } else {
      rest = rest.substr(slash + 1);
      if (StartsWith(rest, "/")) {  // "a//b"
        next_descendant = true;
        rest = rest.substr(1);
      }
    }
  }
  if (out.steps_.empty() && !out.yields_text_) {
    return Status::ParseError("no steps in: " + out.source_);
  }
  return out;
}

std::vector<const XmlNode*> PathExpr::SelectNodes(
    const XmlNode& context) const {
  std::vector<const XmlNode*> frontier{&context};
  for (const auto& step : steps_) {
    std::vector<const XmlNode*> next;
    for (const XmlNode* node : frontier) {
      if (step.descendant) {
        if (step.name == "*") {
          // All descendants.
          std::vector<const XmlNode*> stack{node};
          while (!stack.empty()) {
            const XmlNode* cur = stack.back();
            stack.pop_back();
            for (const auto& c : cur->children()) {
              if (c->is_element()) {
                next.push_back(c.get());
                stack.push_back(c.get());
              }
            }
          }
        } else {
          for (XmlNode* d : node->Descendants(step.name)) next.push_back(d);
        }
      } else {
        for (const auto& c : node->children()) {
          if (c->is_element() &&
              (step.name == "*" || c->tag() == step.name)) {
            next.push_back(c.get());
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

std::vector<std::string> PathExpr::SelectText(const XmlNode& context) const {
  std::vector<std::string> out;
  for (const XmlNode* n : SelectNodes(context)) {
    out.push_back(n->InnerText());
  }
  return out;
}

}  // namespace revere::xml
