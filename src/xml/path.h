#ifndef REVERE_XML_PATH_H_
#define REVERE_XML_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/xml/node.h"

namespace revere::xml {

/// A limited path expression over the XML model — the subset Piazza's
/// mapping language uses (§3.1.1, Figure 4): child steps, descendant
/// steps ("//"), wildcard "*", and a trailing "text()".
///
/// Grammar examples:
///   /schedule/college/dept     absolute child path
///   name/text()                relative, yields text values
///   //course                   any-depth descendant
///   dept/*                     wildcard child step
class PathExpr {
 public:
  /// Parses an expression; ParseError on malformed input.
  static Result<PathExpr> Parse(std::string_view expr);

  /// True when the expression ends in text() — results are strings.
  bool yields_text() const { return yields_text_; }
  bool is_absolute() const { return absolute_; }

  /// Element nodes selected from `context`. For absolute paths the
  /// context should be the document (or root element). If the path
  /// yields_text(), this returns the parents of the selected text.
  std::vector<const XmlNode*> SelectNodes(const XmlNode& context) const;

  /// Text values selected from `context`: InnerText of each selected
  /// node (expressions with or without a trailing text() both work).
  std::vector<std::string> SelectText(const XmlNode& context) const;

  const std::string& source() const { return source_; }

 private:
  struct Step {
    bool descendant = false;  // "//" axis
    std::string name;         // "*" is a wildcard
  };

  std::vector<Step> steps_;
  bool absolute_ = false;
  bool yields_text_ = false;
  std::string source_;
};

}  // namespace revere::xml

#endif  // REVERE_XML_PATH_H_
