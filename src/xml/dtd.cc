#include "src/xml/dtd.h"

#include <unordered_set>

#include "src/common/strings.h"

namespace revere::xml {

namespace {

// Parses "college*, dept?, name" into particles.
Result<std::vector<ContentParticle>> ParseContentList(std::string_view body) {
  std::vector<ContentParticle> particles;
  for (const std::string& raw : Split(body, ',')) {
    std::string item(Trim(raw));
    if (item.empty()) continue;
    Occurrence occ = Occurrence::kOne;
    if (EndsWith(item, "*")) {
      occ = Occurrence::kStar;
      item.pop_back();
    } else if (EndsWith(item, "+")) {
      occ = Occurrence::kPlus;
      item.pop_back();
    } else if (EndsWith(item, "?")) {
      occ = Occurrence::kOptional;
      item.pop_back();
    }
    item = std::string(Trim(item));
    if (item.empty()) {
      return Status::ParseError("empty element name in content model");
    }
    particles.push_back(ContentParticle{item, occ});
  }
  return particles;
}

// Parses one declaration in either syntax; returns nullopt for blank
// lines or comments.
Result<std::optional<ElementDecl>> ParseDeclLine(std::string_view line) {
  std::string_view t = Trim(line);
  if (t.empty() || StartsWith(t, "<!--") || StartsWith(t, "//")) {
    return std::optional<ElementDecl>(std::nullopt);
  }
  std::string work(t);
  // Standard: <!ELEMENT name (content)>
  if (StartsWith(work, "<!ELEMENT") || StartsWith(work, "<!element")) {
    work = work.substr(9);
    if (EndsWith(Trim(work), ">")) {
      work = std::string(Trim(work));
      work.pop_back();
    }
  } else if (StartsWith(ToLower(work), "element ") ||
             StartsWith(ToLower(work), "element\t")) {
    // Paper shorthand: Element name(content)
    work = work.substr(8);
  } else {
    return Status::ParseError("unrecognized DTD line: " + std::string(t));
  }
  work = std::string(Trim(work));
  size_t paren = work.find('(');
  if (paren == std::string::npos) {
    // Element with no content model: treat as PCDATA leaf.
    ElementDecl decl;
    decl.name = std::string(Trim(work));
    decl.is_pcdata = true;
    return std::optional<ElementDecl>(decl);
  }
  ElementDecl decl;
  decl.name = std::string(Trim(work.substr(0, paren)));
  if (decl.name.empty()) return Status::ParseError("missing element name");
  size_t close = work.rfind(')');
  if (close == std::string::npos || close < paren) {
    return Status::ParseError("unbalanced parentheses in: " +
                              std::string(t));
  }
  std::string body(Trim(work.substr(paren + 1, close - paren - 1)));
  if (body == "#PCDATA" || body == "#pcdata" || body.empty()) {
    decl.is_pcdata = true;
  } else {
    REVERE_ASSIGN_OR_RETURN(decl.children, ParseContentList(body));
  }
  return std::optional<ElementDecl>(decl);
}

}  // namespace

Result<Dtd> Dtd::Parse(std::string_view text) {
  Dtd dtd;
  for (const std::string& line : Split(text, '\n')) {
    REVERE_ASSIGN_OR_RETURN(std::optional<ElementDecl> decl,
                            ParseDeclLine(line));
    if (decl.has_value()) {
      REVERE_RETURN_IF_ERROR(dtd.AddElement(std::move(*decl)));
    }
  }
  if (dtd.elements_.empty()) {
    return Status::ParseError("no element declarations found");
  }
  return dtd;
}

Status Dtd::AddElement(ElementDecl decl) {
  if (Find(decl.name) != nullptr) {
    return Status::AlreadyExists("element '" + decl.name +
                                 "' declared twice");
  }
  if (root_.empty()) root_ = decl.name;
  elements_.push_back(std::move(decl));
  return Status::Ok();
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  for (const auto& e : elements_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> Dtd::AllElementNames() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& e : elements_) {
    if (seen.insert(e.name).second) out.push_back(e.name);
    for (const auto& p : e.children) {
      if (seen.insert(p.element).second) out.push_back(p.element);
    }
  }
  return out;
}

Status Dtd::ValidateElement(const XmlNode& node) const {
  const ElementDecl* decl = Find(node.tag());
  if (decl == nullptr || decl->is_pcdata) {
    // Undeclared or PCDATA leaf: must not contain element children.
    if (!node.ChildElements().empty()) {
      return Status::InvalidArgument("element '" + node.tag() +
                                     "' must be a text leaf");
    }
    return Status::Ok();
  }
  // Sequence matching with occurrence counts.
  std::vector<XmlNode*> kids = node.ChildElements();
  size_t k = 0;
  for (const auto& particle : decl->children) {
    size_t count = 0;
    while (k < kids.size() && kids[k]->tag() == particle.element) {
      REVERE_RETURN_IF_ERROR(ValidateElement(*kids[k]));
      ++k;
      ++count;
      if (particle.occurrence == Occurrence::kOne ||
          particle.occurrence == Occurrence::kOptional) {
        break;
      }
    }
    bool ok = true;
    switch (particle.occurrence) {
      case Occurrence::kOne:
        ok = count == 1;
        break;
      case Occurrence::kOptional:
        ok = count <= 1;
        break;
      case Occurrence::kPlus:
        ok = count >= 1;
        break;
      case Occurrence::kStar:
        break;
    }
    if (!ok) {
      return Status::InvalidArgument(
          "element '" + node.tag() + "' expects " + particle.element +
          " with occurrence constraint violated (saw " +
          std::to_string(count) + ")");
    }
  }
  if (k < kids.size()) {
    return Status::InvalidArgument("unexpected child '" + kids[k]->tag() +
                                   "' in element '" + node.tag() + "'");
  }
  return Status::Ok();
}

Status Dtd::Validate(const XmlNode& root_node) const {
  const XmlNode* el = &root_node;
  if (root_node.tag() == "#document") {
    auto tops = root_node.ChildElements();
    if (tops.size() != 1) {
      return Status::InvalidArgument("document must have one root element");
    }
    el = tops[0];
  }
  if (el->tag() != root_) {
    return Status::InvalidArgument("root element '" + el->tag() +
                                   "' does not match DTD root '" + root_ +
                                   "'");
  }
  return ValidateElement(*el);
}

std::string Dtd::ToString() const {
  std::string out;
  for (const auto& e : elements_) {
    out += "<!ELEMENT " + e.name + " (";
    if (e.is_pcdata) {
      out += "#PCDATA";
    } else {
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += e.children[i].element;
        switch (e.children[i].occurrence) {
          case Occurrence::kOne:
            break;
          case Occurrence::kOptional:
            out += "?";
            break;
          case Occurrence::kStar:
            out += "*";
            break;
          case Occurrence::kPlus:
            out += "+";
            break;
        }
      }
    }
    out += ")>\n";
  }
  return out;
}

}  // namespace revere::xml
