#ifndef REVERE_HTML_ANNOTATION_H_
#define REVERE_HTML_ANNOTATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/xml/node.h"

namespace revere::html {

/// MANGROVE's annotation carrier (§2.1): semantic tags are embedded in
/// the page itself so the data is never duplicated, and they are
/// invisible to the browser because they ride on <span> elements with
/// REVERE-reserved attributes:
///
///   <span m="course" m-id="cse544"> ... <span m="title">DBMS</span> ...
///
/// `kTagAttr` holds the (possibly dotted) schema tag; `kIdAttr` an
/// optional explicit resource id. This header provides the *syntactic*
/// layer — injecting annotations into markup and enumerating annotated
/// regions; the semantic extraction into RDF lives in src/mangrove.
inline constexpr char kTagAttr[] = "m";
inline constexpr char kIdAttr[] = "m-id";

/// One annotated region found in a parsed page.
struct AnnotatedRegion {
  const xml::XmlNode* node = nullptr;  // the carrying element
  std::string tag;                     // value of the `m` attribute
  std::string id;                      // value of `m-id`, may be empty
};

/// All annotated elements in document order (pre-order).
std::vector<AnnotatedRegion> FindAnnotations(const xml::XmlNode& root);

/// String-level annotation injection — the programmatic analogue of the
/// GUI's highlight-and-tag gesture: wraps the first occurrence of
/// `target` in the *text* of `html_source` (never inside a tag) with
///   <span m="tag_name">target</span>
/// Returns the modified page, or NotFound when `target` does not occur
/// as page text.
Result<std::string> AnnotateFirst(std::string_view html_source,
                                  std::string_view target,
                                  std::string_view tag_name);

/// Wraps a region of `html_source` from the first text occurrence of
/// `from` through the next occurrence of `to` (inclusive) in an
/// annotated span, e.g. to mark a whole course block. Both endpoints
/// must be page text.
Result<std::string> AnnotateRange(std::string_view html_source,
                                  std::string_view from, std::string_view to,
                                  std::string_view tag_name,
                                  std::string_view id = "");

// ---- Offset-level primitives (used by the MANGROVE annotation tool to
// guarantee properly nested spans) ----

/// First occurrence of `target` at or after `from` that begins in page
/// text (not inside a tag); npos when absent.
size_t FindTextOccurrence(std::string_view html, std::string_view target,
                          size_t from = 0);

/// Builds the open tag `<span m="tag" m-id="id">` (id omitted if empty).
std::string SpanOpenTag(std::string_view tag_name, std::string_view id = "");

/// Wraps html[begin, end) in an annotated span; offsets must satisfy
/// begin <= end <= html.size().
Result<std::string> WrapSpan(std::string_view html, size_t begin, size_t end,
                             std::string_view tag_name,
                             std::string_view id = "");

}  // namespace revere::html

#endif  // REVERE_HTML_ANNOTATION_H_
