#ifndef REVERE_HTML_PARSER_H_
#define REVERE_HTML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/xml/node.h"

namespace revere::html {

/// Parses real-world HTML into the shared XML node model, tolerantly:
///   - tag names are case-normalized to lower case,
///   - void elements (<br>, <img>, ...) need no close tag,
///   - unmatched close tags are ignored,
///   - elements left open are closed at end of input,
///   - a close tag matching an ancestor pops the intermediate elements,
///   - <script>/<style> bodies are kept as raw text.
/// Never fails on malformed markup — MANGROVE must accept pages as they
/// are (§2.1); the Result is an error only on internal invariants.
Result<std::unique_ptr<xml::XmlNode>> ParseHtml(std::string_view input);

/// True for HTML void elements.
bool IsVoidElement(std::string_view tag);

/// Extracts the rendered text of a page (InnerText minus script/style).
std::string VisibleText(const xml::XmlNode& root);

}  // namespace revere::html

#endif  // REVERE_HTML_PARSER_H_
