#include "src/html/annotation.h"

#include <string>

namespace revere::html {

namespace {

void Collect(const xml::XmlNode& node, std::vector<AnnotatedRegion>* out) {
  if (node.is_element()) {
    auto tag = node.GetAttribute(kTagAttr);
    if (tag.has_value() && !tag->empty()) {
      AnnotatedRegion region;
      region.node = &node;
      region.tag = *tag;
      region.id = node.GetAttribute(kIdAttr).value_or("");
      out->push_back(std::move(region));
    }
  }
  for (const auto& c : node.children()) Collect(*c, out);
}

}  // namespace

std::vector<AnnotatedRegion> FindAnnotations(const xml::XmlNode& root) {
  std::vector<AnnotatedRegion> out;
  Collect(root, &out);
  return out;
}

size_t FindTextOccurrence(std::string_view html, std::string_view target,
                          size_t from) {
  if (target.empty()) return std::string_view::npos;
  size_t pos = from;
  while (true) {
    pos = html.find(target, pos);
    if (pos == std::string_view::npos) return pos;
    // Inside a tag if the nearest '<' before pos has no '>' between.
    size_t lt = html.rfind('<', pos);
    if (lt == std::string_view::npos) return pos;
    size_t gt = html.find('>', lt);
    if (gt != std::string_view::npos && gt < pos) return pos;
    pos += 1;
  }
}

std::string SpanOpenTag(std::string_view tag_name, std::string_view id) {
  std::string open = "<span " + std::string(kTagAttr) + "=\"" +
                     std::string(tag_name) + "\"";
  if (!id.empty()) {
    open += " " + std::string(kIdAttr) + "=\"" + std::string(id) + "\"";
  }
  open += ">";
  return open;
}

Result<std::string> WrapSpan(std::string_view html, size_t begin, size_t end,
                             std::string_view tag_name,
                             std::string_view id) {
  if (begin > end || end > html.size()) {
    return Status::OutOfRange("span range [" + std::to_string(begin) + ", " +
                              std::to_string(end) + ") outside page of size " +
                              std::to_string(html.size()));
  }
  std::string out(html.substr(0, begin));
  out += SpanOpenTag(tag_name, id);
  out += std::string(html.substr(begin, end - begin));
  out += "</span>";
  out += std::string(html.substr(end));
  return out;
}

Result<std::string> AnnotateFirst(std::string_view html_source,
                                  std::string_view target,
                                  std::string_view tag_name) {
  size_t pos = FindTextOccurrence(html_source, target);
  if (pos == std::string_view::npos) {
    return Status::NotFound("text '" + std::string(target) +
                            "' not found in page");
  }
  return WrapSpan(html_source, pos, pos + target.size(), tag_name);
}

Result<std::string> AnnotateRange(std::string_view html_source,
                                  std::string_view from, std::string_view to,
                                  std::string_view tag_name,
                                  std::string_view id) {
  size_t start = FindTextOccurrence(html_source, from);
  if (start == std::string_view::npos) {
    return Status::NotFound("range start '" + std::string(from) +
                            "' not found");
  }
  size_t end = FindTextOccurrence(html_source, to, start + from.size());
  if (end == std::string_view::npos) {
    return Status::NotFound("range end '" + std::string(to) +
                            "' not found after start");
  }
  return WrapSpan(html_source, start, end + to.size(), tag_name, id);
}

}  // namespace revere::html
