#include "src/html/parser.h"

#include <cctype>
#include <unordered_set>
#include <vector>

#include "src/common/strings.h"
#include "src/xml/parser.h"

namespace revere::html {

namespace {

using xml::XmlNode;

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
         c == '_' || c == ':';
}

class HtmlParser {
 public:
  explicit HtmlParser(std::string_view input) : input_(input) {}

  std::unique_ptr<XmlNode> Parse() {
    auto doc = XmlNode::Element("#document");
    open_.push_back(doc.get());
    while (pos_ < input_.size()) {
      if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
        continue;
      }
      if (LookingAt("<!") || LookingAt("<?")) {
        size_t end = input_.find('>', pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 1;
        continue;
      }
      if (LookingAt("</")) {
        HandleCloseTag();
        continue;
      }
      if (input_[pos_] == '<' && pos_ + 1 < input_.size() &&
          (std::isalpha(static_cast<unsigned char>(input_[pos_ + 1])) != 0)) {
        HandleOpenTag();
        continue;
      }
      HandleText();
    }
    return doc;
  }

 private:
  bool LookingAt(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  std::string ReadName() {
    size_t start = pos_;
    while (pos_ < input_.size() && IsWordChar(input_[pos_])) ++pos_;
    return ToLower(input_.substr(start, pos_ - start));
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  void ParseAttributes(XmlNode* el, bool* self_closing) {
    *self_closing = false;
    while (pos_ < input_.size()) {
      SkipWhitespace();
      if (pos_ >= input_.size()) return;
      if (input_[pos_] == '>') {
        ++pos_;
        return;
      }
      if (LookingAt("/>")) {
        pos_ += 2;
        *self_closing = true;
        return;
      }
      std::string name = ReadName();
      if (name.empty()) {  // junk character; skip it
        ++pos_;
        continue;
      }
      SkipWhitespace();
      std::string value;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        SkipWhitespace();
        char q = pos_ < input_.size() ? input_[pos_] : '\0';
        if (q == '"' || q == '\'') {
          ++pos_;
          size_t start = pos_;
          while (pos_ < input_.size() && input_[pos_] != q) ++pos_;
          value = xml::UnescapeText(input_.substr(start, pos_ - start));
          if (pos_ < input_.size()) ++pos_;
        } else {
          size_t start = pos_;
          while (pos_ < input_.size() &&
                 !std::isspace(static_cast<unsigned char>(input_[pos_])) &&
                 input_[pos_] != '>') {
            ++pos_;
          }
          value = std::string(input_.substr(start, pos_ - start));
        }
      }
      el->SetAttribute(std::move(name), std::move(value));
    }
  }

  void HandleOpenTag() {
    ++pos_;  // '<'
    std::string tag = ReadName();
    auto el = XmlNode::Element(tag);
    XmlNode* raw = el.get();
    bool self_closing = false;
    ParseAttributes(raw, &self_closing);
    open_.back()->AddChild(std::move(el));
    if (self_closing || IsVoidElement(tag)) return;
    if (tag == "script" || tag == "style") {
      // Raw text until matching close tag.
      std::string close = "</" + tag;
      size_t end = input_.find(close, pos_);
      size_t stop = end == std::string_view::npos ? input_.size() : end;
      std::string body(input_.substr(pos_, stop - pos_));
      if (!Trim(body).empty()) raw->AddText(std::move(body));
      if (end == std::string_view::npos) {
        pos_ = input_.size();
      } else {
        pos_ = input_.find('>', end);
        pos_ = pos_ == std::string_view::npos ? input_.size() : pos_ + 1;
      }
      return;
    }
    open_.push_back(raw);
  }

  void HandleCloseTag() {
    pos_ += 2;  // "</"
    std::string tag = ReadName();
    size_t gt = input_.find('>', pos_);
    pos_ = gt == std::string_view::npos ? input_.size() : gt + 1;
    // Pop to the matching ancestor if one exists; otherwise ignore.
    for (size_t i = open_.size(); i-- > 1;) {
      if (open_[i]->tag() == tag) {
        open_.resize(i);
        return;
      }
    }
  }

  void HandleText() {
    size_t start = pos_;
    // A stray '<' not opening a tag (e.g. "<3", "a < b") is literal
    // text; consume it so the parser always makes progress.
    if (pos_ < input_.size() && input_[pos_] == '<') ++pos_;
    while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
    std::string text(input_.substr(start, pos_ - start));
    if (!Trim(text).empty()) {
      open_.back()->AddText(xml::UnescapeText(text));
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  std::vector<XmlNode*> open_;
};

void CollectVisible(const XmlNode& node, std::string* out) {
  if (node.is_text()) {
    *out += node.text();
    return;
  }
  if (node.tag() == "script" || node.tag() == "style") return;
  for (const auto& c : node.children()) {
    CollectVisible(*c, out);
    if (c->is_element()) *out += ' ';
  }
}

}  // namespace

bool IsVoidElement(std::string_view tag) {
  static const std::unordered_set<std::string_view> kVoid = {
      "area", "base", "br",   "col",  "embed",  "hr",    "img",
      "input", "link", "meta", "param", "source", "track", "wbr"};
  return kVoid.count(tag) > 0;
}

Result<std::unique_ptr<xml::XmlNode>> ParseHtml(std::string_view input) {
  return HtmlParser(input).Parse();
}

std::string VisibleText(const xml::XmlNode& root) {
  std::string out;
  CollectVisible(root, &out);
  return out;
}

}  // namespace revere::html
