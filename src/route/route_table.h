#ifndef REVERE_ROUTE_ROUTE_TABLE_H_
#define REVERE_ROUTE_ROUTE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

namespace revere::route {

/// Per-peer routing cost estimates for the scale-aware reformulation
/// search (ISSUE 9). Piazza's §3 argues a thousand-peer PDMS cannot
/// enumerate the rewriting tree exhaustively; the route table supplies
/// the edge weights that let `Reformulate` rank and budget paths: an
/// EWMA of observed contact latency plus an EWMA reachability score
/// (fraction of recent contacts that succeeded), blended into one
/// dimensionless cost per peer.
///
/// Sources, in layering order:
///  - live feedback: `ObservedContact` is fed from every real peer
///    contact (PdmsNetwork wires it through
///    NetworkCostModel::route_feedback);
///  - seeding: `route::SeedFromBreakers` / `SeedFromLatencyHistogram`
///    (src/route/seed.h) bulk-prime the table from the serve-layer
///    breaker outcomes and the obs latency histograms;
///  - static fallback: `SetStaticCost` pins a deterministic cost, for
///    benches and fuzzing where answers must not depend on timing.
///
/// Concurrency: one shared_mutex over the peer map; reads on the
/// reformulation hot path take the shared lock. The `epoch` counter
/// bumps only on *bulk* mutations (seed/reset/static overrides), never
/// per observation — plan-cache keys may incorporate the epoch without
/// thrashing on every contact.
class RouteTable {
 public:
  /// Cost assigned to a peer with no estimate (and the latency scale
  /// observations are normalized by): one "hop unit". With every peer
  /// unknown, route-mode search degenerates to uniform edge cost 1.0,
  /// which is exactly breadth-first order.
  static constexpr double kDefaultCost = 1.0;

  RouteTable() = default;
  RouteTable(const RouteTable&) = delete;
  RouteTable& operator=(const RouteTable&) = delete;

  /// The routing cost of entering `peer`: latency EWMA normalized by
  /// `latency_scale_ms`, divided by the reachability EWMA (an unreliable
  /// peer costs proportionally more), clamped to [min_cost, max_cost].
  /// Unknown peers cost kDefaultCost.
  double CostOf(const std::string& peer) const;

  /// Live feedback from one peer contact: folds `elapsed_ms` into the
  /// latency EWMA and `ok` into the reachability EWMA. Does not bump
  /// the epoch.
  void ObservedContact(const std::string& peer, double elapsed_ms, bool ok);

  /// Pins a deterministic static cost for `peer`, overriding any
  /// observed estimate until the next Reset. The fallback for benches
  /// and fuzzing. Bumps the epoch.
  void SetStaticCost(const std::string& peer, double cost);

  /// Bulk-seeds `peer`'s latency/reachability estimates (used by the
  /// seed.h adapters). Bumps the epoch once per call.
  void SeedEstimate(const std::string& peer, double latency_ms,
                    double reachability);

  /// Drops every estimate and override. Bumps the epoch.
  void Reset();

  /// Structural version: bumped by bulk mutations (SetStaticCost,
  /// SeedEstimate, Reset) but not by per-contact observation, so it is
  /// stable enough to key caches on.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Number of peers with any estimate or override.
  size_t size() const;

  /// Point-in-time estimate for tests/benches; zeros when unknown.
  struct Estimate {
    double latency_ms = 0.0;
    double reachability = 1.0;
    bool has_static_cost = false;
    double static_cost = 0.0;
    uint64_t samples = 0;
  };
  Estimate GetEstimate(const std::string& peer) const;

  // ---- Tuning knobs (set before traffic; not synchronized) ----------

  /// EWMA smoothing factor for both latency and reachability.
  void set_alpha(double alpha) { alpha_ = alpha; }
  /// Milliseconds worth one cost unit (default: 5ms, the simulated
  /// per-peer round trip).
  void set_latency_scale_ms(double ms) { latency_scale_ms_ = ms; }

 private:
  struct PeerState {
    double latency_ewma_ms = 0.0;
    double reach_ewma = 1.0;
    bool has_static_cost = false;
    double static_cost = 0.0;
    uint64_t samples = 0;
  };

  double alpha_ = 0.2;
  double latency_scale_ms_ = 5.0;
  static constexpr double kMinCost = 0.1;
  static constexpr double kMaxCost = 100.0;

  mutable std::shared_mutex mu_;
  std::map<std::string, PeerState> peers_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace revere::route

#endif  // REVERE_ROUTE_ROUTE_TABLE_H_
