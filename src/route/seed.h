#ifndef REVERE_ROUTE_SEED_H_
#define REVERE_ROUTE_SEED_H_

#include <map>
#include <string>

#include "src/obs/metrics.h"
#include "src/piazza/breaker.h"
#include "src/route/route_table.h"

namespace revere::route {

/// Adapters that prime a RouteTable from the telemetry the system
/// already collects (ISSUE 9): the serve layer's per-peer circuit
/// breakers and the obs latency histograms. These live in a separate
/// header so route_table.h itself stays dependency-free (the piazza
/// layer includes it).

/// Seeds reachability from breaker states: a closed breaker reads as
/// fully reachable, half-open as degraded, open as nearly dead (the
/// breaker has been actively suppressing contacts). Latency estimates
/// are left untouched. Returns the number of peers seeded.
size_t SeedFromBreakers(const piazza::BreakerSet& breakers, RouteTable* table);

/// Seeds every peer in `peer_latency` with its histogram's p50 as the
/// latency estimate (reachability untouched for peers the table already
/// knows; 1.0 otherwise). Callers snapshot per-peer latency histograms
/// however they shard them; this adapter only folds the numbers in.
/// Returns the number of peers seeded.
size_t SeedFromLatencyHistograms(
    const std::map<std::string, obs::Histogram::Snapshot>& peer_latency,
    RouteTable* table);

}  // namespace revere::route

#endif  // REVERE_ROUTE_SEED_H_
