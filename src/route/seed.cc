#include "src/route/seed.h"

namespace revere::route {

size_t SeedFromBreakers(const piazza::BreakerSet& breakers,
                        RouteTable* table) {
  size_t seeded = 0;
  for (const auto& [peer, state] : breakers.States()) {
    double reach = 1.0;
    switch (state) {
      case piazza::PeerBreaker::State::kClosed:
        reach = 1.0;
        break;
      case piazza::PeerBreaker::State::kHalfOpen:
        reach = 0.5;
        break;
      case piazza::PeerBreaker::State::kOpen:
        reach = 0.05;
        break;
    }
    RouteTable::Estimate prior = table->GetEstimate(peer);
    double latency =
        prior.samples > 0 ? prior.latency_ms : 0.0;  // keep what we have
    if (latency == 0.0) {
      // No latency signal yet: one scale unit so CostOf reflects only
      // the reachability penalty.
      latency = RouteTable::kDefaultCost * 5.0;
    }
    table->SeedEstimate(peer, latency, reach);
    ++seeded;
  }
  return seeded;
}

size_t SeedFromLatencyHistograms(
    const std::map<std::string, obs::Histogram::Snapshot>& peer_latency,
    RouteTable* table) {
  size_t seeded = 0;
  for (const auto& [peer, snapshot] : peer_latency) {
    if (snapshot.count == 0) continue;
    RouteTable::Estimate prior = table->GetEstimate(peer);
    double reach = prior.samples > 0 ? prior.reachability : 1.0;
    table->SeedEstimate(peer, snapshot.Percentile(50.0), reach);
    ++seeded;
  }
  return seeded;
}

}  // namespace revere::route
