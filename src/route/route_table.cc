#include "src/route/route_table.h"

#include <algorithm>
#include <mutex>

namespace revere::route {

double RouteTable::CostOf(const std::string& peer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) return kDefaultCost;
  const PeerState& s = it->second;
  if (s.has_static_cost) return s.static_cost;
  if (s.samples == 0) return kDefaultCost;
  double latency_cost = s.latency_ewma_ms / latency_scale_ms_;
  // An unreliable peer is expected to need 1/reach attempts; floor the
  // divisor so a fully dead peer costs kMaxCost instead of infinity.
  double reach = std::max(s.reach_ewma, 0.01);
  return std::clamp(latency_cost / reach, kMinCost, kMaxCost);
}

void RouteTable::ObservedContact(const std::string& peer, double elapsed_ms,
                                 bool ok) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  PeerState& s = peers_[peer];
  if (s.samples == 0) {
    s.latency_ewma_ms = elapsed_ms;
    s.reach_ewma = ok ? 1.0 : 0.0;
  } else {
    s.latency_ewma_ms =
        alpha_ * elapsed_ms + (1.0 - alpha_) * s.latency_ewma_ms;
    s.reach_ewma = alpha_ * (ok ? 1.0 : 0.0) + (1.0 - alpha_) * s.reach_ewma;
  }
  ++s.samples;
}

void RouteTable::SetStaticCost(const std::string& peer, double cost) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    PeerState& s = peers_[peer];
    s.has_static_cost = true;
    s.static_cost = cost;
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void RouteTable::SeedEstimate(const std::string& peer, double latency_ms,
                              double reachability) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    PeerState& s = peers_[peer];
    s.latency_ewma_ms = latency_ms;
    s.reach_ewma = std::clamp(reachability, 0.0, 1.0);
    if (s.samples == 0) s.samples = 1;  // mark as estimated
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void RouteTable::Reset() {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    peers_.clear();
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

size_t RouteTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return peers_.size();
}

RouteTable::Estimate RouteTable::GetEstimate(const std::string& peer) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Estimate e;
  auto it = peers_.find(peer);
  if (it == peers_.end()) return e;
  e.latency_ms = it->second.latency_ewma_ms;
  e.reachability = it->second.reach_ewma;
  e.has_static_cost = it->second.has_static_cost;
  e.static_cost = it->second.static_cost;
  e.samples = it->second.samples;
  return e;
}

}  // namespace revere::route
