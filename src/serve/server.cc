#include "src/serve/server.h"

#include <algorithm>
#include <utility>

namespace revere::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kEwmaAlpha = 0.2;

size_t LaneIndex(Lane lane) { return lane == Lane::kInteractive ? 0 : 1; }

}  // namespace

const char* LaneToString(Lane lane) {
  return lane == Lane::kInteractive ? "interactive" : "batch";
}

RevereServer::RevereServer(const piazza::PdmsNetwork* net, ServeOptions options)
    : net_(net),
      options_(std::move(options)),
      retry_budget_(options_.retry_budget_capacity, options_.retry_budget_refill),
      interactive_(options_.queue_capacity),
      batch_(options_.queue_capacity),
      interactive_latency_us_(obs::Histogram::DefaultLatencyBoundsUs()),
      batch_latency_us_(obs::Histogram::DefaultLatencyBoundsUs()) {
  if (options_.use_breakers) {
    breakers_ = std::make_unique<piazza::BreakerSet>(options_.breaker);
  }
  if (options_.metrics) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    m_admitted_ = reg.GetCounter("serve.admitted");
    m_shed_queue_full_ = reg.GetCounter("serve.shed_queue_full");
    m_shed_unmeetable_ = reg.GetCounter("serve.shed_unmeetable");
    m_completed_ = reg.GetCounter("serve.completed");
    m_deadline_exceeded_ = reg.GetCounter("serve.deadline_exceeded");
    m_breaker_skips_ = reg.GetCounter("serve.breaker_skips");
    m_queue_interactive_ = reg.GetGauge("serve.queue_depth_interactive");
    m_queue_batch_ = reg.GetGauge("serve.queue_depth_batch");
    m_interactive_latency_ = reg.GetHistogram("serve.interactive_latency_us");
    m_batch_latency_ = reg.GetHistogram("serve.batch_latency_us");
  }
  size_t n = std::max<size_t>(1, options_.workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RevereServer::~RevereServer() { Shutdown(); }

double RevereServer::RetryAfterMs(Lane lane) const {
  // A zero hint on a shed would invite an instant retry; before any
  // service time has been observed, fall back to a 1 ms guess.
  double est = EstimatedQueueWaitMs(lane);
  return est > 0.0 ? est : 1.0;
}

double RevereServer::EstimatedQueueWaitMs(Lane lane) const {
  // Interactive requests only wait behind the interactive queue; batch
  // requests wait behind both (interactive always dequeues first).
  size_t ahead = interactive_.size();
  double ewma;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ewma = ewma_service_ms_[LaneIndex(lane)];
  }
  if (lane == Lane::kBatch) ahead += batch_.size();
  size_t workers = std::max<size_t>(1, workers_.size());
  return (static_cast<double>(ahead) + 1.0) * ewma /
         static_cast<double>(workers);
}

std::future<ServeResult> RevereServer::Shed(ServeRequest request,
                                            uint64_t* counter,
                                            const char* why) {
  double retry_after = RetryAfterMs(request.lane);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++*counter;
  }
  if (counter == &stats_.shed_queue_full) {
    if (m_shed_queue_full_) m_shed_queue_full_->Increment();
  } else if (m_shed_unmeetable_) {
    m_shed_unmeetable_->Increment();
  }
  ServeResult result;
  result.status = Status::Unavailable(why);
  result.shed = true;
  result.retry_after_ms = retry_after;
  std::promise<ServeResult> promise;
  std::future<ServeResult> future = promise.get_future();
  promise.set_value(std::move(result));
  return future;
}

std::future<ServeResult> RevereServer::Submit(ServeRequest request) {
  auto now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  double budget_ms = request.deadline_ms < 0.0 ? options_.default_deadline_ms
                                               : request.deadline_ms;
  auto deadline = Clock::time_point::max();
  if (budget_ms > 0.0) {
    deadline = now + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(budget_ms));
    if (options_.shed_unmeetable) {
      // Fail in O(1) instead of queueing a request that cannot make its
      // deadline even if service started immediately after the queue
      // drains. The estimate is intentionally optimistic (EWMA of past
      // service times); an admitted request that still misses resolves
      // as kDeadlineExceeded at dequeue.
      double est_wait_ms = EstimatedQueueWaitMs(request.lane);
      if (est_wait_ms > budget_ms) {
        return Shed(std::move(request), &stats_.shed_unmeetable,
                    "deadline unmeetable at current queue depth");
      }
    }
  }
  Ticket ticket;
  ticket.request = std::move(request);
  ticket.enqueued = now;
  ticket.deadline = deadline;
  std::future<ServeResult> future = ticket.promise.get_future();
  Lane lane = ticket.request.lane;
  {
    // The stopping check and the push share one mu_ hold, so no ticket
    // can enter a queue after the drain loop observed stopping_ with
    // both queues empty — Shutdown never strands a future.
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Fall through to the shed below without touching the queue.
    } else if (lane_queue(lane).TryPush(std::move(ticket))) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.admitted;
      }
      if (m_admitted_) m_admitted_->Increment();
      if (m_queue_interactive_) {
        m_queue_interactive_->Set(static_cast<int64_t>(interactive_.size()));
      }
      if (m_queue_batch_) {
        m_queue_batch_->Set(static_cast<int64_t>(batch_.size()));
      }
      work_cv_.notify_one();
      return future;
    }
    // TryPush moved-from on failure only if it consumed the ticket; our
    // BoundedQueue only moves on success, so `ticket` is intact here —
    // but its future has been taken, so shed through its own promise.
  }
  double retry_after = RetryAfterMs(lane);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_queue_full;
  }
  if (m_shed_queue_full_) m_shed_queue_full_->Increment();
  ServeResult result;
  result.status = Status::Unavailable("serving queue is full");
  result.shed = true;
  result.retry_after_ms = retry_after;
  ticket.promise.set_value(std::move(result));
  return future;
}

ServeResult RevereServer::SubmitAndWait(ServeRequest request) {
  return Submit(std::move(request)).get();
}

void RevereServer::WorkerLoop() {
  for (;;) {
    Ticket ticket;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || interactive_.size() > 0 || batch_.size() > 0;
      });
      if (auto next = interactive_.TryPop()) {
        ticket = std::move(*next);
        have = true;
      } else if (auto next = batch_.TryPop()) {
        ticket = std::move(*next);
        have = true;
      } else if (stopping_) {
        // Both queues empty under the same lock that gates pushes:
        // drained, safe to exit.
        return;
      }
      if (have) {
        if (m_queue_interactive_) {
          m_queue_interactive_->Set(static_cast<int64_t>(interactive_.size()));
        }
        if (m_queue_batch_) {
          m_queue_batch_->Set(static_cast<int64_t>(batch_.size()));
        }
      }
    }
    if (have) Serve(std::move(ticket));
  }
}

void RevereServer::Serve(Ticket ticket) {
  auto start = Clock::now();
  double queue_wait_us =
      std::chrono::duration<double, std::micro>(start - ticket.enqueued)
          .count();
  ServeResult result;
  result.queue_wait_us = queue_wait_us;
  if (start >= ticket.deadline) {
    // Expired while queued: resolve without burning a worker on an
    // answer nobody is waiting for.
    result.status = Status::DeadlineExceeded("deadline expired in queue");
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.deadline_exceeded;
    }
    if (m_deadline_exceeded_) m_deadline_exceeded_->Increment();
    ticket.promise.set_value(std::move(result));
    return;
  }

  piazza::NetworkCostModel cost = options_.cost;
  cost.deadline = ticket.deadline;
  cost.breakers = breakers_.get();
  cost.retry_budget = &retry_budget_;
  piazza::ExecutionStats xstats;
  auto answer =
      net_->Answer(ticket.request.query, options_.reform, &xstats, cost);
  auto end = Clock::now();
  double service_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  result.service_us = service_us;
  result.stats = std::move(xstats);
  result.status = answer.status();
  if (answer.ok()) result.rows = std::move(answer).value();

  Lane lane = ticket.request.lane;
  if (result.status.ok()) {
    // SLO latency counts completed answers only, so Slo(lane).completed
    // and the `completed` counter agree exactly (the conservation
    // invariant the stress test asserts).
    double total_us = queue_wait_us + service_us;
    obs::Histogram& lane_hist = lane == Lane::kInteractive
                                    ? interactive_latency_us_
                                    : batch_latency_us_;
    lane_hist.Record(total_us);
    obs::Histogram* mirror =
        lane == Lane::kInteractive ? m_interactive_latency_ : m_batch_latency_;
    if (mirror) mirror->Record(total_us);
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (result.status.ok()) {
      ++stats_.completed;
    } else if (result.status.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
    } else {
      ++stats_.failed;
    }
    stats_.breaker_skips += result.stats.completeness.breaker_skips;
    stats_.retries_denied += result.stats.completeness.retries_denied;
    double& ewma = ewma_service_ms_[LaneIndex(lane)];
    double service_ms = service_us / 1000.0;
    ewma = ewma == 0.0 ? service_ms
                       : (1.0 - kEwmaAlpha) * ewma + kEwmaAlpha * service_ms;
  }
  if (result.status.ok()) {
    if (m_completed_) m_completed_->Increment();
  } else if (result.status.code() == StatusCode::kDeadlineExceeded) {
    if (m_deadline_exceeded_) m_deadline_exceeded_->Increment();
  }
  if (m_breaker_skips_ && result.stats.completeness.breaker_skips > 0) {
    m_breaker_skips_->Increment(result.stats.completeness.breaker_skips);
  }

  ticket.promise.set_value(std::move(result));
}

void RevereServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Idempotent: a second Shutdown (or the destructor after an
      // explicit call) must not re-join the workers.
      if (workers_.empty()) return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

ServerStats RevereServer::Snapshot() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.queue_depth_interactive = interactive_.size();
  out.queue_depth_batch = batch_.size();
  return out;
}

LaneSlo RevereServer::Slo(Lane lane) const {
  const obs::Histogram& hist =
      lane == Lane::kInteractive ? interactive_latency_us_ : batch_latency_us_;
  obs::Histogram::Snapshot snap = hist.GetSnapshot();
  LaneSlo slo;
  slo.completed = snap.count;
  slo.p50_us = snap.Percentile(50.0);
  slo.p99_us = snap.Percentile(99.0);
  slo.mean_us = snap.mean();
  return slo;
}

}  // namespace revere::serve
