#ifndef REVERE_SERVE_SERVER_H_
#define REVERE_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bounded_queue.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/piazza/breaker.h"
#include "src/piazza/pdms.h"
#include "src/piazza/reformulation.h"
#include "src/query/cq.h"
#include "src/storage/value.h"

namespace revere::serve {

/// The overload-safe serving front end (ISSUE 6): RevereServer wraps a
/// PdmsNetwork behind admission control, so the reformulated-answer
/// path the paper's §3 argues for stays *interactive* when peers are
/// slow, flaky, or dead and when offered load exceeds capacity.
///
/// The pipeline per request:
///
///   Submit ──► admission ──► lane queue ──► worker ──► Answer ──► future
///              │ shed: queue full, or deadline already unmeetable
///              ▼ (kUnavailable + retry_after hint, never queued)
///
/// Guarantees:
///  - Every Submit resolves its future exactly once — shed at
///    admission, failed, timed out, or completed; nothing is lost on
///    shutdown (queued requests drain before workers exit).
///  - Bounded memory: each lane's queue is a BoundedQueue; beyond
///    capacity the server sheds instead of queueing (load shedding, not
///    queueing collapse).
///  - End-to-end deadlines: a request's remaining budget rides into
///    PdmsNetwork::Answer through NetworkCostModel::deadline, so an
///    overloaded request degrades to a best-effort partial answer with
///    an honest CompletenessReport.
///  - Per-peer circuit breakers + a global retry budget (owned by the
///    server) keep dead peers and retry storms from amplifying load.

/// Priority lanes. Interactive traffic (a user waiting on a portal
/// query) is always served before crawl/updategram-style batch work.
enum class Lane { kInteractive, kBatch };

/// "interactive" or "batch".
const char* LaneToString(Lane lane);

struct ServeOptions {
  /// Worker threads answering queries (clamped to >= 1).
  size_t workers = 2;
  /// Per-lane admission queue capacity; pushes beyond it shed.
  size_t queue_capacity = 64;
  /// Default per-request deadline budget in wall-clock ms; 0 = none.
  /// Individual requests may override it.
  double default_deadline_ms = 0.0;
  /// Shed at admission when the estimated queue wait alone already
  /// exceeds the request's deadline budget — failing in O(1) beats
  /// queueing a request that is guaranteed to time out.
  bool shed_unmeetable = true;
  /// Circuit-breaker tuning for the server-owned BreakerSet.
  piazza::BreakerOptions breaker;
  /// Enable the per-peer breakers (on by default; the bench's
  /// breaker-off arm and the byte-identity oracles turn them off).
  bool use_breakers = true;
  /// Global retry budget: capacity and per-success refill.
  double retry_budget_capacity = 64.0;
  double retry_budget_refill = 0.1;
  /// Reformulation knobs for every request.
  piazza::ReformulationOptions reform;
  /// Execution cost model template: fault injector, retry policy,
  /// failure policy, eval options. The server fills `deadline`,
  /// `breakers`, and `retry_budget` per request; `failure_policy`
  /// defaults here to best-effort, the serving-appropriate choice.
  piazza::NetworkCostModel cost;
  /// Mirror serve.* counters/histograms/gauges into the process-wide
  /// obs::MetricsRegistry (SLO reporting straight from the registry).
  bool metrics = true;

  ServeOptions() { cost.failure_policy = piazza::FailurePolicy::kBestEffort; }
};

struct ServeRequest {
  query::ConjunctiveQuery query;
  Lane lane = Lane::kInteractive;
  /// Wall-clock deadline budget in ms, from submission. < 0 uses
  /// ServeOptions::default_deadline_ms; 0 means no deadline.
  double deadline_ms = -1.0;
};

struct ServeResult {
  /// Ok (answer below, possibly partial — see stats.completeness),
  /// kUnavailable (shed at admission; see retry_after_ms), or
  /// kDeadlineExceeded (admitted but the deadline expired before any
  /// partial answer existed).
  Status status;
  std::vector<storage::Row> rows;
  piazza::ExecutionStats stats;
  /// True when the request never entered a queue (load shedding).
  bool shed = false;
  /// When shed: how long the client should wait before retrying,
  /// estimated from queue depth x observed mean service time.
  double retry_after_ms = 0.0;
  /// Time spent queued before a worker picked the request up (µs).
  double queue_wait_us = 0.0;
  /// Time inside PdmsNetwork::Answer (µs).
  double service_us = 0.0;
};

/// Exact server-side accounting, for tests and SLO reports. All
/// counters are monotone; the invariants tests assert:
///   submitted == admitted + shed_queue_full + shed_unmeetable
///   admitted  == completed + deadline_exceeded + failed  (once idle)
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_unmeetable = 0;
  uint64_t completed = 0;           ///< Ok results (partial ones included)
  uint64_t deadline_exceeded = 0;   ///< admitted, then kDeadlineExceeded
  uint64_t failed = 0;              ///< admitted, then any other error
  uint64_t breaker_skips = 0;       ///< contacts suppressed by breakers
  uint64_t retries_denied = 0;      ///< retries suppressed by the budget
  size_t queue_depth_interactive = 0;
  size_t queue_depth_batch = 0;
};

/// Per-lane latency SLO, computed from the server's own histograms (the
/// same distributions stream into the registry as serve.*latency_us).
struct LaneSlo {
  uint64_t completed = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

class RevereServer {
 public:
  /// `net` must outlive the server. The server owns its BreakerSet and
  /// RetryBudget; the fault injector (if any) stays caller-owned inside
  /// `options.cost.faults`.
  RevereServer(const piazza::PdmsNetwork* net, ServeOptions options);
  ~RevereServer();

  RevereServer(const RevereServer&) = delete;
  RevereServer& operator=(const RevereServer&) = delete;

  /// Admission-controlled submit. Never blocks: a shed request's future
  /// is ready immediately. The future is always eventually resolved.
  std::future<ServeResult> Submit(ServeRequest request);

  /// Convenience: Submit + wait.
  ServeResult SubmitAndWait(ServeRequest request);

  /// Stops accepting (subsequent Submits shed with kUnavailable),
  /// drains both queues, and joins the workers. Idempotent; also run by
  /// the destructor.
  void Shutdown();

  /// Point-in-time accounting snapshot.
  ServerStats Snapshot() const;

  /// End-to-end latency percentiles for one lane (completed requests).
  LaneSlo Slo(Lane lane) const;

  /// The server-owned breaker set (for tests/benches to inspect states;
  /// nullptr when options.use_breakers is false).
  piazza::BreakerSet* breakers() { return breakers_.get(); }
  piazza::RetryBudget* retry_budget() { return &retry_budget_; }

 private:
  struct Ticket {
    ServeRequest request;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // ::max() = none
  };

  void WorkerLoop();
  /// Serves one ticket end to end and resolves its promise.
  void Serve(Ticket ticket);
  /// Estimated ms until a new arrival in `lane` would start service.
  double EstimatedQueueWaitMs(Lane lane) const;
  /// The shed hint: the wait estimate, floored to 1 ms when unlearned.
  double RetryAfterMs(Lane lane) const;
  /// Resolves a shed request's promise and bumps the shed accounting.
  std::future<ServeResult> Shed(ServeRequest request, uint64_t* counter,
                                const char* why);
  BoundedQueue<Ticket>& lane_queue(Lane lane) {
    return lane == Lane::kInteractive ? interactive_ : batch_;
  }

  const piazza::PdmsNetwork* net_;
  const ServeOptions options_;
  std::unique_ptr<piazza::BreakerSet> breakers_;
  piazza::RetryBudget retry_budget_;

  BoundedQueue<Ticket> interactive_;
  BoundedQueue<Ticket> batch_;

  /// Wakes workers when either lane has work or shutdown begins.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  /// Exact accounting (guarded by mu_ where multi-field consistency
  /// matters; see Snapshot()).
  mutable std::mutex stats_mu_;
  ServerStats stats_;
  /// EWMA of service time per lane, ms — the retry_after / unmeetable
  /// estimator. Starts at 0 (optimistic until measured): a pessimistic
  /// prior would shed a never-served lane forever, because the estimate
  /// only learns from requests that actually run. The first completed
  /// request sets it directly; later ones blend.
  double ewma_service_ms_[2] = {0.0, 0.0};

  /// Per-lane end-to-end latency distributions (queue wait + service).
  obs::Histogram interactive_latency_us_;
  obs::Histogram batch_latency_us_;

  /// Registry mirrors (resolved once; null when metrics are off).
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_shed_queue_full_ = nullptr;
  obs::Counter* m_shed_unmeetable_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_deadline_exceeded_ = nullptr;
  obs::Counter* m_breaker_skips_ = nullptr;
  obs::Gauge* m_queue_interactive_ = nullptr;
  obs::Gauge* m_queue_batch_ = nullptr;
  obs::Histogram* m_interactive_latency_ = nullptr;
  obs::Histogram* m_batch_latency_ = nullptr;
};

}  // namespace revere::serve

#endif  // REVERE_SERVE_SERVER_H_
