#include "src/storage/column_table.h"

namespace revere::storage {

std::shared_ptr<const ColumnTable> ColumnTable::Build(
    const std::vector<Row>& rows, size_t arity, uint64_t generation) {
  auto ct = std::shared_ptr<ColumnTable>(new ColumnTable());
  ct->generation_ = generation;
  ct->row_count_ = rows.size();
  ct->columns_.resize(arity);
  for (size_t col = 0; col < arity; ++col) {
    Column& c = ct->columns_[col];
    c.codes.reserve(rows.size());
    // Encode: one dictionary probe per cell; dictionaries stay dense
    // and deterministic because codes are assigned in row order.
    for (const Row& row : rows) {
      auto [it, inserted] = c.code_of.emplace(
          row[col], static_cast<uint32_t>(c.dict.size()));
      if (inserted) c.dict.push_back(row[col]);
      c.codes.push_back(it->second);
    }
    // Grouped index: stable counting sort by code. Within a code, rows
    // stay in ascending order — the enumeration order every other
    // access path (LookupIndices chains, scans) also uses, which the
    // byte-identical-answers contract depends on.
    c.group_offsets.assign(c.dict.size() + 1, 0);
    for (uint32_t code : c.codes) ++c.group_offsets[code + 1];
    for (size_t i = 1; i < c.group_offsets.size(); ++i) {
      c.group_offsets[i] += c.group_offsets[i - 1];
    }
    c.group_rows.resize(c.codes.size());
    std::vector<uint32_t> cursor(c.group_offsets.begin(),
                                 c.group_offsets.end() - 1);
    for (uint32_t r = 0; r < c.codes.size(); ++r) {
      c.group_rows[cursor[c.codes[r]]++] = r;
    }
    ct->dict_entries_ += c.dict.size();
  }
  return ct;
}

uint32_t ColumnTable::CodeOf(size_t col, const Value& v) const {
  const Column& c = columns_[col];
  auto it = c.code_of.find(v);
  return it == c.code_of.end() ? kNoCode : it->second;
}

}  // namespace revere::storage
