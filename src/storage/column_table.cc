#include "src/storage/column_table.h"

#include "src/common/simd.h"

namespace revere::storage {

std::shared_ptr<const ColumnTable> ColumnTable::Build(
    const std::vector<Row>& rows, size_t arity, uint64_t generation) {
  return Build(
      rows.size(), [&rows](size_t i) -> const Row& { return rows[i]; },
      arity, generation);
}

std::shared_ptr<const ColumnTable> ColumnTable::Build(
    size_t row_count, const std::function<const Row&(size_t)>& row_at,
    size_t arity, uint64_t generation) {
  auto ct = std::shared_ptr<ColumnTable>(new ColumnTable());
  ct->generation_ = generation;
  ct->row_count_ = row_count;
  ct->columns_.resize(arity);
  for (size_t col = 0; col < arity; ++col) {
    Column& c = ct->columns_[col];
    c.codes.reserve(row_count);
    // Encode: one dictionary probe per cell; dictionaries stay dense
    // and deterministic because codes are assigned in row order.
    for (size_t r = 0; r < row_count; ++r) {
      const Row& row = row_at(r);
      auto [it, inserted] = c.code_of.emplace(
          row[col], static_cast<uint32_t>(c.dict.size()));
      if (inserted) c.dict.push_back(row[col]);
      c.codes.push_back(it->second);
    }
    // Grouped index: stable counting sort by code. Within a code, rows
    // stay in ascending order — the enumeration order every other
    // access path (LookupIndices chains, scans) also uses, which the
    // byte-identical-answers contract depends on.
    c.group_offsets.assign(c.dict.size() + 1, 0);
    for (uint32_t code : c.codes) ++c.group_offsets[code + 1];
    for (size_t i = 1; i < c.group_offsets.size(); ++i) {
      c.group_offsets[i] += c.group_offsets[i - 1];
    }
    c.group_rows.resize(c.codes.size());
    std::vector<uint32_t> cursor(c.group_offsets.begin(),
                                 c.group_offsets.end() - 1);
    for (uint32_t r = 0; r < c.codes.size(); ++r) {
      c.group_rows[cursor[c.codes[r]]++] = r;
    }
    // Code-domain value hashes: dict_hashes[code] == dict[code].Hash(),
    // the per-column table the SIMD hash_mix kernel gathers through.
    c.dict_hashes.reserve(c.dict.size() + simd::kPad);
    for (const Value& v : c.dict) c.dict_hashes.push_back(v.Hash());
    // SIMD padding (ISSUE 8): whole-lane kernels may read up to kPad
    // elements past `row_count` in codes/group_rows, and hash_mix may
    // gather dict_hashes[0] through padded code 0. Zero is a valid row
    // id / code whenever the table is non-empty, and kernels mask the
    // tail lanes out of every result.
    c.codes.resize(c.codes.size() + simd::kPad, 0);
    c.group_rows.resize(c.group_rows.size() + simd::kPad, 0);
    c.dict_hashes.resize(c.dict_hashes.size() + simd::kPad, 0);
    ct->dict_entries_ += c.dict.size();
  }
  return ct;
}

uint32_t ColumnTable::CodeOf(size_t col, const Value& v) const {
  const Column& c = columns_[col];
  auto it = c.code_of.find(v);
  return it == c.code_of.end() ? kNoCode : it->second;
}

}  // namespace revere::storage
