#include "src/storage/schema.h"

namespace revere::storage {

TableSchema TableSchema::AllStrings(
    std::string name, const std::vector<std::string>& column_names) {
  std::vector<Column> cols;
  cols.reserve(column_names.size());
  for (const auto& cn : column_names) {
    cols.push_back(Column{cn, ValueType::kString});
  }
  return TableSchema(std::move(name), std::move(cols));
}

std::optional<size_t> TableSchema::ColumnIndex(
    const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return std::nullopt;
}

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()) + " for " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          ValueTypeToString(columns_[i].type) + ", got " +
          ValueTypeToString(row[i].type()));
    }
  }
  return Status::Ok();
}

std::string TableSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

bool TableSchema::operator==(const TableSchema& other) const {
  if (name_ != other.name_ || columns_.size() != other.columns_.size()) {
    return false;
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace revere::storage
