#ifndef REVERE_STORAGE_VALUE_H_
#define REVERE_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace revere::storage {

/// Column/value types supported by the relational substrate.
enum class ValueType { kNull, kBool, kInt, kDouble, kString };

const char* ValueTypeToString(ValueType type);

/// A single typed cell. Values are small, copyable, and totally ordered
/// (nulls sort first; cross-type comparison orders by type tag so sorting
/// heterogeneous columns is still deterministic).
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(int i) : data_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: ints widen to double; other types return 0.
  double AsNumber() const;

  /// Render for display/serialization ("NULL" for nulls).
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// One relational tuple.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive).
size_t HashRow(const Row& row);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHash {
  size_t operator()(const Row& r) const { return HashRow(r); }
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_VALUE_H_
