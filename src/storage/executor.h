#ifndef REVERE_STORAGE_EXECUTOR_H_
#define REVERE_STORAGE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/storage/table.h"
#include "src/storage/value.h"

namespace revere::storage {

/// Comparison operators for declarative predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Evaluates `lhs op rhs` using Value's total order.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// Pull-based (Volcano) operator. Call Open() once, then Next() until it
/// returns false. Operators own their children.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Output column names, positionally aligned with produced rows.
  virtual const std::vector<std::string>& output_columns() const = 0;

  /// Resets the operator (and children) to the start of its stream.
  virtual void Open() = 0;

  /// Produces the next row into `*out`; false at end of stream.
  virtual bool Next(Row* out) = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full-table scan. Open() pins an MVCC snapshot held for the
/// iterator's lifetime, so a scan mid-stream never sees (or races) a
/// concurrent writer — re-Open() re-pins the then-current version.
class ScanOp : public Operator {
 public:
  explicit ScanOp(const Table* table);
  const std::vector<std::string>& output_columns() const override {
    return columns_;
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  const Table* table_;
  std::shared_ptr<const TableVersion> snap_;
  std::vector<std::string> columns_;
  size_t pos_ = 0;
};

/// Index-assisted scan of rows where table[column] == key. Matches are
/// resolved against the snapshot pinned at Open(), and rows are read
/// from that same version for the iterator's lifetime.
class IndexLookupOp : public Operator {
 public:
  IndexLookupOp(const Table* table, size_t column, Value key);
  const std::vector<std::string>& output_columns() const override {
    return columns_;
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  const Table* table_;
  std::shared_ptr<const TableVersion> snap_;
  size_t column_;
  Value key_;
  std::vector<std::string> columns_;
  std::vector<size_t> matches_;
  size_t pos_ = 0;
  bool opened_ = false;
};

/// Filters by an arbitrary row predicate.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::function<bool(const Row&)> pred);

  /// Convenience: column-vs-constant comparison filter.
  static OperatorPtr Compare(OperatorPtr child, size_t column, CompareOp op,
                             Value rhs);

  const std::vector<std::string>& output_columns() const override {
    return child_->output_columns();
  }
  void Open() override { child_->Open(); }
  bool Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::function<bool(const Row&)> pred_;
};

/// Projects (and optionally renames) a subset of columns.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<size_t> keep,
            std::vector<std::string> names = {});
  const std::vector<std::string>& output_columns() const override {
    return columns_;
  }
  void Open() override { child_->Open(); }
  bool Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::vector<size_t> keep_;
  std::vector<std::string> columns_;
};

/// Hash equi-join on one key column per side. Builds on the right input.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, size_t left_key,
             size_t right_key);
  const std::vector<std::string>& output_columns() const override {
    return columns_;
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  size_t left_key_;
  size_t right_key_;
  std::vector<std::string> columns_;
  std::unordered_map<Value, std::vector<Row>, ValueHash> build_;
  Row current_left_;
  const std::vector<Row>* probe_matches_ = nullptr;
  size_t probe_pos_ = 0;
  bool built_ = false;
};

/// Aggregate functions.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

struct AggregateSpec {
  AggFunc func = AggFunc::kCount;
  size_t column = 0;  // ignored for kCount
  std::string output_name = "agg";
};

/// Hash group-by with aggregates. Output columns: group columns (in the
/// given order) followed by one column per aggregate.
class AggregateOp : public Operator {
 public:
  AggregateOp(OperatorPtr child, std::vector<size_t> group_by,
              std::vector<AggregateSpec> aggs);
  const std::vector<std::string>& output_columns() const override {
    return columns_;
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::vector<size_t> group_by_;
  std::vector<AggregateSpec> aggs_;
  std::vector<std::string> columns_;
  std::vector<Row> results_;
  size_t pos_ = 0;
  bool computed_ = false;
};

/// In-memory sort by the given key columns (ascending; stable).
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<size_t> keys);
  const std::vector<std::string>& output_columns() const override {
    return child_->output_columns();
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::vector<size_t> keys_;
  std::vector<Row> sorted_;
  size_t pos_ = 0;
  bool materialized_ = false;
};

/// Set-semantics duplicate elimination.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);
  const std::vector<std::string>& output_columns() const override {
    return child_->output_columns();
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::unordered_set<Row, RowHash> seen_;
};

/// Concatenation of same-arity inputs (bag union).
class UnionAllOp : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children);
  const std::vector<std::string>& output_columns() const override {
    return columns_;
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  std::vector<OperatorPtr> children_;
  std::vector<std::string> columns_;
  size_t current_ = 0;
};

/// First `limit` rows.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit);
  const std::vector<std::string>& output_columns() const override {
    return child_->output_columns();
  }
  void Open() override;
  bool Next(Row* out) override;

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t produced_ = 0;
};

/// Drains `op` (Open + Next loop) into a vector.
std::vector<Row> Collect(Operator* op);

}  // namespace revere::storage

#endif  // REVERE_STORAGE_EXECUTOR_H_
