#include "src/storage/executor.h"

#include <algorithm>
#include <cassert>

namespace revere::storage {

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CompareOp::kGt:
      return rhs < lhs;
    case CompareOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

namespace {
std::vector<std::string> SchemaColumnNames(const TableSchema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.arity());
  for (const auto& c : schema.columns()) names.push_back(c.name);
  return names;
}
}  // namespace

// ---------------------------------------------------------------- ScanOp

ScanOp::ScanOp(const Table* table)
    : table_(table), columns_(SchemaColumnNames(table->schema())) {}

void ScanOp::Open() {
  snap_ = table_->Snapshot();
  pos_ = 0;
}

bool ScanOp::Next(Row* out) {
  if (snap_ == nullptr || pos_ >= snap_->size()) return false;
  *out = snap_->row(pos_++);
  return true;
}

// --------------------------------------------------------- IndexLookupOp

IndexLookupOp::IndexLookupOp(const Table* table, size_t column, Value key)
    : table_(table),
      column_(column),
      key_(std::move(key)),
      columns_(SchemaColumnNames(table->schema())) {}

void IndexLookupOp::Open() {
  snap_ = table_->Snapshot();
  matches_ = snap_->LookupIndices(column_, key_);
  pos_ = 0;
  opened_ = true;
}

bool IndexLookupOp::Next(Row* out) {
  assert(opened_);
  if (pos_ >= matches_.size()) return false;
  *out = snap_->row(matches_[pos_++]);
  return true;
}

// -------------------------------------------------------------- FilterOp

FilterOp::FilterOp(OperatorPtr child, std::function<bool(const Row&)> pred)
    : child_(std::move(child)), pred_(std::move(pred)) {}

OperatorPtr FilterOp::Compare(OperatorPtr child, size_t column, CompareOp op,
                              Value rhs) {
  return std::make_unique<FilterOp>(
      std::move(child), [column, op, rhs = std::move(rhs)](const Row& r) {
        return column < r.size() && EvalCompare(r[column], op, rhs);
      });
}

bool FilterOp::Next(Row* out) {
  while (child_->Next(out)) {
    if (pred_(*out)) return true;
  }
  return false;
}

// ------------------------------------------------------------- ProjectOp

ProjectOp::ProjectOp(OperatorPtr child, std::vector<size_t> keep,
                     std::vector<std::string> names)
    : child_(std::move(child)), keep_(std::move(keep)) {
  if (!names.empty()) {
    columns_ = std::move(names);
  } else {
    const auto& in = child_->output_columns();
    for (size_t k : keep_) {
      columns_.push_back(k < in.size() ? in[k] : "?");
    }
  }
}

bool ProjectOp::Next(Row* out) {
  Row in;
  if (!child_->Next(&in)) return false;
  out->clear();
  out->reserve(keep_.size());
  for (size_t k : keep_) {
    out->push_back(k < in.size() ? in[k] : Value());
  }
  return true;
}

// ------------------------------------------------------------ HashJoinOp

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right, size_t left_key,
                       size_t right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key) {
  columns_ = left_->output_columns();
  for (const auto& c : right_->output_columns()) columns_.push_back(c);
}

void HashJoinOp::Open() {
  left_->Open();
  right_->Open();
  build_.clear();
  Row r;
  while (right_->Next(&r)) {
    build_[r[right_key_]].push_back(r);
  }
  built_ = true;
  probe_matches_ = nullptr;
  probe_pos_ = 0;
}

bool HashJoinOp::Next(Row* out) {
  assert(built_);
  while (true) {
    if (probe_matches_ != nullptr && probe_pos_ < probe_matches_->size()) {
      const Row& rhs = (*probe_matches_)[probe_pos_++];
      *out = current_left_;
      out->insert(out->end(), rhs.begin(), rhs.end());
      return true;
    }
    if (!left_->Next(&current_left_)) return false;
    auto it = build_.find(current_left_[left_key_]);
    probe_matches_ = it == build_.end() ? nullptr : &it->second;
    probe_pos_ = 0;
  }
}

// ----------------------------------------------------------- AggregateOp

AggregateOp::AggregateOp(OperatorPtr child, std::vector<size_t> group_by,
                         std::vector<AggregateSpec> aggs)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  const auto& in = child_->output_columns();
  for (size_t g : group_by_) {
    columns_.push_back(g < in.size() ? in[g] : "?");
  }
  for (const auto& a : aggs_) columns_.push_back(a.output_name);
}

void AggregateOp::Open() {
  child_->Open();
  results_.clear();
  pos_ = 0;

  struct AggState {
    double sum = 0.0;
    size_t count = 0;
    Value min, max;
    bool has_extreme = false;
  };
  std::unordered_map<Row, std::vector<AggState>, RowHash> groups;
  std::vector<Row> group_order;  // deterministic output order

  Row r;
  while (child_->Next(&r)) {
    Row key;
    key.reserve(group_by_.size());
    for (size_t g : group_by_) key.push_back(r[g]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(aggs_.size())).first;
      group_order.push_back(key);
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      AggState& st = it->second[i];
      ++st.count;
      if (aggs_[i].func == AggFunc::kCount) continue;
      const Value& v = r[aggs_[i].column];
      st.sum += v.AsNumber();
      if (!st.has_extreme) {
        st.min = v;
        st.max = v;
        st.has_extreme = true;
      } else {
        if (v < st.min) st.min = v;
        if (st.max < v) st.max = v;
      }
    }
  }
  for (const auto& key : group_order) {
    const auto& states = groups[key];
    Row out = key;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggState& st = states[i];
      switch (aggs_[i].func) {
        case AggFunc::kCount:
          out.push_back(Value(static_cast<int64_t>(st.count)));
          break;
        case AggFunc::kSum:
          out.push_back(Value(st.sum));
          break;
        case AggFunc::kAvg:
          out.push_back(
              Value(st.count == 0 ? 0.0 : st.sum / double(st.count)));
          break;
        case AggFunc::kMin:
          out.push_back(st.min);
          break;
        case AggFunc::kMax:
          out.push_back(st.max);
          break;
      }
    }
    results_.push_back(std::move(out));
  }
  computed_ = true;
}

bool AggregateOp::Next(Row* out) {
  assert(computed_);
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

// ---------------------------------------------------------------- SortOp

SortOp::SortOp(OperatorPtr child, std::vector<size_t> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

void SortOp::Open() {
  child_->Open();
  sorted_.clear();
  Row r;
  while (child_->Next(&r)) sorted_.push_back(r);
  std::stable_sort(sorted_.begin(), sorted_.end(),
                   [this](const Row& a, const Row& b) {
                     for (size_t k : keys_) {
                       if (a[k] < b[k]) return true;
                       if (b[k] < a[k]) return false;
                     }
                     return false;
                   });
  pos_ = 0;
  materialized_ = true;
}

bool SortOp::Next(Row* out) {
  assert(materialized_);
  if (pos_ >= sorted_.size()) return false;
  *out = sorted_[pos_++];
  return true;
}

// ------------------------------------------------------------ DistinctOp

DistinctOp::DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

void DistinctOp::Open() {
  child_->Open();
  seen_.clear();
}

bool DistinctOp::Next(Row* out) {
  while (child_->Next(out)) {
    if (seen_.insert(*out).second) return true;
  }
  return false;
}

// ------------------------------------------------------------ UnionAllOp

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {
  if (!children_.empty()) columns_ = children_.front()->output_columns();
}

void UnionAllOp::Open() {
  for (auto& c : children_) c->Open();
  current_ = 0;
}

bool UnionAllOp::Next(Row* out) {
  while (current_ < children_.size()) {
    if (children_[current_]->Next(out)) return true;
    ++current_;
  }
  return false;
}

// --------------------------------------------------------------- LimitOp

LimitOp::LimitOp(OperatorPtr child, size_t limit)
    : child_(std::move(child)), limit_(limit) {}

void LimitOp::Open() {
  child_->Open();
  produced_ = 0;
}

bool LimitOp::Next(Row* out) {
  if (produced_ >= limit_) return false;
  if (!child_->Next(out)) return false;
  ++produced_;
  return true;
}

// ----------------------------------------------------------------- misc

std::vector<Row> Collect(Operator* op) {
  std::vector<Row> out;
  op->Open();
  Row r;
  while (op->Next(&r)) out.push_back(r);
  return out;
}

}  // namespace revere::storage
