#ifndef REVERE_STORAGE_SCHEMA_H_
#define REVERE_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/value.h"

namespace revere::storage {

/// One column of a relational schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

/// Schema of one relation: a name plus an ordered list of typed columns.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  /// Convenience: all-string columns from names alone (the common case in
  /// REVERE, where annotation data is textual).
  static TableSchema AllStrings(std::string name,
                                const std::vector<std::string>& column_names);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }

  /// Index of `column_name`, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& column_name) const;

  /// Checks `row` against arity and column types (null always allowed).
  Status ValidateRow(const Row& row) const;

  /// "name(col1:TYPE, col2:TYPE, ...)".
  std::string ToString() const;

  bool operator==(const TableSchema& other) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_SCHEMA_H_
