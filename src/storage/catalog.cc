#include "src/storage/catalog.h"

namespace revere::storage {

Result<Table*> Catalog::CreateTable(TableSchema schema) {
  const std::string name = schema.name();  // copy: schema is moved below
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table '" + name + "'");
  }
  return Status::Ok();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

}  // namespace revere::storage
