#ifndef REVERE_STORAGE_CATALOG_H_
#define REVERE_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/table.h"

namespace revere::storage {

/// Owns a database's tables by name. Each REVERE peer holds one Catalog
/// for its stored relations.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; AlreadyExists if the name is taken.
  Result<Table*> CreateTable(TableSchema schema);

  /// Looks up a table; NotFound when absent.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// All table names, sorted (map keeps them ordered).
  std::vector<std::string> TableNames() const;

  size_t table_count() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_CATALOG_H_
