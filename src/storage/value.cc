#include "src/storage/value.h"

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace revere::storage {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

double Value::AsNumber() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    case ValueType::kBool:
      return as_bool() ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble:
      return FormatDouble(as_double(), 6);
    case ValueType::kString:
      return as_string();
  }
  return "";
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    // Numeric types compare by value across int/double.
    bool a_num = type() == ValueType::kInt || type() == ValueType::kDouble;
    bool b_num =
        other.type() == ValueType::kInt || other.type() == ValueType::kDouble;
    if (a_num && b_num) return AsNumber() < other.AsNumber();
    return data_.index() < other.data_.index();
  }
  return data_ < other.data_;
}

size_t Value::Hash() const {
  size_t seed = data_.index();
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      HashCombine(&seed, as_bool());
      break;
    case ValueType::kInt:
      HashCombine(&seed, as_int());
      break;
    case ValueType::kDouble:
      HashCombine(&seed, as_double());
      break;
    case ValueType::kString:
      HashCombine(&seed, as_string());
      break;
  }
  return seed;
}

size_t HashRow(const Row& row) {
  // Chains HashStep over the value hashes directly (no std::hash
  // re-hash of an already-hashed value) so the columnar output boundary
  // can reproduce this exactly from ColumnTable::dict_hashes.
  size_t seed = row.size();
  for (const auto& v : row) seed = HashStep(seed, v.Hash());
  return seed;
}

}  // namespace revere::storage
