#include "src/storage/table.h"

#include <algorithm>
#include <mutex>

namespace revere::storage {

Table::Table(Table&& other) noexcept
    : schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      indexes_(std::move(other.indexes_)),
      index_dirty_(other.index_dirty_) {}

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    indexes_ = std::move(other.indexes_);
    index_dirty_ = other.index_dirty_;
  }
  return *this;
}

Status Table::Insert(Row row) {
  REVERE_RETURN_IF_ERROR(schema_.ValidateRow(row));
  size_t idx = rows_.size();
  {
    std::unique_lock lock(index_mu_);
    if (!index_dirty_) {
      for (auto& [col, index] : indexes_) {
        index[row[col]].push_back(idx);
      }
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Status Table::InsertAll(const std::vector<Row>& rows) {
  for (const auto& r : rows) {
    REVERE_RETURN_IF_ERROR(Insert(r));
  }
  return Status::Ok();
}

Status Table::Delete(const Row& row) {
  auto it = std::find(rows_.begin(), rows_.end(), row);
  if (it == rows_.end()) {
    return Status::NotFound("row not present in " + schema_.name());
  }
  rows_.erase(it);
  std::unique_lock lock(index_mu_);
  index_dirty_ = true;
  return Status::Ok();
}

size_t Table::DeleteWhere(size_t column, const Value& key) {
  if (column >= schema_.arity()) return 0;
  size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [&](const Row& r) { return r[column] == key; }),
              rows_.end());
  size_t removed = before - rows_.size();
  if (removed > 0) {
    std::unique_lock lock(index_mu_);
    index_dirty_ = true;
  }
  return removed;
}

void Table::Clear() {
  rows_.clear();
  std::unique_lock lock(index_mu_);
  for (auto& [col, index] : indexes_) index.clear();
  index_dirty_ = false;
}

void Table::BuildIndexLocked(size_t column) const {
  auto& index = indexes_[column];
  index.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    index[rows_[i][column]].push_back(i);
  }
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_.arity()) {
    return Status::OutOfRange("no column " + std::to_string(column) + " in " +
                              schema_.name());
  }
  std::unique_lock lock(index_mu_);
  BuildIndexLocked(column);
  return Status::Ok();
}

Status Table::EnsureIndex(size_t column) const {
  if (column >= schema_.arity()) {
    return Status::OutOfRange("no column " + std::to_string(column) + " in " +
                              schema_.name());
  }
  {
    std::shared_lock lock(index_mu_);
    if (!index_dirty_ && indexes_.count(column) > 0) return Status::Ok();
  }
  std::unique_lock lock(index_mu_);
  ReindexIfDirtyLocked();
  // Double-checked: another thread may have built it between the locks.
  if (indexes_.count(column) == 0) BuildIndexLocked(column);
  return Status::Ok();
}

bool Table::HasIndex(size_t column) const {
  std::shared_lock lock(index_mu_);
  return indexes_.count(column) > 0;
}

size_t Table::index_count() const {
  std::shared_lock lock(index_mu_);
  return indexes_.size();
}

void Table::ReindexIfDirtyLocked() const {
  if (!index_dirty_) return;
  for (auto& [col, index] : indexes_) {
    index.clear();
    for (size_t i = 0; i < rows_.size(); ++i) {
      index[rows_[i][col]].push_back(i);
    }
  }
  index_dirty_ = false;
}

std::vector<size_t> Table::LookupIndices(size_t column,
                                         const Value& key) const {
  std::vector<size_t> out;
  if (column >= schema_.arity()) return out;
  bool indexed = false;
  {
    std::shared_lock lock(index_mu_);
    auto idx_it = indexes_.find(column);
    indexed = idx_it != indexes_.end();
    if (indexed && !index_dirty_) {
      auto hit = idx_it->second.find(key);
      if (hit != idx_it->second.end()) return hit->second;
      return out;
    }
  }
  if (indexed) {
    // Indexed but dirty: rebuild under the exclusive lock, then probe.
    std::unique_lock lock(index_mu_);
    ReindexIfDirtyLocked();
    auto idx_it = indexes_.find(column);
    auto hit = idx_it->second.find(key);
    if (hit != idx_it->second.end()) return hit->second;
    return out;
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i][column] == key) out.push_back(i);
  }
  return out;
}

std::vector<Row> Table::Lookup(size_t column, const Value& key) const {
  std::vector<Row> out;
  for (size_t i : LookupIndices(column, key)) out.push_back(rows_[i]);
  return out;
}

}  // namespace revere::storage
