#include "src/storage/table.h"

#include <algorithm>

namespace revere::storage {

Status Table::Insert(Row row) {
  REVERE_RETURN_IF_ERROR(schema_.ValidateRow(row));
  size_t idx = rows_.size();
  if (!index_dirty_) {
    for (auto& [col, index] : indexes_) {
      index[row[col]].push_back(idx);
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Status Table::InsertAll(const std::vector<Row>& rows) {
  for (const auto& r : rows) {
    REVERE_RETURN_IF_ERROR(Insert(r));
  }
  return Status::Ok();
}

Status Table::Delete(const Row& row) {
  auto it = std::find(rows_.begin(), rows_.end(), row);
  if (it == rows_.end()) {
    return Status::NotFound("row not present in " + schema_.name());
  }
  rows_.erase(it);
  index_dirty_ = true;
  return Status::Ok();
}

size_t Table::DeleteWhere(size_t column, const Value& key) {
  if (column >= schema_.arity()) return 0;
  size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [&](const Row& r) { return r[column] == key; }),
              rows_.end());
  size_t removed = before - rows_.size();
  if (removed > 0) index_dirty_ = true;
  return removed;
}

void Table::Clear() {
  rows_.clear();
  for (auto& [col, index] : indexes_) index.clear();
  index_dirty_ = false;
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_.arity()) {
    return Status::OutOfRange("no column " + std::to_string(column) + " in " +
                              schema_.name());
  }
  auto& index = indexes_[column];
  index.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    index[rows_[i][column]].push_back(i);
  }
  return Status::Ok();
}

bool Table::HasIndex(size_t column) const {
  return indexes_.count(column) > 0;
}

void Table::ReindexIfDirty() const {
  if (!index_dirty_) return;
  for (auto& [col, index] : indexes_) {
    index.clear();
    for (size_t i = 0; i < rows_.size(); ++i) {
      index[rows_[i][col]].push_back(i);
    }
  }
  index_dirty_ = false;
}

std::vector<size_t> Table::LookupIndices(size_t column,
                                         const Value& key) const {
  std::vector<size_t> out;
  if (column >= schema_.arity()) return out;
  auto idx_it = indexes_.find(column);
  if (idx_it != indexes_.end()) {
    ReindexIfDirty();
    auto hit = idx_it->second.find(key);
    if (hit != idx_it->second.end()) return hit->second;
    return out;
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i][column] == key) out.push_back(i);
  }
  return out;
}

std::vector<Row> Table::Lookup(size_t column, const Value& key) const {
  std::vector<Row> out;
  for (size_t i : LookupIndices(column, key)) out.push_back(rows_[i]);
  return out;
}

}  // namespace revere::storage
