#include "src/storage/table.h"

#include <algorithm>
#include <mutex>

namespace revere::storage {

Table::Table(Table&& other) noexcept {
  // The source's index cache may be mid-build on another thread
  // (EnsureIndex is const and runs from concurrent readers), so its
  // mutable state must be read under its lock even during a move.
  std::unique_lock other_lock(other.index_mu_);
  schema_ = std::move(other.schema_);
  rows_ = std::move(other.rows_);
  indexes_ = std::move(other.indexes_);
  index_dirty_ = other.index_dirty_;
  generation_ = other.generation_;
  columnar_ = std::move(other.columnar_);
}

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) {
    // Lock both objects' index caches; scoped_lock orders acquisition
    // to avoid deadlock when two threads cross-assign.
    std::scoped_lock locks(index_mu_, other.index_mu_);
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    indexes_ = std::move(other.indexes_);
    index_dirty_ = other.index_dirty_;
    generation_ = other.generation_;
    columnar_ = std::move(other.columnar_);
  }
  return *this;
}

Status Table::Insert(Row row) {
  REVERE_RETURN_IF_ERROR(schema_.ValidateRow(row));
  std::unique_lock lock(index_mu_);
  // Append first, then publish index entries, all inside one critical
  // section: a concurrent LookupIndices can never observe an index
  // entry whose row is not yet in rows_ (the pre-fix ordering published
  // rows_.size() before the push_back, handing readers a dangling row
  // index).
  size_t idx = rows_.size();
  rows_.push_back(std::move(row));
  if (!index_dirty_) {
    const Row& stored = rows_.back();
    for (auto& [col, index] : indexes_) {
      index[stored[col]].push_back(idx);
    }
  }
  ++generation_;
  columnar_.reset();
  return Status::Ok();
}

Status Table::InsertAll(const std::vector<Row>& rows) {
  // All-or-nothing: validate every row before touching storage, so an
  // invalid row anywhere in the batch leaves the table exactly as it
  // was (no partially applied batch to account for).
  for (const auto& r : rows) {
    REVERE_RETURN_IF_ERROR(schema_.ValidateRow(r));
  }
  std::unique_lock lock(index_mu_);
  rows_.reserve(rows_.size() + rows.size());
  for (const auto& r : rows) {
    size_t idx = rows_.size();
    rows_.push_back(r);
    if (!index_dirty_) {
      const Row& stored = rows_.back();
      for (auto& [col, index] : indexes_) {
        index[stored[col]].push_back(idx);
      }
    }
  }
  if (!rows.empty()) {
    ++generation_;
    columnar_.reset();
  }
  return Status::Ok();
}

Status Table::Delete(const Row& row) {
  std::unique_lock lock(index_mu_);
  auto it = std::find(rows_.begin(), rows_.end(), row);
  if (it == rows_.end()) {
    return Status::NotFound("row not present in " + schema_.name());
  }
  rows_.erase(it);
  index_dirty_ = true;
  ++generation_;
  columnar_.reset();
  return Status::Ok();
}

size_t Table::DeleteWhere(size_t column, const Value& key) {
  if (column >= schema_.arity()) return 0;
  std::unique_lock lock(index_mu_);
  size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [&](const Row& r) { return r[column] == key; }),
              rows_.end());
  size_t removed = before - rows_.size();
  if (removed > 0) {
    index_dirty_ = true;
    ++generation_;
    columnar_.reset();
  }
  return removed;
}

void Table::Clear() {
  std::unique_lock lock(index_mu_);
  rows_.clear();
  for (auto& [col, index] : indexes_) index.clear();
  index_dirty_ = false;
  ++generation_;
  columnar_.reset();
}

size_t Table::size() const {
  std::shared_lock lock(index_mu_);
  return rows_.size();
}

uint64_t Table::generation() const {
  std::shared_lock lock(index_mu_);
  return generation_;
}

void Table::BuildIndexLocked(size_t column) const {
  auto& index = indexes_[column];
  index.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    index[rows_[i][column]].push_back(i);
  }
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_.arity()) {
    return Status::OutOfRange("no column " + std::to_string(column) + " in " +
                              schema_.name());
  }
  std::unique_lock lock(index_mu_);
  BuildIndexLocked(column);
  return Status::Ok();
}

Status Table::EnsureIndex(size_t column) const {
  if (column >= schema_.arity()) {
    return Status::OutOfRange("no column " + std::to_string(column) + " in " +
                              schema_.name());
  }
  {
    std::shared_lock lock(index_mu_);
    if (!index_dirty_ && indexes_.count(column) > 0) return Status::Ok();
  }
  std::unique_lock lock(index_mu_);
  ReindexIfDirtyLocked();
  // Double-checked: another thread may have built it between the locks.
  if (indexes_.count(column) == 0) BuildIndexLocked(column);
  return Status::Ok();
}

std::shared_ptr<const ColumnTable> Table::EnsureColumnar() const {
  {
    // Fast path: a current snapshot exists (mutators reset columnar_,
    // so presence alone proves generation match — the stamp is kept for
    // callers that audit staleness themselves).
    std::shared_lock lock(index_mu_);
    if (columnar_ != nullptr) return columnar_;
  }
  std::unique_lock lock(index_mu_);
  // Double-checked: another reader may have built it between the locks.
  if (columnar_ == nullptr) {
    columnar_ = ColumnTable::Build(rows_, schema_.arity(), generation_);
  }
  return columnar_;
}

bool Table::HasIndex(size_t column) const {
  std::shared_lock lock(index_mu_);
  return indexes_.count(column) > 0;
}

size_t Table::index_count() const {
  std::shared_lock lock(index_mu_);
  return indexes_.size();
}

void Table::ReindexIfDirtyLocked() const {
  if (!index_dirty_) return;
  for (auto& [col, index] : indexes_) {
    index.clear();
    for (size_t i = 0; i < rows_.size(); ++i) {
      index[rows_[i][col]].push_back(i);
    }
  }
  index_dirty_ = false;
}

std::vector<size_t> Table::LookupIndices(size_t column,
                                         const Value& key) const {
  std::vector<size_t> out;
  if (column >= schema_.arity()) return out;
  {
    std::shared_lock lock(index_mu_);
    auto idx_it = indexes_.find(column);
    if (idx_it == indexes_.end()) {
      // Unindexed column: scan, still under the shared lock so a
      // concurrent Insert cannot reallocate rows_ mid-iteration.
      for (size_t i = 0; i < rows_.size(); ++i) {
        if (rows_[i][column] == key) out.push_back(i);
      }
      return out;
    }
    if (!index_dirty_) {
      auto hit = idx_it->second.find(key);
      if (hit != idx_it->second.end()) return hit->second;
      return out;
    }
  }
  // Indexed but dirty: rebuild under the exclusive lock, then probe.
  std::unique_lock lock(index_mu_);
  ReindexIfDirtyLocked();
  auto idx_it = indexes_.find(column);
  if (idx_it == indexes_.end()) return out;  // defensive; never erased
  auto hit = idx_it->second.find(key);
  if (hit != idx_it->second.end()) return hit->second;
  return out;
}

}  // namespace revere::storage
