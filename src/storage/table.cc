#include "src/storage/table.h"

#include <utility>

namespace revere::storage {

/// Append helper for constructing one unpublished successor version:
/// path-copies the shared tail chunk at most once, then appends into
/// the private copy in place, opening fresh chunks as they fill. Only
/// ever touches a version no reader can see yet.
class VersionBuilder {
 public:
  explicit VersionBuilder(TableVersion* v) : v_(v) {}

  void Append(Row row) {
    if ((v_->size_ & (kChunkRows - 1)) == 0) {
      auto chunk = std::make_shared<RowChunk>();
      chunk->rows.reserve(kChunkRows);
      tail_ = chunk.get();
      v_->chunks_.push_back(std::move(chunk));
    } else if (tail_ == nullptr) {
      auto chunk = std::make_shared<RowChunk>(*v_->chunks_.back());
      chunk->rows.reserve(kChunkRows);
      tail_ = chunk.get();
      v_->chunks_.back() = std::move(chunk);
    }
    tail_->rows.push_back(std::move(row));
    ++v_->size_;
  }

 private:
  TableVersion* v_;
  /// The tail chunk iff this builder created it (and so may mutate it);
  /// null while chunks_.back() is still shared with the base version.
  RowChunk* tail_ = nullptr;
};

Table::Table(TableSchema schema)
    : schema_(std::make_shared<const TableSchema>(std::move(schema))),
      sticky_(std::make_shared<TableVersion::StickyColumns>(
          schema_->arity())) {
  head_ = std::shared_ptr<TableVersion>(new TableVersion(schema_, sticky_));
}

std::shared_ptr<const TableVersion> Table::Snapshot() const {
  std::shared_lock lock(head_mu_);
  return head_;
}

std::shared_ptr<TableVersion> Table::BeginVersion(
    const TableVersion& base) const {
  auto v = std::shared_ptr<TableVersion>(new TableVersion(schema_, sticky_));
  v->chunks_ = base.chunks_;  // structure sharing: chunk pointers only
  v->size_ = base.size_;
  v->version_ = base.version_ + 1;
  return v;
}

void Table::Publish(std::shared_ptr<const TableVersion> next) {
  std::unique_lock lock(head_mu_);
  head_ = std::move(next);
}

Status Table::Insert(Row row) {
  REVERE_RETURN_IF_ERROR(schema_->ValidateRow(row));
  std::lock_guard writer(writer_mu_);
  // head_ is stable here: only writers swap it, and they hold writer_mu_.
  auto next = BeginVersion(*head_);
  VersionBuilder builder(next.get());
  builder.Append(std::move(row));
  Publish(std::move(next));
  return Status::Ok();
}

Status Table::InsertAll(const std::vector<Row>& rows) {
  // All-or-nothing: validate every row before building the version, so
  // an invalid row anywhere in the batch leaves the table exactly as it
  // was — and concurrent readers, pinned to the old head, never observe
  // a partial batch either way.
  for (const auto& r : rows) {
    REVERE_RETURN_IF_ERROR(schema_->ValidateRow(r));
  }
  if (rows.empty()) return Status::Ok();
  std::lock_guard writer(writer_mu_);
  auto next = BeginVersion(*head_);
  VersionBuilder builder(next.get());
  for (const auto& r : rows) builder.Append(r);
  Publish(std::move(next));
  return Status::Ok();
}

Status Table::Delete(const Row& row) {
  std::lock_guard writer(writer_mu_);
  const TableVersion& base = *head_;
  size_t victim = base.size();
  for (size_t i = 0; i < base.size(); ++i) {
    if (base.row(i) == row) {
      victim = i;
      break;
    }
  }
  if (victim == base.size()) {
    return Status::NotFound("row not present in " + schema_->name());
  }
  auto next = BeginVersion(base);
  // Share every full chunk before the victim's chunk untouched; rebuild
  // from the victim's chunk on (the suffix must re-pack to keep the
  // all-chunks-full-except-last invariant).
  size_t first_rebuilt = (victim >> kChunkRowsLog2) << kChunkRowsLog2;
  next->chunks_.resize(victim >> kChunkRowsLog2);
  next->size_ = first_rebuilt;
  VersionBuilder builder(next.get());
  for (size_t i = first_rebuilt; i < base.size(); ++i) {
    if (i == victim) continue;
    builder.Append(base.row(i));
  }
  Publish(std::move(next));
  return Status::Ok();
}

size_t Table::DeleteWhere(size_t column, const Value& key) {
  if (column >= schema_->arity()) return 0;
  std::lock_guard writer(writer_mu_);
  const TableVersion& base = *head_;
  size_t first_match = base.size();
  for (size_t i = 0; i < base.size(); ++i) {
    if (base.row(i)[column] == key) {
      first_match = i;
      break;
    }
  }
  if (first_match == base.size()) return 0;
  auto next = BeginVersion(base);
  size_t first_rebuilt = (first_match >> kChunkRowsLog2) << kChunkRowsLog2;
  next->chunks_.resize(first_match >> kChunkRowsLog2);
  next->size_ = first_rebuilt;
  VersionBuilder builder(next.get());
  size_t removed = 0;
  for (size_t i = first_rebuilt; i < base.size(); ++i) {
    const Row& r = base.row(i);
    if (r[column] == key) {
      ++removed;
    } else {
      builder.Append(r);
    }
  }
  Publish(std::move(next));
  return removed;
}

void Table::Clear() {
  std::lock_guard writer(writer_mu_);
  auto next = BeginVersion(*head_);
  next->chunks_.clear();
  next->size_ = 0;
  Publish(std::move(next));
}

Status Table::CreateIndex(size_t column) {
  return Snapshot()->EnsureIndex(column);
}

Status Table::EnsureIndex(size_t column) const {
  return Snapshot()->EnsureIndex(column);
}

bool Table::HasIndex(size_t column) const {
  return column < schema_->arity() &&
         sticky_->flags[column].load(std::memory_order_acquire);
}

size_t Table::index_count() const {
  size_t n = 0;
  for (const auto& flag : sticky_->flags) {
    if (flag.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

std::vector<size_t> Table::LookupIndices(size_t column,
                                         const Value& key) const {
  return Snapshot()->LookupIndices(column, key);
}

std::shared_ptr<const ColumnTable> Table::EnsureColumnar() const {
  return Snapshot()->EnsureColumnar();
}

size_t Table::size() const { return Snapshot()->size(); }

uint64_t Table::generation() const { return Snapshot()->version(); }

}  // namespace revere::storage
