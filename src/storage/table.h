#ifndef REVERE_STORAGE_TABLE_H_
#define REVERE_STORAGE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace revere::storage {

/// One stored relation: a schema, a row store, and optional per-column
/// hash indexes. Bag semantics (duplicates allowed) — REVERE's MANGROVE
/// layer deliberately defers uniqueness constraints to applications.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends `row` after schema validation.
  Status Insert(Row row);
  /// Appends all rows; stops at the first invalid one.
  Status InsertAll(const std::vector<Row>& rows);

  /// Removes the first row equal to `row`; NotFound if absent.
  Status Delete(const Row& row);
  /// Removes every row whose `column`-th value equals `key`; returns the
  /// number removed.
  size_t DeleteWhere(size_t column, const Value& key);
  /// Drops all rows (indexes are kept but emptied).
  void Clear();

  /// Builds (or rebuilds) a hash index on `column`.
  Status CreateIndex(size_t column);
  bool HasIndex(size_t column) const;

  /// All rows whose `column` equals `key`. Uses the hash index when one
  /// exists, else scans.
  std::vector<Row> Lookup(size_t column, const Value& key) const;

  /// Row indices for Lookup — used by executors that need positions.
  std::vector<size_t> LookupIndices(size_t column, const Value& key) const;

 private:
  void ReindexIfDirty() const;

  TableSchema schema_;
  std::vector<Row> rows_;
  // column -> (value -> row indices). Rebuilt lazily after deletions.
  mutable std::unordered_map<size_t,
                             std::unordered_map<Value, std::vector<size_t>,
                                                ValueHash>>
      indexes_;
  mutable bool index_dirty_ = false;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_TABLE_H_
