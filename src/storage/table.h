#ifndef REVERE_STORAGE_TABLE_H_
#define REVERE_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/column_table.h"
#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace revere::storage {

/// One stored relation: a schema, a row store, optional per-column
/// hash indexes, and a lazily built columnar snapshot. Bag semantics
/// (duplicates allowed) — REVERE's MANGROVE layer deliberately defers
/// uniqueness constraints to applications.
///
/// Concurrency contract: every member function is internally
/// synchronized against every other — rows_, the index cache, and the
/// columnar cache are guarded by one shared_mutex, readers
/// (LookupIndices/size/HasIndex/EnsureIndex/EnsureColumnar) take shared
/// locks and mutators (Insert*/Delete*/Clear/CreateIndex) exclusive
/// ones — so concurrent Insert+LookupIndices is safe and the parallel
/// query evaluator can build indexes and columnar snapshots on demand
/// from const tables. The two exceptions, which require quiescence (no
/// concurrent writers):
///   - rows(): hands out an unguarded reference into row storage (the
///     evaluator's scan path relies on this being zero-cost); callers
///     must not mutate the table while holding it.
///   - the move operations: the *source's* lock is taken (its index
///     cache may be mid-build on another thread), but moving a table
///     someone else is concurrently writing is undefined, as for every
///     standard container.
/// EnsureColumnar is safe even against concurrent writers: the snapshot
/// it returns is immutable and refcounted, so it stays valid after the
/// table mutates (the next call just builds a fresh one).
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  /// Movable (the index lock itself is per-object state, not moved).
  /// The source's lock is held while its state is moved out; see the
  /// class contract for what moving may run concurrently with.
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const TableSchema& schema() const { return schema_; }
  size_t size() const;
  /// Direct row access for scan loops. NOT internally synchronized —
  /// see the class concurrency contract.
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends `row` after schema validation.
  Status Insert(Row row);
  /// Appends all rows, all-or-nothing: every row is validated up front
  /// and the batch is applied only when every row passes, so a failed
  /// call leaves the table untouched (ISSUE 7 regression: the previous
  /// version stopped at the first invalid row, leaving a partially
  /// applied batch with no indication of how many rows landed).
  Status InsertAll(const std::vector<Row>& rows);

  /// Removes the first row equal to `row`; NotFound if absent.
  Status Delete(const Row& row);
  /// Removes every row whose `column`-th value equals `key`; returns the
  /// number removed.
  size_t DeleteWhere(size_t column, const Value& key);
  /// Drops all rows (indexes are kept but emptied).
  void Clear();

  /// Builds (or rebuilds) a hash index on `column`.
  Status CreateIndex(size_t column);
  /// Builds a hash index on `column` unless one already exists — the
  /// memoized on-demand path used by the query evaluator when the join
  /// order binds an unindexed position. Indexes are never evicted
  /// (tables are append-rare). const: only the mutable index cache
  /// changes; safe to call from concurrent readers.
  Status EnsureIndex(size_t column) const;
  bool HasIndex(size_t column) const;
  /// Number of indexed columns (instrumentation for tests/benches).
  size_t index_count() const;

  /// Row indices whose `column` equals `key`, ascending. Uses the hash
  /// index when one exists, else scans. Pair with rows() under the
  /// quiescence contract to read the matching rows without copies.
  std::vector<size_t> LookupIndices(size_t column, const Value& key) const;

  /// Memoized columnar snapshot (ISSUE 7): dictionary-encoded column
  /// vectors plus grouped row-id indexes, built lazily under the same
  /// generation discipline as the index cache — any mutation bumps the
  /// data generation and the next call rebuilds. The returned snapshot
  /// is immutable and remains valid (frozen at its generation) even if
  /// the table mutates afterwards. const: only the mutable cache
  /// changes; safe from concurrent readers AND concurrent writers.
  std::shared_ptr<const ColumnTable> EnsureColumnar() const;

  /// Data-version counter: bumped by every successful mutation. A
  /// ColumnTable snapshot is current iff its generation() matches.
  uint64_t generation() const;

 private:
  /// Rebuilds every index after deletions. Caller holds index_mu_.
  void ReindexIfDirtyLocked() const;
  /// Builds the index for `column` from scratch. Caller holds index_mu_.
  void BuildIndexLocked(size_t column) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  /// Guards rows_, indexes_, index_dirty_, generation_, and columnar_
  /// for every member function (rows() excepted — see the class
  /// contract). Readers (probes, scans, snapshot reuse) take shared
  /// locks; row mutation, index builds, reindexing, and columnar
  /// rebuilds take exclusive locks.
  mutable std::shared_mutex index_mu_;
  // column -> (value -> row indices). Rebuilt lazily after deletions.
  mutable std::unordered_map<size_t,
                             std::unordered_map<Value, std::vector<size_t>,
                                                ValueHash>>
      indexes_;
  mutable bool index_dirty_ = false;
  /// Bumped on every successful mutation; stamps columnar snapshots.
  uint64_t generation_ = 0;
  /// Columnar snapshot for generation columnar_->generation(), or null.
  /// Mutators reset it (memory is freed eagerly; readers holding the
  /// shared_ptr keep their snapshot alive).
  mutable std::shared_ptr<const ColumnTable> columnar_;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_TABLE_H_
