#ifndef REVERE_STORAGE_TABLE_H_
#define REVERE_STORAGE_TABLE_H_

#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace revere::storage {

/// One stored relation: a schema, a row store, and optional per-column
/// hash indexes. Bag semantics (duplicates allowed) — REVERE's MANGROVE
/// layer deliberately defers uniqueness constraints to applications.
///
/// Concurrency contract: every member function is internally
/// synchronized against every other — rows_ and the index cache are
/// guarded by one shared_mutex, readers (Lookup/LookupIndices/size/
/// HasIndex/EnsureIndex) take shared locks and mutators (Insert/
/// Delete*/Clear/CreateIndex) exclusive ones — so concurrent
/// Insert+LookupIndices is safe and the parallel query evaluator can
/// build indexes on demand from const tables. The two exceptions,
/// which require quiescence (no concurrent writers):
///   - rows(): hands out an unguarded reference into row storage (the
///     evaluator's scan path relies on this being zero-cost); callers
///     must not mutate the table while holding it.
///   - the move operations: the *source's* lock is taken (its index
///     cache may be mid-build on another thread), but moving a table
///     someone else is concurrently writing is undefined, as for every
///     standard container.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  /// Movable (the index lock itself is per-object state, not moved).
  /// The source's lock is held while its state is moved out; see the
  /// class contract for what moving may run concurrently with.
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const TableSchema& schema() const { return schema_; }
  size_t size() const;
  /// Direct row access for scan loops. NOT internally synchronized —
  /// see the class concurrency contract.
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends `row` after schema validation.
  Status Insert(Row row);
  /// Appends all rows; stops at the first invalid one.
  Status InsertAll(const std::vector<Row>& rows);

  /// Removes the first row equal to `row`; NotFound if absent.
  Status Delete(const Row& row);
  /// Removes every row whose `column`-th value equals `key`; returns the
  /// number removed.
  size_t DeleteWhere(size_t column, const Value& key);
  /// Drops all rows (indexes are kept but emptied).
  void Clear();

  /// Builds (or rebuilds) a hash index on `column`.
  Status CreateIndex(size_t column);
  /// Builds a hash index on `column` unless one already exists — the
  /// memoized on-demand path used by the query evaluator when the join
  /// order binds an unindexed position. Indexes are never evicted
  /// (tables are append-rare). const: only the mutable index cache
  /// changes; safe to call from concurrent readers.
  Status EnsureIndex(size_t column) const;
  bool HasIndex(size_t column) const;
  /// Number of indexed columns (instrumentation for tests/benches).
  size_t index_count() const;

  /// All rows whose `column` equals `key`. Uses the hash index when one
  /// exists, else scans.
  std::vector<Row> Lookup(size_t column, const Value& key) const;

  /// Row indices for Lookup — used by executors that need positions.
  std::vector<size_t> LookupIndices(size_t column, const Value& key) const;

 private:
  /// Rebuilds every index after deletions. Caller holds index_mu_.
  void ReindexIfDirtyLocked() const;
  /// Builds the index for `column` from scratch. Caller holds index_mu_.
  void BuildIndexLocked(size_t column) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  /// Guards rows_, indexes_, and index_dirty_ for every member
  /// function (rows() excepted — see the class contract). Readers
  /// (probes, scans) take shared locks; row mutation, index builds,
  /// and reindexing take exclusive locks.
  mutable std::shared_mutex index_mu_;
  // column -> (value -> row indices). Rebuilt lazily after deletions.
  mutable std::unordered_map<size_t,
                             std::unordered_map<Value, std::vector<size_t>,
                                                ValueHash>>
      indexes_;
  mutable bool index_dirty_ = false;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_TABLE_H_
