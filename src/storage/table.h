#ifndef REVERE_STORAGE_TABLE_H_
#define REVERE_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/common/status.h"
#include "src/storage/column_table.h"
#include "src/storage/schema.h"
#include "src/storage/table_version.h"
#include "src/storage/value.h"

namespace revere::storage {

/// One stored relation: a schema plus a chain of immutable MVCC
/// versions (TableVersion). Bag semantics (duplicates allowed) —
/// REVERE's MANGROVE layer deliberately defers uniqueness constraints
/// to applications.
///
/// Concurrency contract — readers never block, writers never tear:
///   - Readers call Snapshot() to pin the current head version: a
///     shared-lock pointer copy, O(1), never contended by in-flight row
///     mutation. Everything read through the pinned version (rows,
///     indexes, columnar snapshots) is immutable and stays valid for as
///     long as the shared_ptr is held, no matter what writers do.
///   - Writers serialize on a writer mutex, path-copy only the chunks
///     they touch (an append copies at most the tail chunk's kChunkRows
///     rows), and publish the new version by swapping the head pointer
///     under a brief exclusive lock. Readers pinning between versions
///     see either the old or the new head — never a torn mix.
/// The old rows() accessor and the quiescence-demanding move contract
/// are gone: there is no way to observe row storage except through an
/// immutable version, so there is nothing left to race on.
///
/// The convenience forwarders below (size, LookupIndices, ...) each pin
/// the head themselves; two consecutive calls may see different
/// versions. Callers that need one consistent view across calls — every
/// query engine, view maintenance, serialization — hold a Snapshot()
/// (usually via a per-query SnapshotSet) and read through it.
class Table {
 public:
  explicit Table(TableSchema schema);

  /// Tables are pinned by address (Catalog owns them by unique_ptr;
  /// SnapshotSet keys pins on Table*), so they neither copy nor move.
  Table(Table&&) = delete;
  Table& operator=(Table&&) = delete;

  const TableSchema& schema() const { return *schema_; }

  /// Pins the current head version: an immutable point-in-time view of
  /// all rows plus its memoized indexes. Never blocks on row mutation
  /// (only on the instant of another writer's head swap).
  std::shared_ptr<const TableVersion> Snapshot() const;

  /// Appends `row` after schema validation.
  Status Insert(Row row);
  /// Appends all rows, all-or-nothing: every row is validated up front
  /// and the batch publishes as one new version only when every row
  /// passes, so a failed call leaves the table untouched and readers
  /// never see a partial batch.
  Status InsertAll(const std::vector<Row>& rows);

  /// Removes the first row equal to `row`; NotFound if absent.
  Status Delete(const Row& row);
  /// Removes every row whose `column`-th value equals `key`; returns the
  /// number removed.
  size_t DeleteWhere(size_t column, const Value& key);
  /// Drops all rows (sticky index columns stay sticky).
  void Clear();

  /// Marks `column` sticky-indexed (every version indexes it lazily on
  /// first probe, forever) and builds the current head's index eagerly.
  Status CreateIndex(size_t column);
  /// Same as CreateIndex but const — the memoized on-demand path used
  /// when a join order binds an unindexed position. Indexes are never
  /// evicted. Safe from concurrent readers and writers.
  Status EnsureIndex(size_t column) const;
  bool HasIndex(size_t column) const;
  /// Number of sticky-indexed columns (instrumentation).
  size_t index_count() const;

  /// Row indices whose `column` equals `key`, ascending, against the
  /// current head. Single-call convenience — pair row access with the
  /// SAME pinned Snapshot(), not with a second forwarder call.
  std::vector<size_t> LookupIndices(size_t column, const Value& key) const;

  /// The current head's memoized columnar snapshot (see
  /// TableVersion::EnsureColumnar). Immutable; stays valid after the
  /// table mutates.
  std::shared_ptr<const ColumnTable> EnsureColumnar() const;

  /// Rows in the current head version.
  size_t size() const;
  /// Data-version counter of the current head: bumped once per
  /// published mutation (Insert/InsertAll/Delete/DeleteWhere/Clear).
  uint64_t generation() const;

 private:
  /// Starts a successor version sharing the base's chunk spine, with
  /// version() = base.version() + 1. Caller holds writer_mu_.
  std::shared_ptr<TableVersion> BeginVersion(const TableVersion& base) const;
  /// Swaps the head pointer. Caller holds writer_mu_.
  void Publish(std::shared_ptr<const TableVersion> next);

  std::shared_ptr<const TableSchema> schema_;
  /// Sticky-indexed columns, shared by every version of this table.
  std::shared_ptr<TableVersion::StickyColumns> sticky_;
  /// Serializes writers. Version construction (validation, path-copies)
  /// happens under this mutex but NOT under head_mu_, so readers are
  /// never blocked behind a writer's O(chunk) work.
  mutable std::mutex writer_mu_;
  /// Guards only the head pointer. Readers take it shared for the
  /// duration of one pointer copy; writers take it exclusive for one
  /// pointer swap.
  mutable std::shared_mutex head_mu_;
  std::shared_ptr<const TableVersion> head_;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_TABLE_H_
