#ifndef REVERE_STORAGE_COLUMN_TABLE_H_
#define REVERE_STORAGE_COLUMN_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace revere::storage {

/// Immutable columnar snapshot of one Table (ISSUE 7): per-column
/// dictionary-encoded value vectors plus a grouped row-id index per
/// column, built once from the row store and shared by reference.
///
/// Every cell is encoded as a dense `uint32_t` code into the column's
/// dictionary of distinct Values (first-appearance order, so code
/// assignment is deterministic). Strings — the dominant type in REVERE's
/// textual workloads — therefore compare as integers on every filter and
/// join; ints/doubles/bools/nulls ride the same encoding, paying one
/// indirection only when a result row is materialized. Two codes within
/// one column are equal iff the underlying Values are `==`; codes are
/// NOT comparable across columns — executors translate through the
/// dictionaries (see vectorized.cc's translation arrays).
///
/// The grouped index (`group_offsets`/`group_rows`, a stable counting
/// sort by code) plays the role of a hash index with zero hashing on
/// the probe path: the rows whose column equals dictionary code `c` are
/// `group_rows[group_offsets[c] .. group_offsets[c+1])`, in ascending
/// row order — the same enumeration order as Table::LookupIndices, which
/// is what keeps the columnar engine byte-identical to the slot engine.
///
/// Lifetime/concurrency: a ColumnTable is deeply immutable after Build
/// and handed out as shared_ptr<const>, so readers may keep using a
/// snapshot while the source Table mutates and rebuilds a fresh one
/// (Table::EnsureColumnar implements the generation discipline).
class ColumnTable {
 public:
  /// "No such code": returned by CodeOf for values absent from the
  /// column, and used as the miss sentinel in translation arrays.
  static constexpr uint32_t kNoCode = UINT32_MAX;

  struct Column {
    /// code -> distinct value, in first-appearance order.
    std::vector<Value> dict;
    /// value -> code (the dictionary's reverse map; hashes only at
    /// build/translation time, never in per-row loops).
    std::unordered_map<Value, uint32_t, ValueHash> code_of;
    /// code -> Value::Hash() of dict[code] (ISSUE 8): lets the output
    /// boundary chain HashStep over codes and reproduce HashRow of the
    /// decoded row without touching the dictionary. Padded like codes.
    std::vector<uint64_t> dict_hashes;
    /// Per-row codes: codes[r] encodes rows[r][col]. The first
    /// row_count entries are real; the vector is over-allocated with
    /// simd::kPad trailing zero codes so whole-lane SIMD tail reads
    /// stay in bounds (code 0 is valid whenever row_count > 0).
    std::vector<uint32_t> codes;
    /// Stable group-by-code: rows with code c are
    /// group_rows[group_offsets[c] .. group_offsets[c+1]), ascending.
    /// group_rows carries the same kPad zero-padding as codes (row 0
    /// is valid whenever row_count > 0).
    std::vector<uint32_t> group_offsets;  // dict.size() + 1 entries
    std::vector<uint32_t> group_rows;     // row_count + kPad entries
  };

  /// Builds the snapshot from a quiesced row view. `generation` stamps
  /// which version of the source table this encodes (Table's data
  /// generation counter). Rows beyond uint32 range are unsupported.
  static std::shared_ptr<const ColumnTable> Build(
      const std::vector<Row>& rows, size_t arity, uint64_t generation);

  /// Same, over an arbitrary row accessor — `row_at(i)` for i in
  /// [0, row_count) — so chunked MVCC versions build columnar snapshots
  /// without first materializing a contiguous row vector.
  static std::shared_ptr<const ColumnTable> Build(
      size_t row_count, const std::function<const Row&(size_t)>& row_at,
      size_t arity, uint64_t generation);

  size_t row_count() const { return row_count_; }
  size_t column_count() const { return columns_.size(); }
  uint64_t generation() const { return generation_; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Dictionary code of `v` in column `col`, or kNoCode when absent.
  uint32_t CodeOf(size_t col, const Value& v) const;

  /// Decoded cell (dictionary lookup) — the materialization boundary.
  const Value& ValueAt(size_t col, size_t row) const {
    const Column& c = columns_[col];
    return c.dict[c.codes[row]];
  }

  /// Total dictionary entries across columns (obs mirroring).
  size_t dict_entries() const { return dict_entries_; }

 private:
  ColumnTable() = default;

  std::vector<Column> columns_;
  size_t row_count_ = 0;
  size_t dict_entries_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_COLUMN_TABLE_H_
