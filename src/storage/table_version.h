#ifndef REVERE_STORAGE_TABLE_VERSION_H_
#define REVERE_STORAGE_TABLE_VERSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/column_table.h"
#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace revere::storage {

class Table;

/// One fixed-capacity block of rows inside a TableVersion. Chunks are
/// immutable once their version is published and shared by reference
/// between versions: a writer path-copies only the chunks it touches
/// (for an append, just the tail chunk) and aliases the rest, so
/// publishing a new version after a single Insert costs O(kChunkRows)
/// row copies, not O(table).
struct RowChunk {
  std::vector<Row> rows;
};

/// Rows per chunk. A power of two so row addressing is a shift + mask.
inline constexpr size_t kChunkRowsLog2 = 8;
inline constexpr size_t kChunkRows = size_t{1} << kChunkRowsLog2;  // 256

/// One immutable point-in-time version of a Table's rows (the MVCC
/// snapshot readers pin via Table::Snapshot). The row data — a spine of
/// shared RowChunk pointers, every chunk full except possibly the last —
/// never changes after publication, so readers iterate, probe, and build
/// derived structures with no locks against writers.
///
/// Derived read structures are memoized per version, not per table:
/// because the rows can never change, a version's hash indexes and its
/// columnar snapshot are built at most once (double-checked under
/// cache_mu_) and shared by every reader that pinned this version —
/// the generation/dirty machinery the old Table carried is gone.
///
/// Which columns get a hash index is a *table-level* property ("sticky"
/// columns, shared by every version of one table): CreateIndex or
/// EnsureIndex on any version marks the column sticky, and from then on
/// every version — past and future — builds that column's index lazily
/// on first probe. Indexes are never evicted, matching the pre-MVCC
/// contract that a column indexed once stays indexed across mutations.
class TableVersion {
 public:
  TableVersion(const TableVersion&) = delete;
  TableVersion& operator=(const TableVersion&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const TableSchema& schema() const { return *schema_; }

  /// Monotone version number (the old Table::generation): 0 for the
  /// empty initial version, +1 per published data mutation.
  uint64_t version() const { return version_; }

  /// Row `i` of this version. Shift + mask into the chunk spine.
  const Row& row(size_t i) const {
    return chunks_[i >> kChunkRowsLog2]->rows[i & (kChunkRows - 1)];
  }

  /// Materializes all rows into one vector (serialization, delta
  /// catalogs). The snapshot stays the source of truth; this copies.
  std::vector<Row> CopyRows() const;

  /// True when `column` is sticky-indexed for this table (probes on it
  /// take the index path, built on demand for this version).
  bool HasIndex(size_t column) const;
  /// Marks `column` sticky and builds this version's index for it now.
  /// const: only memoized caches and the shared sticky set change.
  Status EnsureIndex(size_t column) const;
  /// Number of sticky-indexed columns (instrumentation).
  size_t index_count() const;

  /// Row indices whose `column` equals `key`, ascending. Probes the
  /// memoized per-version hash index when the column is sticky (building
  /// it on first use), else scans — both lock-free w.r.t. writers.
  std::vector<size_t> LookupIndices(size_t column, const Value& key) const;

  /// This version's memoized columnar snapshot, built on first call and
  /// shared by all pinners. Stamped with version().
  std::shared_ptr<const ColumnTable> EnsureColumnar() const;

 private:
  friend class Table;
  friend class VersionBuilder;

  /// Sticky-indexed column flags, one shared instance per Table (every
  /// version aliases it). Atomic flags: marked from const readers,
  /// read on every probe.
  struct StickyColumns {
    explicit StickyColumns(size_t arity) : flags(arity) {}
    std::vector<std::atomic<bool>> flags;
  };

  using HashIndex = std::unordered_map<Value, std::vector<size_t>, ValueHash>;

  TableVersion(std::shared_ptr<const TableSchema> schema,
               std::shared_ptr<StickyColumns> sticky)
      : schema_(std::move(schema)), sticky_(std::move(sticky)) {}

  /// Builds (or finds) the memoized index for `column`; returns a
  /// pointer stable for this version's lifetime.
  const HashIndex* BuildOrGetIndex(size_t column) const;

  std::shared_ptr<const TableSchema> schema_;
  std::shared_ptr<StickyColumns> sticky_;
  /// Row storage: all chunks full (kChunkRows) except possibly the last.
  /// Immutable after publication; chunks shared with other versions.
  std::vector<std::shared_ptr<const RowChunk>> chunks_;
  size_t size_ = 0;
  uint64_t version_ = 0;

  /// Guards only the memoized caches below. Never held while a reader
  /// touches row data, and writers to the owning Table never take it.
  mutable std::shared_mutex cache_mu_;
  mutable std::unordered_map<size_t, HashIndex> indexes_;
  mutable std::shared_ptr<const ColumnTable> columnar_;
};

/// Per-query pin set: the first access to each Table pins its head
/// version, and every later access through the set sees that same
/// version — one consistent snapshot per table for the whole query, no
/// matter how many rewritings, engines, or pool workers touch it.
/// Thread-safe (the parallel union path pins from pool workers).
class SnapshotSet {
 public:
  SnapshotSet() = default;
  SnapshotSet(const SnapshotSet&) = delete;
  SnapshotSet& operator=(const SnapshotSet&) = delete;

  /// The pinned version of `table`, pinning its current head on first
  /// call for this table.
  std::shared_ptr<const TableVersion> Pin(const Table& table);

  /// The already-pinned version, or null when `table` was never pinned.
  std::shared_ptr<const TableVersion> Get(const Table& table) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<const Table*, std::shared_ptr<const TableVersion>>
      pins_;
};

}  // namespace revere::storage

#endif  // REVERE_STORAGE_TABLE_VERSION_H_
