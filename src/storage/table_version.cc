#include "src/storage/table_version.h"

#include <utility>

#include "src/storage/table.h"

namespace revere::storage {

std::vector<Row> TableVersion::CopyRows() const {
  std::vector<Row> out;
  out.reserve(size_);
  for (const auto& chunk : chunks_) {
    out.insert(out.end(), chunk->rows.begin(), chunk->rows.end());
  }
  return out;
}

bool TableVersion::HasIndex(size_t column) const {
  if (column >= schema_->arity()) return false;
  return sticky_->flags[column].load(std::memory_order_acquire);
}

Status TableVersion::EnsureIndex(size_t column) const {
  if (column >= schema_->arity()) {
    return Status::OutOfRange("no column " + std::to_string(column) + " in " +
                              schema_->name());
  }
  sticky_->flags[column].store(true, std::memory_order_release);
  BuildOrGetIndex(column);
  return Status::Ok();
}

size_t TableVersion::index_count() const {
  size_t n = 0;
  for (const auto& flag : sticky_->flags) {
    if (flag.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

const TableVersion::HashIndex* TableVersion::BuildOrGetIndex(
    size_t column) const {
  {
    std::shared_lock lock(cache_mu_);
    auto it = indexes_.find(column);
    if (it != indexes_.end()) return &it->second;
  }
  // Build outside any lock is not worth it here (the rows are immutable
  // but two racing builders would duplicate work); build under the
  // exclusive lock, double-checked. Built at most once per version.
  std::unique_lock lock(cache_mu_);
  auto [it, inserted] = indexes_.try_emplace(column);
  if (inserted) {
    for (size_t i = 0; i < size_; ++i) {
      it->second[row(i)[column]].push_back(i);
    }
  }
  return &it->second;
}

std::vector<size_t> TableVersion::LookupIndices(size_t column,
                                                const Value& key) const {
  std::vector<size_t> out;
  if (column >= schema_->arity()) return out;
  if (sticky_->flags[column].load(std::memory_order_acquire)) {
    const HashIndex* index = BuildOrGetIndex(column);
    // The index is memoized on this immutable version, so the entry
    // reference stays valid; copy it out to keep the API by-value.
    std::shared_lock lock(cache_mu_);
    auto hit = index->find(key);
    if (hit != index->end()) return hit->second;
    return out;
  }
  // Unindexed column: scan. Lock-free — the rows cannot change.
  for (size_t i = 0; i < size_; ++i) {
    if (row(i)[column] == key) out.push_back(i);
  }
  return out;
}

std::shared_ptr<const ColumnTable> TableVersion::EnsureColumnar() const {
  {
    std::shared_lock lock(cache_mu_);
    if (columnar_ != nullptr) return columnar_;
  }
  std::unique_lock lock(cache_mu_);
  // Double-checked: another pinner may have built it between the locks.
  if (columnar_ == nullptr) {
    columnar_ = ColumnTable::Build(
        size_, [this](size_t i) -> const Row& { return row(i); },
        schema_->arity(), version_);
  }
  return columnar_;
}

std::shared_ptr<const TableVersion> SnapshotSet::Pin(const Table& table) {
  {
    std::lock_guard lock(mu_);
    auto it = pins_.find(&table);
    if (it != pins_.end()) return it->second;
  }
  // Take the head outside mu_ (Snapshot briefly locks the table's head
  // mutex; never nest the two), then race to record it — first pin wins
  // so every user of the set agrees on one version.
  std::shared_ptr<const TableVersion> head = table.Snapshot();
  std::lock_guard lock(mu_);
  auto [it, inserted] = pins_.emplace(&table, std::move(head));
  return it->second;
}

std::shared_ptr<const TableVersion> SnapshotSet::Get(
    const Table& table) const {
  std::lock_guard lock(mu_);
  auto it = pins_.find(&table);
  return it == pins_.end() ? nullptr : it->second;
}

size_t SnapshotSet::size() const {
  std::lock_guard lock(mu_);
  return pins_.size();
}

}  // namespace revere::storage
