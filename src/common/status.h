#ifndef REVERE_COMMON_STATUS_H_
#define REVERE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace revere {

/// Error categories used across the REVERE library. The library does not
/// throw exceptions; every fallible operation returns a Status or a
/// Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kParseError,
  kInternal,
  /// A required participant (e.g. a PDMS peer) cannot be reached right
  /// now; the operation may succeed if retried later.
  kUnavailable,
  /// The operation's (simulated) time budget elapsed before completion.
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` ("Ok", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-type result of a fallible operation: a code plus a contextual
/// message. Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Access to value() is only
/// legal when ok(); this is asserted in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors absl::StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define REVERE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::revere::Status _revere_status = (expr);         \
    if (!_revere_status.ok()) return _revere_status;  \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors; on success binds
/// the unwrapped value to `lhs`.
#define REVERE_ASSIGN_OR_RETURN(lhs, expr)             \
  auto REVERE_CONCAT_(_revere_result, __LINE__) = (expr);             \
  if (!REVERE_CONCAT_(_revere_result, __LINE__).ok())                 \
    return REVERE_CONCAT_(_revere_result, __LINE__).status();         \
  lhs = std::move(REVERE_CONCAT_(_revere_result, __LINE__)).value()

#define REVERE_CONCAT_INNER_(a, b) a##b
#define REVERE_CONCAT_(a, b) REVERE_CONCAT_INNER_(a, b)

}  // namespace revere

#endif  // REVERE_COMMON_STATUS_H_
