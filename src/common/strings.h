#ifndef REVERE_COMMON_STRINGS_H_
#define REVERE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace revere {

/// Splits `input` on any single occurrence of `delim`. Empty pieces are
/// kept unless `skip_empty` is true.
std::vector<std::string> Split(std::string_view input, char delim,
                               bool skip_empty = false);

/// Splits `input` on every character contained in `delims`.
std::vector<std::string> SplitAny(std::string_view input,
                                  std::string_view delims,
                                  bool skip_empty = true);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);
/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);
/// True if `needle` occurs in `haystack`.
bool Contains(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Formats `v` with `precision` digits after the decimal point.
std::string FormatDouble(double v, int precision = 3);

}  // namespace revere

#endif  // REVERE_COMMON_STRINGS_H_
