#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace revere {

ThreadPool::ThreadPool(size_t workers) {
  size_t n = std::max<size_t>(1, workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  // The counter bumps inside the task, before the promise is set, so
  // once a future is ready tasks_completed() already reflects it.
  std::packaged_task<void()> task([this, fn = std::move(fn)] {
    fn();
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
  });
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

size_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

size_t ThreadPool::DefaultWorkerCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-then-stop: queued work always runs, so futures returned
      // by Submit never dangle.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace revere
