#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/obs/metrics.h"

namespace revere {

ThreadPool::ThreadPool(size_t workers) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  queue_depth_ = metrics.GetGauge("threadpool.queue_depth");
  task_latency_us_ = metrics.GetHistogram("threadpool.task_latency_us");
  size_t n = std::max<size_t>(1, workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
obs::Counter* TasksCounter() {
  static obs::Counter* tasks =
      obs::MetricsRegistry::Default().GetCounter("threadpool.tasks");
  return tasks;
}
}  // namespace

std::packaged_task<void()> ThreadPool::MakeTask(std::function<void()> fn) {
  // completed_ bumps inside the task, before the promise is set, so
  // once a future is ready tasks_completed() already reflects it — even
  // when the task throws (the exception is stored in the future).
  return std::packaged_task<void()>([this, fn = std::move(fn)] {
    auto start = std::chrono::steady_clock::now();
    try {
      fn();
    } catch (...) {
      task_latency_us_->Record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++completed_;
      }
      throw;  // captured by packaged_task; surfaces on future.get()
    }
    task_latency_us_->Record(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
  });
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task = MakeTask(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  TasksCounter()->Increment();
  queue_depth_->Add(1);
  cv_.notify_one();
  return future;
}

std::optional<std::future<void>> ThreadPool::TrySubmit(
    std::function<void()> fn, size_t max_queued) {
  // The capacity check and the push happen under one lock acquisition,
  // so concurrent TrySubmit callers can overshoot `max_queued` by at
  // most zero — the bound is exact, unlike a check-then-Submit pair.
  std::packaged_task<void()> task = MakeTask(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= max_queued) return std::nullopt;
    queue_.push_back(std::move(task));
  }
  TasksCounter()->Increment();
  queue_depth_->Add(1);
  cv_.notify_one();
  return future;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

size_t ThreadPool::DefaultWorkerCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-then-stop: queued work always runs, so futures returned
      // by Submit never dangle.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_->Sub(1);
    task();
  }
}

}  // namespace revere
