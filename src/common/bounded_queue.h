#ifndef REVERE_COMMON_BOUNDED_QUEUE_H_
#define REVERE_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace revere {

/// A bounded multi-producer multi-consumer FIFO queue — the admission
/// buffer of the serving front end (ISSUE 6).
///
/// Design point: producers never block. `TryPush` fails fast when the
/// queue is at capacity, because the caller (RevereServer admission
/// control) wants to *shed* the request with an honest kUnavailable +
/// retry_after rather than stall a client thread — unbounded producer
/// queueing is exactly the collapse mode this subsystem exists to
/// prevent. Consumers may block (`Pop`) or poll (`TryPop`).
///
/// `Close()` ends the stream: subsequent pushes fail, blocked consumers
/// drain the remaining items and then observe std::nullopt. Closing is
/// idempotent and never drops queued items — whoever pushed before the
/// close is guaranteed a consumer can still pop it, which is what lets
/// RevereServer promise "no lost requests" on shutdown.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` is clamped to >= 1 (a zero-capacity queue could never
  /// transfer an item).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`; false (item untouched, queue unchanged) when the
  /// queue is full or closed.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeues the oldest item without blocking; nullopt when empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt only in the latter case.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes every blocked consumer. Queued
  /// items stay poppable until drained.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace revere

#endif  // REVERE_COMMON_BOUNDED_QUEUE_H_
