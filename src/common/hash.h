#ifndef REVERE_COMMON_HASH_H_
#define REVERE_COMMON_HASH_H_

#include <cstddef>
#include <functional>

namespace revere {

/// Mixes `v`'s hash into `seed` (boost-style hash_combine).
template <typename T>
void HashCombine(size_t* seed, const T& v) {
  *seed ^= std::hash<T>{}(v) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

/// Hash functor for std::pair, usable as unordered_map hasher.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashCombine(&seed, p.first);
    HashCombine(&seed, p.second);
    return seed;
  }
};

}  // namespace revere

#endif  // REVERE_COMMON_HASH_H_
