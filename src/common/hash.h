#ifndef REVERE_COMMON_HASH_H_
#define REVERE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace revere {

/// 64-bit FNV-1a over a byte sequence. Deterministic across runs and
/// platforms (unlike std::hash), so it is usable for persisted or
/// logged fingerprints. `seed` chains multi-part hashes:
/// Fnv1a64(b, Fnv1a64(a)) hashes a‖b.
inline uint64_t Fnv1a64(std::string_view bytes,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One boost-style hash_combine step: folds the value hash `h` into
/// `seed`. Exposed separately so the columnar output boundary can
/// reproduce HashRow in the code domain — chaining HashStep over
/// per-dictionary value hashes (ColumnTable::ValueHashes) must equal
/// hashing the decoded row, bit for bit, which is what lets RowDedup
/// mix string-hashed and code-hashed entries in one table.
inline uint64_t HashStep(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Mixes `v`'s hash into `seed` (boost-style hash_combine).
template <typename T>
void HashCombine(size_t* seed, const T& v) {
  *seed = HashStep(*seed, std::hash<T>{}(v));
}

/// Hash functor for std::pair, usable as unordered_map hasher.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashCombine(&seed, p.first);
    HashCombine(&seed, p.second);
    return seed;
  }
};

}  // namespace revere

#endif  // REVERE_COMMON_HASH_H_
