#ifndef REVERE_COMMON_ARENA_H_
#define REVERE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace revere {

/// Bump allocator for query-execution intermediates (ISSUE 7). The
/// columnar evaluator allocates every selection vector and row-id batch
/// here, so the per-batch hot loop performs zero heap allocations once
/// the arena has warmed up: Reset() rewinds the bump pointer but keeps
/// every block, and subsequent batches reuse the same memory.
///
/// Not thread-safe — one Arena per evaluation, never shared. Allocated
/// memory is trivially "freed" by Reset()/destruction; only trivially
/// destructible payloads (row ids, codes, selection indexes) belong
/// here, since destructors are never run.
class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = 64 * 1024)
      : initial_block_bytes_(initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation, aligned to alignof(std::max_align_t).
  void* Allocate(size_t bytes) {
    constexpr size_t kAlign = alignof(std::max_align_t);
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (block_ >= blocks_.size() || used_ + bytes > blocks_[block_].size) {
      NextBlockFor(bytes);
    }
    void* p = blocks_[block_].data.get() + used_;
    used_ += bytes;
    allocated_ += bytes;
    return p;
  }

  /// Typed array of `n` default-initialized (i.e. uninitialized for
  /// scalars) elements. T must be trivially destructible.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T)));
  }

  /// Rewinds to empty while keeping every block for reuse. After the
  /// first batch warms the arena, steady-state batches allocate from
  /// recycled blocks only.
  void Reset() {
    block_ = 0;
    used_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since the last Reset (after alignment rounding).
  size_t bytes_allocated() const { return allocated_; }
  /// Total bytes of backing blocks currently held (never shrinks).
  size_t bytes_reserved() const { return reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Advances to the next block able to hold `bytes`, growing the block
  /// ladder geometrically when none fits.
  void NextBlockFor(size_t bytes) {
    // Try existing blocks first (Reset keeps them allocated).
    size_t next = block_ >= blocks_.size() ? blocks_.size() : block_ + 1;
    while (next < blocks_.size() && blocks_[next].size < bytes) ++next;
    if (next >= blocks_.size()) {
      size_t size = blocks_.empty() ? initial_block_bytes_
                                    : blocks_.back().size * 2;
      while (size < bytes) size *= 2;
      blocks_.push_back(Block{std::make_unique<char[]>(size), size});
      reserved_ += size;
      next = blocks_.size() - 1;
    }
    block_ = next;
    used_ = 0;
  }

  size_t initial_block_bytes_;
  std::vector<Block> blocks_;
  size_t block_ = 0;  // current block index (may equal blocks_.size())
  size_t used_ = 0;   // bytes used in the current block
  size_t allocated_ = 0;
  size_t reserved_ = 0;
};

}  // namespace revere

#endif  // REVERE_COMMON_ARENA_H_
