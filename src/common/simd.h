#ifndef REVERE_COMMON_SIMD_H_
#define REVERE_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace revere::simd {

/// Portable SIMD kernel layer over `uint32` code arrays (ISSUE 8).
///
/// The columnar engine's hot loops — constant filters, repeated-variable
/// equality checks, grouped-index gathers, and the code-domain row-hash
/// mix at the output boundary — are expressed against this small kernel
/// vocabulary instead of raw loops. One backend is selected at compile
/// time inside simd.cc (AVX2 > SSE2 > NEON > scalar; the REVERE_NO_SIMD
/// CMake option forces scalar), and every kernel also ships a scalar
/// implementation selectable at runtime (`Ops(false)`), so a SIMD build
/// can still run the fallback — that is what the fuzzer's
/// `columnar_simd_vs_scalar` oracle and `EvalOptions::use_simd` drive.
///
/// ## Padding contract
///
/// Kernels process whole lanes: a call with `n` elements may read *and
/// write* up to `RoundUpLanes(n)` elements of every array argument, and
/// `compact_u32` may overshoot its output by up to one extra lane. All
/// buffers handed to these kernels must therefore be allocated with
/// `PaddedCount(n)` elements (ColumnTable over-allocates its `codes`
/// and `group_rows` arrays by `kPad` for the same reason). Gather index
/// arrays must contain *valid* indices in their padded tail too — the
/// engine pads candidate tails with a known-valid row id — because a
/// masked-off lane's gather still dereferences. Tail lanes never affect
/// results: mask kernels zero bits >= n, and compact honours the mask.
///
/// All kernels are deterministic and bit-identical across backends:
/// same inputs, same outputs, element for element — enforced by the
/// scalar-vs-vector differential tests in tests/common_test.cc.

/// Widest lane count any backend uses; the padding quantum.
inline constexpr size_t kPad = 8;

/// n rounded up to a whole number of kPad-lanes.
inline constexpr size_t RoundUpLanes(size_t n) {
  return (n + kPad - 1) & ~(kPad - 1);
}

/// Element count to allocate for an n-element kernel buffer: whole
/// lanes plus one extra lane of slack for compact_u32 overshoot.
inline constexpr size_t PaddedCount(size_t n) { return RoundUpLanes(n) + kPad; }

/// 64-bit words needed for an n-element bitmask.
inline constexpr size_t MaskWords(size_t n) { return (n + 63) / 64; }

/// The kernel vocabulary. Masks are bit-per-element uint64 words, bit i
/// of word i/64 = element i; mask kernels keep bits >= n zero.
struct SimdOps {
  /// out[i] = v for i < RoundUpLanes(n).
  void (*fill_u32)(uint32_t v, size_t n, uint32_t* out);
  void (*fill_u64)(uint64_t v, size_t n, uint64_t* out);
  /// out[i] = base + i for i < RoundUpLanes(n).
  void (*iota_u32)(uint32_t base, size_t n, uint32_t* out);
  /// out[i] = src[i] for i < RoundUpLanes(n). src/out must not overlap.
  void (*copy_u32)(const uint32_t* src, size_t n, uint32_t* out);
  /// out[i] = vals[idx[i]] for i < RoundUpLanes(n). Every idx[i] in the
  /// padded extent must be a valid index into vals. `idx == out`
  /// aliasing is allowed (each lane loads before it stores).
  void (*gather_u32)(const uint32_t* vals, const uint32_t* idx, size_t n,
                     uint32_t* out);
  /// mask bit i = (a[i] == want), i < n; bits >= n cleared.
  void (*eq_mask_set)(const uint32_t* a, uint32_t want, size_t n,
                      uint64_t* mask);
  /// mask bit i &= (a[i] == want).
  void (*eq_mask_and)(const uint32_t* a, uint32_t want, size_t n,
                      uint64_t* mask);
  /// mask bit i = (a[i] == b[i]), i < n; bits >= n cleared.
  void (*eq2_mask_set)(const uint32_t* a, const uint32_t* b, size_t n,
                       uint64_t* mask);
  /// mask bit i &= (a[i] == b[i]).
  void (*eq2_mask_and)(const uint32_t* a, const uint32_t* b, size_t n,
                       uint64_t* mask);
  /// out[k++] = src[i] for each set mask bit i < n, ascending; returns
  /// k. May write up to one lane past the last element emitted.
  size_t (*compact_u32)(const uint32_t* src, const uint64_t* mask, size_t n,
                        uint32_t* out);
  /// h[i] = HashStep(h[i], vh[codes[i]]) for i < RoundUpLanes(n) — the
  /// code-domain row-hash mix (vh = per-dictionary value hashes). Every
  /// codes[i] in the padded extent must be a valid index into vh.
  void (*hash_mix)(const uint64_t* vh, const uint32_t* codes, size_t n,
                   uint64_t* h);
  /// h[i] = HashStep(h[i], hv) — constant / unbound head positions.
  void (*hash_mix_const)(uint64_t hv, size_t n, uint64_t* h);
};

/// Kernel table: `Ops(true)` returns the compiled vector backend (the
/// scalar table when the build has none), `Ops(false)` always returns
/// the scalar table.
const SimdOps& ScalarOps();
const SimdOps& VectorOps();
inline const SimdOps& Ops(bool use_simd) {
  return use_simd ? VectorOps() : ScalarOps();
}

/// Compile-time backend of VectorOps(): "avx2", "sse2", "neon", or
/// "scalar" (also under REVERE_NO_SIMD).
const char* BackendName();

/// True when VectorOps() is actually vectorized.
bool HasVectorBackend();

}  // namespace revere::simd

#endif  // REVERE_COMMON_SIMD_H_
