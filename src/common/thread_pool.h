#ifndef REVERE_COMMON_THREAD_POOL_H_
#define REVERE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace revere::obs {
class Gauge;
class Histogram;
}  // namespace revere::obs

namespace revere {

/// A fixed-size worker pool for the parallel query-evaluation path.
///
/// Design constraints (ISSUE 2): a known number of workers created once,
/// futures for every submitted task, and no detached threads — the
/// destructor drains the queue and joins every worker, so a pool can be
/// stack-allocated around a burst of work. Tasks should not throw (the
/// library is exception-free); one that does never kills a worker — the
/// exception is captured by the packaged_task, rethrown from the
/// future's .get(), and the pool keeps draining (tested in
/// parallel_test).
///
/// Observability (ISSUE 4): every pool reports to the process-wide
/// obs::MetricsRegistry — `threadpool.queue_depth` (gauge, tasks queued
/// but not yet started, aggregated across pools), `threadpool.tasks`
/// (counter), and `threadpool.task_latency_us` (histogram of execution
/// time, queue wait excluded).
///
/// Determinism contract: the pool schedules tasks in submission order
/// but completion order depends on the OS scheduler. Callers that need
/// reproducible output (every caller in REVERE) must merge results in
/// submission order, never completion order — see
/// query::EvaluateUnion and piazza::PdmsNetwork::AnswerWithProvenance.
class ThreadPool {
 public:
  /// Spawns `workers` threads immediately (clamped to >= 1).
  explicit ThreadPool(size_t workers);
  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn`; the future completes when it has run. Safe to call
  /// from any thread, including pool workers (the task queues; a worker
  /// must not block on a future of a task behind it in the queue).
  std::future<void> Submit(std::function<void()> fn);

  /// Bounded-submit path (ISSUE 6): enqueues like Submit, but fails
  /// fast (nullopt, `fn` not enqueued) when the queue already holds at
  /// least `max_queued` not-yet-started tasks. Callers that fan out an
  /// unbounded stream (AnswerBatch, the serving front end) use this and
  /// run the task inline on refusal — the caller thread becomes the
  /// backpressure, instead of the queue growing without limit.
  std::optional<std::future<void>> TrySubmit(std::function<void()> fn,
                                             size_t max_queued);

  /// Tasks queued but not yet started (approximate under concurrency).
  size_t queue_depth() const;

  /// Tasks executed so far (for tests and instrumentation).
  size_t tasks_completed() const;

  /// A sensible default worker count: the hardware concurrency, at
  /// least 1 (hardware_concurrency may report 0).
  static size_t DefaultWorkerCount();

 private:
  void WorkerLoop();
  /// Wraps `fn` with the latency/completion instrumentation every
  /// queued task carries (shared by Submit and TrySubmit).
  std::packaged_task<void()> MakeTask(std::function<void()> fn);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  size_t completed_ = 0;
  std::vector<std::thread> workers_;
  /// Process-wide metric handles (resolved once in the constructor;
  /// registry pointers are stable forever).
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* task_latency_us_ = nullptr;
};

}  // namespace revere

#endif  // REVERE_COMMON_THREAD_POOL_H_
