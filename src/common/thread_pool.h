#ifndef REVERE_COMMON_THREAD_POOL_H_
#define REVERE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace revere {

/// A fixed-size worker pool for the parallel query-evaluation path.
///
/// Design constraints (ISSUE 2): a known number of workers created once,
/// futures for every submitted task, and no detached threads — the
/// destructor drains the queue and joins every worker, so a pool can be
/// stack-allocated around a burst of work. Tasks must not throw (the
/// library is exception-free); a task that does would terminate via the
/// packaged_task future on .get().
///
/// Determinism contract: the pool schedules tasks in submission order
/// but completion order depends on the OS scheduler. Callers that need
/// reproducible output (every caller in REVERE) must merge results in
/// submission order, never completion order — see
/// query::EvaluateUnion and piazza::PdmsNetwork::AnswerWithProvenance.
class ThreadPool {
 public:
  /// Spawns `workers` threads immediately (clamped to >= 1).
  explicit ThreadPool(size_t workers);
  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn`; the future completes when it has run. Safe to call
  /// from any thread, including pool workers (the task queues; a worker
  /// must not block on a future of a task behind it in the queue).
  std::future<void> Submit(std::function<void()> fn);

  /// Tasks executed so far (for tests and instrumentation).
  size_t tasks_completed() const;

  /// A sensible default worker count: the hardware concurrency, at
  /// least 1 (hardware_concurrency may report 0).
  static size_t DefaultWorkerCount();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  size_t completed_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace revere

#endif  // REVERE_COMMON_THREAD_POOL_H_
