#include "src/common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace revere {

std::vector<std::string> Split(std::string_view input, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) pos = input.size();
    std::string_view piece = input.substr(start, pos - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAny(std::string_view input,
                                  std::string_view delims, bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t pos = input.find_first_of(delims, start);
    if (pos == std::string_view::npos) pos = input.size();
    std::string_view piece = input.substr(start, pos - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) break;
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  out.append(s.substr(start));
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace revere
