#include "src/common/simd.h"

#include <cstring>

#include "src/common/hash.h"

// Backend selection, compile time only (ISSUE 8). simd.cc is the one
// translation unit built with native arch flags (see src/CMakeLists),
// so intrinsics never leak into headers and the rest of the build keeps
// the default baseline. REVERE_NO_SIMD wins over everything.
#if defined(REVERE_NO_SIMD)
#define REVERE_SIMD_SCALAR 1
#elif defined(__AVX2__)
#define REVERE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define REVERE_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define REVERE_SIMD_NEON 1
#include <arm_neon.h>
#else
#define REVERE_SIMD_SCALAR 1
#endif

namespace revere::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar backend: the reference implementation every vector backend
// must match bit for bit. Also the runtime fallback behind Ops(false).
// ---------------------------------------------------------------------

void FillU32Scalar(uint32_t v, size_t n, uint32_t* out) {
  for (size_t i = 0; i < RoundUpLanes(n); ++i) out[i] = v;
}

void FillU64Scalar(uint64_t v, size_t n, uint64_t* out) {
  for (size_t i = 0; i < RoundUpLanes(n); ++i) out[i] = v;
}

void IotaU32Scalar(uint32_t base, size_t n, uint32_t* out) {
  for (size_t i = 0; i < RoundUpLanes(n); ++i) {
    out[i] = base + static_cast<uint32_t>(i);
  }
}

void CopyU32Scalar(const uint32_t* src, size_t n, uint32_t* out) {
  std::memcpy(out, src, RoundUpLanes(n) * sizeof(uint32_t));
}

void GatherU32Scalar(const uint32_t* vals, const uint32_t* idx, size_t n,
                     uint32_t* out) {
  // idx == out aliasing is fine: each element is read before written.
  for (size_t i = 0; i < RoundUpLanes(n); ++i) out[i] = vals[idx[i]];
}

/// Clears mask bits >= n in the last word (kernels keep them zero so
/// compact never needs a separate bound).
void TrimMask(size_t n, uint64_t* mask) {
  if (n % 64 != 0) mask[n / 64] &= (uint64_t{1} << (n % 64)) - 1;
}

void EqMaskSetScalar(const uint32_t* a, uint32_t want, size_t n,
                     uint64_t* mask) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t limit = n - w * 64 < 64 ? n - w * 64 : 64;
    for (size_t b = 0; b < limit; ++b) {
      word |= uint64_t{a[w * 64 + b] == want} << b;
    }
    mask[w] = word;
  }
}

void EqMaskAndScalar(const uint32_t* a, uint32_t want, size_t n,
                     uint64_t* mask) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t limit = n - w * 64 < 64 ? n - w * 64 : 64;
    for (size_t b = 0; b < limit; ++b) {
      word |= uint64_t{a[w * 64 + b] == want} << b;
    }
    mask[w] &= word;
  }
}

void Eq2MaskSetScalar(const uint32_t* a, const uint32_t* b, size_t n,
                      uint64_t* mask) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t limit = n - w * 64 < 64 ? n - w * 64 : 64;
    for (size_t i = 0; i < limit; ++i) {
      word |= uint64_t{a[w * 64 + i] == b[w * 64 + i]} << i;
    }
    mask[w] = word;
  }
}

void Eq2MaskAndScalar(const uint32_t* a, const uint32_t* b, size_t n,
                      uint64_t* mask) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t limit = n - w * 64 < 64 ? n - w * 64 : 64;
    for (size_t i = 0; i < limit; ++i) {
      word |= uint64_t{a[w * 64 + i] == b[w * 64 + i]} << i;
    }
    mask[w] &= word;
  }
}

size_t CompactU32Scalar(const uint32_t* src, const uint64_t* mask, size_t n,
                        uint32_t* out) {
  size_t k = 0;
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = mask[w];
    while (word != 0) {
      unsigned b = static_cast<unsigned>(__builtin_ctzll(word));
      out[k++] = src[w * 64 + b];
      word &= word - 1;
    }
  }
  return k;
}

void HashMixScalar(const uint64_t* vh, const uint32_t* codes, size_t n,
                   uint64_t* h) {
  for (size_t i = 0; i < RoundUpLanes(n); ++i) {
    h[i] = HashStep(h[i], vh[codes[i]]);
  }
}

void HashMixConstScalar(uint64_t hv, size_t n, uint64_t* h) {
  for (size_t i = 0; i < RoundUpLanes(n); ++i) h[i] = HashStep(h[i], hv);
}

constexpr SimdOps kScalarOps = {
    FillU32Scalar,    FillU64Scalar,    IotaU32Scalar,    CopyU32Scalar,
    GatherU32Scalar,  EqMaskSetScalar,  EqMaskAndScalar,  Eq2MaskSetScalar,
    Eq2MaskAndScalar, CompactU32Scalar, HashMixScalar,    HashMixConstScalar,
};

// ---------------------------------------------------------------------
// AVX2 backend: 8 × uint32 lanes (4 × uint64 for the hash mix), all
// loads/stores unaligned — the padding contract guarantees extent, not
// alignment.
// ---------------------------------------------------------------------

#if defined(REVERE_SIMD_AVX2)

void FillU32Avx2(uint32_t v, size_t n, uint32_t* out) {
  __m256i vv = _mm256_set1_epi32(static_cast<int>(v));
  for (size_t i = 0; i < RoundUpLanes(n); i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vv);
  }
}

void FillU64Avx2(uint64_t v, size_t n, uint64_t* out) {
  __m256i vv = _mm256_set1_epi64x(static_cast<long long>(v));
  for (size_t i = 0; i < RoundUpLanes(n); i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vv);
  }
}

void IotaU32Avx2(uint32_t base, size_t n, uint32_t* out) {
  __m256i v = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(base)),
                               _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  const __m256i step = _mm256_set1_epi32(8);
  for (size_t i = 0; i < RoundUpLanes(n); i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    v = _mm256_add_epi32(v, step);
  }
}

void GatherU32Avx2(const uint32_t* vals, const uint32_t* idx, size_t n,
                   uint32_t* out) {
  for (size_t i = 0; i < RoundUpLanes(n); i += 8) {
    __m256i iv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    __m256i gv = _mm256_i32gather_epi32(reinterpret_cast<const int*>(vals),
                                        iv, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), gv);
  }
}

/// 8 compare lanes -> 8 mask bits (bit l = lane l equal).
inline uint32_t EqBits8(__m256i a, __m256i b) {
  return static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b))));
}

template <bool kAnd>
void EqMaskAvx2(const uint32_t* a, uint32_t want, size_t n, uint64_t* mask) {
  const __m256i wv = _mm256_set1_epi32(static_cast<int>(want));
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t base = w * 64;
    size_t groups = (n - base < 64 ? RoundUpLanes(n - base) : 64) / 8;
    for (size_t g = 0; g < groups; ++g) {
      __m256i av = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a + base + g * 8));
      word |= static_cast<uint64_t>(EqBits8(av, wv)) << (g * 8);
    }
    if (kAnd) {
      mask[w] &= word;
    } else {
      mask[w] = word;
    }
  }
  TrimMask(n, mask);
}

template <bool kAnd>
void Eq2MaskAvx2(const uint32_t* a, const uint32_t* b, size_t n,
                 uint64_t* mask) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t base = w * 64;
    size_t groups = (n - base < 64 ? RoundUpLanes(n - base) : 64) / 8;
    for (size_t g = 0; g < groups; ++g) {
      __m256i av = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a + base + g * 8));
      __m256i bv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + base + g * 8));
      word |= static_cast<uint64_t>(EqBits8(av, bv)) << (g * 8);
    }
    if (kAnd) {
      mask[w] &= word;
    } else {
      mask[w] = word;
    }
  }
  TrimMask(n, mask);
}

void EqMaskSetAvx2(const uint32_t* a, uint32_t want, size_t n,
                   uint64_t* mask) {
  EqMaskAvx2<false>(a, want, n, mask);
}
void EqMaskAndAvx2(const uint32_t* a, uint32_t want, size_t n,
                   uint64_t* mask) {
  // TrimMask in Set already zeroed tail bits; And can only clear more.
  EqMaskAvx2<true>(a, want, n, mask);
}
void Eq2MaskSetAvx2(const uint32_t* a, const uint32_t* b, size_t n,
                    uint64_t* mask) {
  Eq2MaskAvx2<false>(a, b, n, mask);
}
void Eq2MaskAndAvx2(const uint32_t* a, const uint32_t* b, size_t n,
                    uint64_t* mask) {
  Eq2MaskAvx2<true>(a, b, n, mask);
}

/// perm[bits] = lane permutation packing the set lanes of an 8-bit mask
/// to the front (the AVX2 stand-in for AVX-512 compress-store).
struct CompactLut {
  alignas(32) uint32_t perm[256][8];
  CompactLut() {
    for (int bits = 0; bits < 256; ++bits) {
      int k = 0;
      for (int l = 0; l < 8; ++l) {
        if (bits & (1 << l)) perm[bits][k++] = static_cast<uint32_t>(l);
      }
      for (; k < 8; ++k) perm[bits][k] = 0;
    }
  }
};

size_t CompactU32Avx2(const uint32_t* src, const uint64_t* mask, size_t n,
                      uint32_t* out) {
  static const CompactLut lut;
  size_t k = 0;
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = mask[w];
    if (word == 0) continue;
    size_t base = w * 64;
    size_t groups = (n - base < 64 ? RoundUpLanes(n - base) : 64) / 8;
    for (size_t g = 0; g < groups; ++g) {
      uint32_t bits = (word >> (g * 8)) & 0xFF;
      if (bits == 0) continue;
      __m256i sv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + base + g * 8));
      if (bits == 0xFF) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), sv);
        k += 8;
        continue;
      }
      __m256i pv = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(lut.perm[bits]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                          _mm256_permutevar8x32_epi32(sv, pv));
      k += static_cast<size_t>(__builtin_popcount(bits));
    }
  }
  return k;
}

/// HashStep over 4 × uint64 lanes: h ^= vh + C + (h << 6) + (h >> 2).
inline __m256i HashStep4(__m256i h, __m256i vh) {
  const __m256i c = _mm256_set1_epi64x(0x9e3779b97f4a7c15LL);
  __m256i t = _mm256_add_epi64(vh, c);
  t = _mm256_add_epi64(t, _mm256_slli_epi64(h, 6));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(h, 2));
  return _mm256_xor_si256(h, t);
}

void HashMixAvx2(const uint64_t* vh, const uint32_t* codes, size_t n,
                 uint64_t* h) {
  for (size_t i = 0; i < RoundUpLanes(n); i += 8) {
    __m256i cv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    __m128i lo = _mm256_castsi256_si128(cv);
    __m128i hi = _mm256_extracti128_si256(cv, 1);
    __m256i vh_lo = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(vh), lo, 8);
    __m256i vh_hi = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(vh), hi, 8);
    __m256i h_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    __m256i h_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + i),
                        HashStep4(h_lo, vh_lo));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + i + 4),
                        HashStep4(h_hi, vh_hi));
  }
}

void HashMixConstAvx2(uint64_t hv, size_t n, uint64_t* h) {
  __m256i vv = _mm256_set1_epi64x(static_cast<long long>(hv));
  for (size_t i = 0; i < RoundUpLanes(n); i += 4) {
    __m256i hvv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + i),
                        HashStep4(hvv, vv));
  }
}

constexpr SimdOps kVectorOps = {
    FillU32Avx2,    FillU64Avx2,    IotaU32Avx2,    CopyU32Scalar,
    GatherU32Avx2,  EqMaskSetAvx2,  EqMaskAndAvx2,  Eq2MaskSetAvx2,
    Eq2MaskAndAvx2, CompactU32Avx2, HashMixAvx2,    HashMixConstAvx2,
};
constexpr const char* kBackendName = "avx2";

#elif defined(REVERE_SIMD_SSE2)

// ---------------------------------------------------------------------
// SSE2 backend: 4 × uint32 compare lanes. SSE2 has no gather and no
// lane permute, so gather/compact/hash stay scalar — the filter compare
// is the only loop where 4-wide already pays on this baseline.
// ---------------------------------------------------------------------

/// 4 compare lanes -> 4 mask bits.
inline uint32_t EqBits4(__m128i a, __m128i b) {
  return static_cast<uint32_t>(
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(a, b))));
}

template <bool kAnd>
void EqMaskSse2(const uint32_t* a, uint32_t want, size_t n, uint64_t* mask) {
  const __m128i wv = _mm_set1_epi32(static_cast<int>(want));
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t base = w * 64;
    size_t groups = (n - base < 64 ? RoundUpLanes(n - base) : 64) / 4;
    for (size_t g = 0; g < groups; ++g) {
      __m128i av = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a + base + g * 4));
      word |= static_cast<uint64_t>(EqBits4(av, wv)) << (g * 4);
    }
    if (kAnd) {
      mask[w] &= word;
    } else {
      mask[w] = word;
    }
  }
  TrimMask(n, mask);
}

template <bool kAnd>
void Eq2MaskSse2(const uint32_t* a, const uint32_t* b, size_t n,
                 uint64_t* mask) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t base = w * 64;
    size_t groups = (n - base < 64 ? RoundUpLanes(n - base) : 64) / 4;
    for (size_t g = 0; g < groups; ++g) {
      __m128i av = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a + base + g * 4));
      __m128i bv = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + base + g * 4));
      word |= static_cast<uint64_t>(EqBits4(av, bv)) << (g * 4);
    }
    if (kAnd) {
      mask[w] &= word;
    } else {
      mask[w] = word;
    }
  }
  TrimMask(n, mask);
}

void EqMaskSetSse2(const uint32_t* a, uint32_t want, size_t n,
                   uint64_t* mask) {
  EqMaskSse2<false>(a, want, n, mask);
}
void EqMaskAndSse2(const uint32_t* a, uint32_t want, size_t n,
                   uint64_t* mask) {
  EqMaskSse2<true>(a, want, n, mask);
}
void Eq2MaskSetSse2(const uint32_t* a, const uint32_t* b, size_t n,
                    uint64_t* mask) {
  Eq2MaskSse2<false>(a, b, n, mask);
}
void Eq2MaskAndSse2(const uint32_t* a, const uint32_t* b, size_t n,
                    uint64_t* mask) {
  Eq2MaskSse2<true>(a, b, n, mask);
}

constexpr SimdOps kVectorOps = {
    FillU32Scalar,    FillU64Scalar,    IotaU32Scalar,    CopyU32Scalar,
    GatherU32Scalar,  EqMaskSetSse2,    EqMaskAndSse2,    Eq2MaskSetSse2,
    Eq2MaskAndSse2,   CompactU32Scalar, HashMixScalar,    HashMixConstScalar,
};
constexpr const char* kBackendName = "sse2";

#elif defined(REVERE_SIMD_NEON)

// ---------------------------------------------------------------------
// NEON backend: 4 × uint32 compare lanes (no gather on plain NEON;
// gather/compact/hash stay scalar, as on SSE2).
// ---------------------------------------------------------------------

/// 4 compare lanes -> 4 mask bits via narrow-to-16 + lane extraction.
inline uint32_t EqBits4Neon(uint32x4_t eq) {
  uint16x4_t narrow = vmovn_u32(eq);
  uint64_t m = vget_lane_u64(vreinterpret_u64_u16(narrow), 0);
  return static_cast<uint32_t>((m & 1) | ((m >> 15) & 2) | ((m >> 30) & 4) |
                               ((m >> 45) & 8));
}

template <bool kAnd>
void EqMaskNeon(const uint32_t* a, uint32_t want, size_t n, uint64_t* mask) {
  const uint32x4_t wv = vdupq_n_u32(want);
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t base = w * 64;
    size_t groups = (n - base < 64 ? RoundUpLanes(n - base) : 64) / 4;
    for (size_t g = 0; g < groups; ++g) {
      uint32x4_t av = vld1q_u32(a + base + g * 4);
      word |= static_cast<uint64_t>(EqBits4Neon(vceqq_u32(av, wv)))
              << (g * 4);
    }
    if (kAnd) {
      mask[w] &= word;
    } else {
      mask[w] = word;
    }
  }
  TrimMask(n, mask);
}

template <bool kAnd>
void Eq2MaskNeon(const uint32_t* a, const uint32_t* b, size_t n,
                 uint64_t* mask) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t word = 0;
    size_t base = w * 64;
    size_t groups = (n - base < 64 ? RoundUpLanes(n - base) : 64) / 4;
    for (size_t g = 0; g < groups; ++g) {
      uint32x4_t av = vld1q_u32(a + base + g * 4);
      uint32x4_t bv = vld1q_u32(b + base + g * 4);
      word |= static_cast<uint64_t>(EqBits4Neon(vceqq_u32(av, bv)))
              << (g * 4);
    }
    if (kAnd) {
      mask[w] &= word;
    } else {
      mask[w] = word;
    }
  }
  TrimMask(n, mask);
}

void EqMaskSetNeon(const uint32_t* a, uint32_t want, size_t n,
                   uint64_t* mask) {
  EqMaskNeon<false>(a, want, n, mask);
}
void EqMaskAndNeon(const uint32_t* a, uint32_t want, size_t n,
                   uint64_t* mask) {
  EqMaskNeon<true>(a, want, n, mask);
}
void Eq2MaskSetNeon(const uint32_t* a, const uint32_t* b, size_t n,
                    uint64_t* mask) {
  Eq2MaskNeon<false>(a, b, n, mask);
}
void Eq2MaskAndNeon(const uint32_t* a, const uint32_t* b, size_t n,
                    uint64_t* mask) {
  Eq2MaskNeon<true>(a, b, n, mask);
}

constexpr SimdOps kVectorOps = {
    FillU32Scalar,    FillU64Scalar,    IotaU32Scalar,    CopyU32Scalar,
    GatherU32Scalar,  EqMaskSetNeon,    EqMaskAndNeon,    Eq2MaskSetNeon,
    Eq2MaskAndNeon,   CompactU32Scalar, HashMixScalar,    HashMixConstScalar,
};
constexpr const char* kBackendName = "neon";

#else

constexpr SimdOps kVectorOps = kScalarOps;
constexpr const char* kBackendName = "scalar";

#endif

}  // namespace

const SimdOps& ScalarOps() { return kScalarOps; }
const SimdOps& VectorOps() { return kVectorOps; }
const char* BackendName() { return kBackendName; }
bool HasVectorBackend() {
#if defined(REVERE_SIMD_SCALAR)
  return false;
#else
  return true;
#endif
}

}  // namespace revere::simd
