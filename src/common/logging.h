#ifndef REVERE_COMMON_LOGGING_H_
#define REVERE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace revere {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarning so library users aren't spammed; tests may lower it.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define REVERE_LOG(level)                                                \
  if (::revere::LogLevel::level < ::revere::GetLogLevel()) {             \
  } else                                                                 \
    ::revere::internal::LogMessage(::revere::LogLevel::level, __FILE__,  \
                                   __LINE__)                             \
        .stream()

}  // namespace revere

#endif  // REVERE_COMMON_LOGGING_H_
