#ifndef REVERE_COMMON_RNG_H_
#define REVERE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace revere {

/// Deterministic pseudo-random generator (splitmix64 core). Every
/// randomized component in REVERE takes an explicit seed so that tests,
/// data generation, and benchmarks are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// Gaussian sample (Box-Muller).
  double Gaussian(double mean, double stddev);

  /// Zipfian rank in [0, n) with exponent `theta` (theta=0 is uniform).
  /// Used by workload generators to skew access patterns.
  uint64_t Zipf(uint64_t n, double theta);

  /// Picks one element index from [0, n) — convenience alias of Uniform.
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(n)); }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-component seeding).
  Rng Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  uint64_t state_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace revere

#endif  // REVERE_COMMON_RNG_H_
