#include "src/common/rng.h"

#include <cmath>

namespace revere {

uint64_t Rng::Next() {
  // splitmix64: tiny, fast, and passes BigCrush for our purposes.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Gaussian(double mean, double stddev) {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return mean + stddev * u * mul;
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  // Inverse-CDF via partial harmonic sums would be O(n); use the standard
  // acceptance method from Gray et al. for moderate n — here a simple
  // cumulative walk is fine because generators cache nothing and our n is
  // small (vocabulary sizes), so clarity wins.
  double denom = 0.0;
  for (uint64_t i = 1; i <= n; ++i) denom += 1.0 / std::pow(double(i), theta);
  double u = UniformDouble() * denom;
  double cum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    cum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (u <= cum) return i - 1;
  }
  return n - 1;
}

}  // namespace revere
