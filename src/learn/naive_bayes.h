#ifndef REVERE_LEARN_NAIVE_BAYES_H_
#define REVERE_LEARN_NAIVE_BAYES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/learn/learner.h"

namespace revere::learn {

/// Multinomial naive Bayes over data-value tokens — LSD's content
/// learner. "The classifiers computed by LSD actually encode a statistic
/// for a composite structure that includes the set of values in a column
/// and the column name" (§4.3.2). Posteriors are normalized to [0, 1].
class NaiveBayesLearner : public BaseLearner {
 public:
  NaiveBayesLearner() = default;

  std::string name() const override { return "naive-bayes"; }
  Status Train(const std::vector<TrainingExample>& examples) override;
  Prediction Predict(const ColumnInstance& column) const override;

 private:
  std::map<Label, std::map<std::string, size_t>> token_counts_;
  std::map<Label, size_t> total_tokens_;
  std::map<Label, size_t> label_columns_;
  size_t total_columns_ = 0;
  std::set<std::string> vocabulary_;  // grows across Train calls
};

}  // namespace revere::learn

#endif  // REVERE_LEARN_NAIVE_BAYES_H_
