#ifndef REVERE_LEARN_CONTEXT_LEARNER_H_
#define REVERE_LEARN_CONTEXT_LEARNER_H_

#include <map>
#include <string>
#include <vector>

#include "src/learn/learner.h"
#include "src/text/tfidf.h"

namespace revere::learn {

/// Matches columns by their structural *context*: the relation name and
/// sibling attribute names ("proximity of attributes, structure of the
/// schema", §4.3.2). A label's profile is the TF/IDF centroid of its
/// training contexts; prediction is cosine similarity to that centroid.
class ContextLearner : public BaseLearner {
 public:
  ContextLearner() = default;

  std::string name() const override { return "context"; }
  Status Train(const std::vector<TrainingExample>& examples) override;
  Prediction Predict(const ColumnInstance& column) const override;

 private:
  static std::vector<std::string> ContextTokens(const ColumnInstance& c);

  text::TfIdfModel model_;
  std::map<Label, text::SparseVector> centroids_;
  std::map<Label, size_t> counts_;
};

}  // namespace revere::learn

#endif  // REVERE_LEARN_CONTEXT_LEARNER_H_
