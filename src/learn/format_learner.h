#ifndef REVERE_LEARN_FORMAT_LEARNER_H_
#define REVERE_LEARN_FORMAT_LEARNER_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "src/learn/learner.h"

namespace revere::learn {

/// Matches columns by the *shape* of their values (length, digit/alpha
/// mix, punctuation like '@' or '-') rather than their vocabulary —
/// telling a phone column from an email column even when every value is
/// unseen. Nearest-centroid over a fixed feature vector.
class FormatLearner : public BaseLearner {
 public:
  static constexpr size_t kFeatureCount = 8;
  using Features = std::array<double, kFeatureCount>;

  FormatLearner() = default;

  std::string name() const override { return "format"; }
  Status Train(const std::vector<TrainingExample>& examples) override;
  Prediction Predict(const ColumnInstance& column) const override;

  /// Feature vector of one column's values (exposed for tests).
  static Features Featurize(const std::vector<std::string>& values);

 private:
  std::map<Label, Features> centroids_;
  std::map<Label, size_t> counts_;
};

}  // namespace revere::learn

#endif  // REVERE_LEARN_FORMAT_LEARNER_H_
