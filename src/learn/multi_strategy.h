#ifndef REVERE_LEARN_MULTI_STRATEGY_H_
#define REVERE_LEARN_MULTI_STRATEGY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/learn/learner.h"

namespace revere::learn {

/// LSD's multi-strategy architecture (§4.3.2): several base learners are
/// trained on manually mapped sources; a meta-learner combines their
/// predictions. Here the meta-learner assigns each base learner a weight
/// from its accuracy on a held-out validation split (a simplification of
/// LSD's per-label regression that preserves the architecture).
class MultiStrategyLearner : public BaseLearner {
 public:
  /// `validation_fraction` of the training data is held out to fit the
  /// combination weights; `seed` makes the split deterministic.
  explicit MultiStrategyLearner(double validation_fraction = 0.25,
                                uint64_t seed = 17)
      : validation_fraction_(validation_fraction), seed_(seed) {}

  /// Registers a base learner (before Train).
  void AddLearner(std::unique_ptr<BaseLearner> learner);

  /// Builds the default LSD-style stack: name, naive Bayes over values,
  /// value format, and structural context.
  static std::unique_ptr<MultiStrategyLearner> WithDefaultStack(
      uint64_t seed = 17);

  std::string name() const override { return "multi-strategy"; }
  Status Train(const std::vector<TrainingExample>& examples) override;
  Prediction Predict(const ColumnInstance& column) const override;

  /// Learned combination weights by learner name (sums to 1).
  const std::map<std::string, double>& weights() const { return weights_; }

 private:
  double validation_fraction_;
  uint64_t seed_;
  std::vector<std::unique_ptr<BaseLearner>> learners_;
  std::map<std::string, double> weights_;
};

}  // namespace revere::learn

#endif  // REVERE_LEARN_MULTI_STRATEGY_H_
