#ifndef REVERE_LEARN_LEARNER_H_
#define REVERE_LEARN_LEARNER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace revere::learn {

/// One schema element presented to the matcher: an attribute (column)
/// with its name, a sample of its data values, and its structural
/// context. This is LSD's input unit — the system "can employ multiple
/// learners, thereby having the ability to learn from different kinds of
/// information in the input (values of the data instances, names of
/// attributes, proximity of attributes, structure of the schema)" §4.3.2.
struct ColumnInstance {
  std::string schema_id;
  std::string relation;
  std::string attribute;
  std::vector<std::string> values;
  std::vector<std::string> sibling_attributes;

  std::string QualifiedName() const { return relation + "." + attribute; }
};

/// A semantic label (mediated-schema element) with training examples.
using Label = std::string;
using TrainingExample = std::pair<ColumnInstance, Label>;

/// Per-label confidence scores from one learner. Scores are in [0, 1]
/// and need not sum to 1.
struct Prediction {
  std::map<Label, double> scores;

  /// Highest-scoring label; empty when no scores.
  Label Best() const;
  double BestScore() const;
  double ScoreOf(const Label& label) const;
};

/// A base learner in the multi-strategy architecture.
class BaseLearner {
 public:
  virtual ~BaseLearner() = default;

  /// Human-readable learner name (for diagnostics and weights).
  virtual std::string name() const = 0;

  /// Trains on labeled columns. May be called once.
  virtual Status Train(const std::vector<TrainingExample>& examples) = 0;

  /// Scores an unseen column against every trained label.
  virtual Prediction Predict(const ColumnInstance& column) const = 0;
};

}  // namespace revere::learn

#endif  // REVERE_LEARN_LEARNER_H_
