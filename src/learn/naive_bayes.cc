#include "src/learn/naive_bayes.h"

#include <cmath>
#include <set>

#include "src/text/tokenizer.h"

namespace revere::learn {

Status NaiveBayesLearner::Train(const std::vector<TrainingExample>& examples) {
  for (const auto& [column, label] : examples) {
    ++label_columns_[label];
    ++total_columns_;
    for (const auto& value : column.values) {
      for (const auto& token : text::TokenizeText(value)) {
        ++token_counts_[label][token];
        ++total_tokens_[label];
        vocabulary_.insert(token);
      }
    }
  }
  return Status::Ok();
}

Prediction NaiveBayesLearner::Predict(const ColumnInstance& column) const {
  Prediction out;
  if (total_columns_ == 0) return out;
  std::vector<std::string> tokens;
  for (const auto& value : column.values) {
    for (auto& t : text::TokenizeText(value)) tokens.push_back(std::move(t));
  }
  if (tokens.empty()) return out;

  // Log-posterior per label with Laplace smoothing, then softmax-style
  // normalization so scores are comparable across learners.
  std::map<Label, double> log_posteriors;
  double max_lp = -1e300;
  for (const auto& [label, count] : label_columns_) {
    double lp = std::log(static_cast<double>(count) /
                         static_cast<double>(total_columns_));
    auto tc_it = token_counts_.find(label);
    double denom = static_cast<double>(
                       total_tokens_.count(label) ? total_tokens_.at(label)
                                                  : 0) +
                   static_cast<double>(vocabulary_.size()) + 1.0;
    for (const auto& token : tokens) {
      double num = 1.0;
      if (tc_it != token_counts_.end()) {
        auto it = tc_it->second.find(token);
        if (it != tc_it->second.end()) {
          num += static_cast<double>(it->second);
        }
      }
      lp += std::log(num / denom);
    }
    // Length normalization keeps long value samples from saturating.
    lp /= static_cast<double>(tokens.size());
    log_posteriors[label] = lp;
    max_lp = std::max(max_lp, lp);
  }
  double z = 0.0;
  for (const auto& [label, lp] : log_posteriors) {
    z += std::exp(lp - max_lp);
  }
  for (const auto& [label, lp] : log_posteriors) {
    out.scores[label] = std::exp(lp - max_lp) / z;
  }
  return out;
}

}  // namespace revere::learn
