#include "src/learn/context_learner.h"

#include "src/text/stemmer.h"
#include "src/text/tokenizer.h"

namespace revere::learn {

std::vector<std::string> ContextLearner::ContextTokens(
    const ColumnInstance& c) {
  std::vector<std::string> tokens;
  auto add_identifier = [&](const std::string& name) {
    for (auto& t : text::TokenizeIdentifier(name)) {
      tokens.push_back(text::PorterStem(t));
    }
  };
  add_identifier(c.relation);
  for (const auto& sibling : c.sibling_attributes) add_identifier(sibling);
  return tokens;
}

Status ContextLearner::Train(const std::vector<TrainingExample>& examples) {
  // First pass: corpus statistics for idf.
  for (const auto& [column, label] : examples) {
    model_.AddDocument(ContextTokens(column));
  }
  // Second pass: per-label centroids of tf-idf vectors.
  for (const auto& [column, label] : examples) {
    text::SparseVector v = model_.Vectorize(ContextTokens(column));
    text::SparseVector& centroid = centroids_[label];
    for (const auto& [term, w] : v) centroid[term] += w;
    ++counts_[label];
  }
  for (auto& [label, centroid] : centroids_) {
    text::Normalize(&centroid);
  }
  return Status::Ok();
}

Prediction ContextLearner::Predict(const ColumnInstance& column) const {
  Prediction out;
  text::SparseVector v = model_.Vectorize(ContextTokens(column));
  for (const auto& [label, centroid] : centroids_) {
    out.scores[label] = text::CosineSimilarity(v, centroid);
  }
  return out;
}

}  // namespace revere::learn
