#include "src/learn/learner.h"

namespace revere::learn {

Label Prediction::Best() const {
  Label best;
  double best_score = -1.0;
  for (const auto& [label, score] : scores) {
    if (score > best_score) {
      best_score = score;
      best = label;
    }
  }
  return best;
}

double Prediction::BestScore() const {
  double best = 0.0;
  for (const auto& [label, score] : scores) {
    if (score > best) best = score;
  }
  return best;
}

double Prediction::ScoreOf(const Label& label) const {
  auto it = scores.find(label);
  return it == scores.end() ? 0.0 : it->second;
}

}  // namespace revere::learn
