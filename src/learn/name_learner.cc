#include "src/learn/name_learner.h"

#include <algorithm>

namespace revere::learn {

Status NameLearner::Train(const std::vector<TrainingExample>& examples) {
  for (const auto& [column, label] : examples) {
    training_names_.emplace_back(column.attribute, label);
  }
  return Status::Ok();
}

Prediction NameLearner::Predict(const ColumnInstance& column) const {
  Prediction out;
  for (const auto& [name, label] : training_names_) {
    double sim = text::NameSimilarity(column.attribute, name, options_);
    double& slot = out.scores[label];
    slot = std::max(slot, sim);
  }
  return out;
}

}  // namespace revere::learn
