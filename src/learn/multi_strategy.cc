#include "src/learn/multi_strategy.h"

#include <algorithm>

#include "src/learn/context_learner.h"
#include "src/learn/format_learner.h"
#include "src/learn/name_learner.h"
#include "src/learn/naive_bayes.h"

namespace revere::learn {

void MultiStrategyLearner::AddLearner(std::unique_ptr<BaseLearner> learner) {
  learners_.push_back(std::move(learner));
}

std::unique_ptr<MultiStrategyLearner> MultiStrategyLearner::WithDefaultStack(
    uint64_t seed) {
  auto multi = std::make_unique<MultiStrategyLearner>(0.25, seed);
  multi->AddLearner(std::make_unique<NameLearner>());
  multi->AddLearner(std::make_unique<NaiveBayesLearner>());
  multi->AddLearner(std::make_unique<FormatLearner>());
  multi->AddLearner(std::make_unique<ContextLearner>());
  return multi;
}

Status MultiStrategyLearner::Train(
    const std::vector<TrainingExample>& examples) {
  if (learners_.empty()) {
    return Status::FailedPrecondition("no base learners registered");
  }
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  // Deterministic split into fit/validation.
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed_);
  rng.Shuffle(&order);
  size_t validation_size = static_cast<size_t>(
      static_cast<double>(examples.size()) * validation_fraction_);
  // Keep at least one example on each side when possible.
  validation_size = std::min(validation_size, examples.size() - 1);

  std::vector<TrainingExample> fit, validation;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < validation_size) {
      validation.push_back(examples[order[i]]);
    } else {
      fit.push_back(examples[order[i]]);
    }
  }

  // Phase 1: train base learners on the fit split; measure held-out
  // accuracy to derive weights.
  if (!validation.empty()) {
    // Base learners support incremental training: fit split first (to
    // score held-out accuracy), validation split folded in afterwards.
    for (auto& learner : learners_) {
      REVERE_RETURN_IF_ERROR(learner->Train(fit));
    }
    double total = 0.0;
    for (const auto& learner : learners_) {
      size_t correct = 0;
      for (const auto& [column, label] : validation) {
        if (learner->Predict(column).Best() == label) ++correct;
      }
      // Smoothed accuracy: even a 0-accuracy learner keeps a sliver so
      // a tiny validation set cannot silence a whole modality.
      double acc = (static_cast<double>(correct) + 0.5) /
                   (static_cast<double>(validation.size()) + 1.0);
      weights_[learner->name()] = acc;
      total += acc;
    }
    for (auto& [name, w] : weights_) w /= total;
    // Phase 2: the base learners above were only trained on the fit
    // split; give them the validation examples too (incremental train).
    for (auto& learner : learners_) {
      REVERE_RETURN_IF_ERROR(learner->Train(validation));
    }
  } else {
    for (auto& learner : learners_) {
      REVERE_RETURN_IF_ERROR(learner->Train(examples));
      weights_[learner->name()] =
          1.0 / static_cast<double>(learners_.size());
    }
  }
  return Status::Ok();
}

Prediction MultiStrategyLearner::Predict(const ColumnInstance& column) const {
  Prediction out;
  for (const auto& learner : learners_) {
    auto wit = weights_.find(learner->name());
    double w = wit == weights_.end()
                   ? 1.0 / static_cast<double>(learners_.size())
                   : wit->second;
    Prediction p = learner->Predict(column);
    for (const auto& [label, score] : p.scores) {
      out.scores[label] += w * score;
    }
  }
  return out;
}

}  // namespace revere::learn
