#include "src/learn/format_learner.h"

#include <cctype>
#include <cmath>

namespace revere::learn {

FormatLearner::Features FormatLearner::Featurize(
    const std::vector<std::string>& values) {
  Features f{};
  if (values.empty()) return f;
  double n = 0.0;
  for (const auto& v : values) {
    if (v.empty()) continue;
    n += 1.0;
    double len = static_cast<double>(v.size());
    double digits = 0.0, alphas = 0.0, spaces = 0.0, punct = 0.0;
    bool has_at = false, has_dash = false, has_colon = false;
    for (char c : v) {
      unsigned char uc = static_cast<unsigned char>(c);
      if (std::isdigit(uc)) {
        ++digits;
      } else if (std::isalpha(uc)) {
        ++alphas;
      } else if (std::isspace(uc)) {
        ++spaces;
      } else {
        ++punct;
      }
      if (c == '@') has_at = true;
      if (c == '-') has_dash = true;
      if (c == ':') has_colon = true;
    }
    f[0] += std::min(len / 64.0, 1.0);  // normalized length
    f[1] += digits / len;
    f[2] += alphas / len;
    f[3] += spaces / len;
    f[4] += punct / len;
    f[5] += has_at ? 1.0 : 0.0;
    f[6] += has_dash ? 1.0 : 0.0;
    f[7] += has_colon ? 1.0 : 0.0;
  }
  if (n > 0) {
    for (auto& x : f) x /= n;
  }
  return f;
}

Status FormatLearner::Train(const std::vector<TrainingExample>& examples) {
  for (const auto& [column, label] : examples) {
    Features f = Featurize(column.values);
    Features& centroid = centroids_[label];
    size_t& count = counts_[label];
    for (size_t i = 0; i < kFeatureCount; ++i) {
      centroid[i] = (centroid[i] * static_cast<double>(count) + f[i]) /
                    static_cast<double>(count + 1);
    }
    ++count;
  }
  return Status::Ok();
}

Prediction FormatLearner::Predict(const ColumnInstance& column) const {
  Prediction out;
  if (column.values.empty()) return out;
  Features f = Featurize(column.values);
  for (const auto& [label, centroid] : centroids_) {
    double d2 = 0.0;
    for (size_t i = 0; i < kFeatureCount; ++i) {
      double d = f[i] - centroid[i];
      d2 += d * d;
    }
    // Distance to similarity in (0, 1].
    out.scores[label] = 1.0 / (1.0 + std::sqrt(d2) * 4.0);
  }
  return out;
}

}  // namespace revere::learn
