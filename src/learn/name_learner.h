#ifndef REVERE_LEARN_NAME_LEARNER_H_
#define REVERE_LEARN_NAME_LEARNER_H_

#include <string>
#include <vector>

#include "src/learn/learner.h"
#include "src/text/similarity.h"

namespace revere::learn {

/// Matches columns by their *names*: the score of a label is the best
/// NameSimilarity between the input's attribute name (and its
/// relation-qualified form) and any training name of that label.
/// Handles synonyms and morphology via the text substrate.
class NameLearner : public BaseLearner {
 public:
  explicit NameLearner(text::NameSimilarityOptions options = {})
      : options_(options) {}

  std::string name() const override { return "name"; }
  Status Train(const std::vector<TrainingExample>& examples) override;
  Prediction Predict(const ColumnInstance& column) const override;

 private:
  text::NameSimilarityOptions options_;
  std::vector<std::pair<std::string, Label>> training_names_;
};

}  // namespace revere::learn

#endif  // REVERE_LEARN_NAME_LEARNER_H_
