#include "src/datagen/topology.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/rng.h"
#include "src/datagen/university.h"
#include "src/piazza/peer.h"

namespace revere::datagen {

namespace {

using piazza::PeerMapping;
using piazza::QualifiedName;
using query::ConjunctiveQuery;

}  // namespace

const std::vector<const char*>& RelationNamePool() {
  static const std::vector<const char*>* kNames =
      new std::vector<const char*>{"course",  "subject", "class",
                                   "corso",   "kurs",    "lecture",
                                   "offering", "unit"};
  return *kNames;
}

std::vector<std::pair<size_t, size_t>> TopologyEdges(
    const PdmsGenOptions& options, size_t n, Rng* rng) {
  std::vector<std::pair<size_t, size_t>> edges;
  switch (options.topology) {
    case Topology::kChain:
      for (size_t i = 1; i < n; ++i) edges.emplace_back(i - 1, i);
      break;
    case Topology::kStar:
      for (size_t i = 1; i < n; ++i) edges.emplace_back(0, i);
      break;
    case Topology::kRandom: {
      // Random spanning tree (each node attaches to a random earlier
      // one), then extra edges. Existence checks go through a set —
      // same edges, same RNG draw sequence as the old linear scan,
      // minus its O(n²·E) cost (which dominated at 1000 peers).
      std::set<std::pair<size_t, size_t>> have;
      for (size_t i = 1; i < n; ++i) {
        size_t parent = rng->Index(i);
        edges.emplace_back(parent, i);
        have.emplace(std::min(parent, i), std::max(parent, i));
      }
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          if (have.count({i, j}) == 0 &&
              rng->Bernoulli(options.extra_edge_prob)) {
            edges.emplace_back(i, j);
            have.emplace(i, j);
          }
        }
      }
      break;
    }
    case Topology::kSmallWorld: {
      // Watts–Strogatz: a ring lattice with `small_world_neighbors`
      // links per node (k/2 each side); every lattice edge beyond the
      // immediate ring is rewired to a uniform random endpoint with
      // probability `rewire_prob`. The d=1 ring is never rewired, so
      // the graph is connected by construction, and every draw comes
      // from `rng` — fixed seed, fixed graph.
      size_t k = std::max<size_t>(2, options.small_world_neighbors);
      if (k % 2 != 0) ++k;
      size_t half = std::min(k / 2, n >= 3 ? (n - 1) / 2 : 1);
      std::set<std::pair<size_t, size_t>> have;
      auto add = [&](size_t a, size_t b) {
        if (a == b) return false;
        auto key = std::minmax(a, b);
        if (!have.emplace(key.first, key.second).second) return false;
        edges.emplace_back(a, b);
        return true;
      };
      for (size_t d = 1; d <= half; ++d) {
        for (size_t i = 0; i < n; ++i) {
          size_t j = (i + d) % n;
          if (d >= 2 && rng->Bernoulli(options.rewire_prob)) {
            // Rewire the far end; retry on self-loops/duplicates, fall
            // back to the lattice edge when the node is saturated.
            bool placed = false;
            for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
              placed = add(i, rng->Index(n));
            }
            if (!placed) add(i, j);
          } else {
            add(i, j);
          }
        }
      }
      break;
    }
    case Topology::kScaleFree: {
      // Barabási–Albert preferential attachment: each new node links to
      // `scale_free_attach` distinct existing nodes, sampled with
      // probability proportional to current degree (the classic
      // repeated-endpoints trick). Connected by construction: every
      // node attaches to at least one earlier node.
      size_t m = std::max<size_t>(1, options.scale_free_attach);
      std::vector<size_t> endpoints;  // one entry per degree unit
      std::set<std::pair<size_t, size_t>> have;
      for (size_t i = 1; i < n; ++i) {
        size_t want = std::min(m, i);
        std::set<size_t> chosen;
        // Bounded rejection sampling; top up from the highest-degree
        // untried nodes if duplicates keep colliding (deterministic).
        size_t attempts = 0;
        while (chosen.size() < want && attempts < 16 * want) {
          ++attempts;
          size_t t = endpoints.empty() ? rng->Index(i)
                                       : endpoints[rng->Index(endpoints.size())];
          if (t != i) chosen.insert(t);
        }
        for (size_t t = 0; chosen.size() < want && t < i; ++t) chosen.insert(t);
        for (size_t t : chosen) {
          auto key = std::minmax(t, i);
          if (!have.emplace(key.first, key.second).second) continue;
          edges.emplace_back(t, i);
          endpoints.push_back(t);
          endpoints.push_back(i);
        }
      }
      break;
    }
    case Topology::kFigure2:
      // Figure 2 shows six universities with local mappings forming a
      // connected graph; the exact edge set is not specified in the
      // text, so we use the ring the drawing suggests plus the
      // Stanford-MIT chord: "as long as the mapping graph is connected,
      // any peer can access data at any other peer".
      edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 2}};
      break;
  }
  return edges;
}

Result<PdmsGenReport> BuildUniversityPdms(piazza::PdmsNetwork* net,
                                          const PdmsGenOptions& options) {
  PdmsGenReport report;
  Rng rng(options.seed);
  size_t n = options.topology == Topology::kFigure2 ? 6 : options.peers;
  if (n == 0) return Status::InvalidArgument("need at least one peer");

  if (options.topology == Topology::kFigure2) {
    report.peer_names = {"stanford", "oxford",   "mit",
                         "tsinghua", "roma",     "berkeley"};
  } else {
    for (size_t i = 0; i < n; ++i) {
      report.peer_names.push_back("peer" + std::to_string(i));
    }
  }
  const auto& pool = RelationNamePool();
  for (size_t i = 0; i < n; ++i) {
    report.relation_names.push_back(pool[i % pool.size()]);
  }

  // Peers + stored relations + data.
  for (size_t i = 0; i < n; ++i) {
    REVERE_ASSIGN_OR_RETURN(piazza::Peer * peer,
                            net->AddPeer(report.peer_names[i]));
    peer->DeclarePeerRelation(report.relation_names[i], 3);
    REVERE_ASSIGN_OR_RETURN(
        storage::Table * table,
        net->AddStoredRelation(
            report.peer_names[i],
            storage::TableSchema::AllStrings(
                report.relation_names[i], {"id", "title", "instructor"})));
    Rng data_rng = rng.Fork();
    std::vector<CourseRecord> courses =
        GenerateCourses(options.rows_per_peer, &data_rng);
    for (size_t r = 0; r < courses.size(); ++r) {
      // Globally unique ids: peer name prefixed.
      std::string id = report.peer_names[i] + "/" + std::to_string(r);
      REVERE_RETURN_IF_ERROR(
          table->Insert({storage::Value(id),
                         storage::Value(courses[r].title),
                         storage::Value(courses[r].instructor)}));
      ++report.total_rows;
    }
    REVERE_RETURN_IF_ERROR(table->CreateIndex(0));
  }

  // Mappings along edges.
  for (const auto& [a, b] : TopologyEdges(options, n, &rng)) {
    std::string rel_a =
        QualifiedName(report.peer_names[a], report.relation_names[a]);
    std::string rel_b =
        QualifiedName(report.peer_names[b], report.relation_names[b]);
    auto source =
        ConjunctiveQuery::Parse("m(I, T, P) :- " + rel_a + "(I, T, P)");
    auto target =
        ConjunctiveQuery::Parse("m(I, T, P) :- " + rel_b + "(I, T, P)");
    if (!source.ok() || !target.ok()) {
      return Status::Internal("mapping parse failure");
    }
    REVERE_RETURN_IF_ERROR(net->AddMapping(
        PeerMapping{{report.peer_names[a] + "-" + report.peer_names[b],
                     source.value(), target.value()},
                    report.peer_names[a],
                    report.peer_names[b],
                    options.bidirectional}));
    ++report.mapping_count;
  }
  return report;
}

ConjunctiveQuery AllCoursesQuery(const PdmsGenReport& report,
                                 size_t peer_index) {
  std::string rel = QualifiedName(report.peer_names[peer_index],
                                  report.relation_names[peer_index]);
  auto q = ConjunctiveQuery::Parse("q(I, T, P) :- " + rel + "(I, T, P)");
  return q.ok() ? q.value() : ConjunctiveQuery();
}

}  // namespace revere::datagen
