#include "src/datagen/topology.h"

#include <set>

#include "src/common/rng.h"
#include "src/datagen/university.h"
#include "src/piazza/peer.h"

namespace revere::datagen {

namespace {

using piazza::PeerMapping;
using piazza::QualifiedName;
using query::ConjunctiveQuery;

}  // namespace

const std::vector<const char*>& RelationNamePool() {
  static const std::vector<const char*>* kNames =
      new std::vector<const char*>{"course",  "subject", "class",
                                   "corso",   "kurs",    "lecture",
                                   "offering", "unit"};
  return *kNames;
}

std::vector<std::pair<size_t, size_t>> TopologyEdges(
    const PdmsGenOptions& options, size_t n, Rng* rng) {
  std::vector<std::pair<size_t, size_t>> edges;
  switch (options.topology) {
    case Topology::kChain:
      for (size_t i = 1; i < n; ++i) edges.emplace_back(i - 1, i);
      break;
    case Topology::kStar:
      for (size_t i = 1; i < n; ++i) edges.emplace_back(0, i);
      break;
    case Topology::kRandom: {
      // Random spanning tree (each node attaches to a random earlier
      // one), then extra edges.
      for (size_t i = 1; i < n; ++i) {
        edges.emplace_back(rng->Index(i), i);
      }
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          bool exists = false;
          for (const auto& [a, b] : edges) {
            if ((a == i && b == j) || (a == j && b == i)) exists = true;
          }
          if (!exists && rng->Bernoulli(options.extra_edge_prob)) {
            edges.emplace_back(i, j);
          }
        }
      }
      break;
    }
    case Topology::kFigure2:
      // Figure 2 shows six universities with local mappings forming a
      // connected graph; the exact edge set is not specified in the
      // text, so we use the ring the drawing suggests plus the
      // Stanford-MIT chord: "as long as the mapping graph is connected,
      // any peer can access data at any other peer".
      edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 2}};
      break;
  }
  return edges;
}

Result<PdmsGenReport> BuildUniversityPdms(piazza::PdmsNetwork* net,
                                          const PdmsGenOptions& options) {
  PdmsGenReport report;
  Rng rng(options.seed);
  size_t n = options.topology == Topology::kFigure2 ? 6 : options.peers;
  if (n == 0) return Status::InvalidArgument("need at least one peer");

  if (options.topology == Topology::kFigure2) {
    report.peer_names = {"stanford", "oxford",   "mit",
                         "tsinghua", "roma",     "berkeley"};
  } else {
    for (size_t i = 0; i < n; ++i) {
      report.peer_names.push_back("peer" + std::to_string(i));
    }
  }
  const auto& pool = RelationNamePool();
  for (size_t i = 0; i < n; ++i) {
    report.relation_names.push_back(pool[i % pool.size()]);
  }

  // Peers + stored relations + data.
  for (size_t i = 0; i < n; ++i) {
    REVERE_ASSIGN_OR_RETURN(piazza::Peer * peer,
                            net->AddPeer(report.peer_names[i]));
    peer->DeclarePeerRelation(report.relation_names[i], 3);
    REVERE_ASSIGN_OR_RETURN(
        storage::Table * table,
        net->AddStoredRelation(
            report.peer_names[i],
            storage::TableSchema::AllStrings(
                report.relation_names[i], {"id", "title", "instructor"})));
    Rng data_rng = rng.Fork();
    std::vector<CourseRecord> courses =
        GenerateCourses(options.rows_per_peer, &data_rng);
    for (size_t r = 0; r < courses.size(); ++r) {
      // Globally unique ids: peer name prefixed.
      std::string id = report.peer_names[i] + "/" + std::to_string(r);
      REVERE_RETURN_IF_ERROR(
          table->Insert({storage::Value(id),
                         storage::Value(courses[r].title),
                         storage::Value(courses[r].instructor)}));
      ++report.total_rows;
    }
    REVERE_RETURN_IF_ERROR(table->CreateIndex(0));
  }

  // Mappings along edges.
  for (const auto& [a, b] : TopologyEdges(options, n, &rng)) {
    std::string rel_a =
        QualifiedName(report.peer_names[a], report.relation_names[a]);
    std::string rel_b =
        QualifiedName(report.peer_names[b], report.relation_names[b]);
    auto source =
        ConjunctiveQuery::Parse("m(I, T, P) :- " + rel_a + "(I, T, P)");
    auto target =
        ConjunctiveQuery::Parse("m(I, T, P) :- " + rel_b + "(I, T, P)");
    if (!source.ok() || !target.ok()) {
      return Status::Internal("mapping parse failure");
    }
    REVERE_RETURN_IF_ERROR(net->AddMapping(
        PeerMapping{{report.peer_names[a] + "-" + report.peer_names[b],
                     source.value(), target.value()},
                    report.peer_names[a],
                    report.peer_names[b],
                    options.bidirectional}));
    ++report.mapping_count;
  }
  return report;
}

ConjunctiveQuery AllCoursesQuery(const PdmsGenReport& report,
                                 size_t peer_index) {
  std::string rel = QualifiedName(report.peer_names[peer_index],
                                  report.relation_names[peer_index]);
  auto q = ConjunctiveQuery::Parse("q(I, T, P) :- " + rel + "(I, T, P)");
  return q.ok() ? q.value() : ConjunctiveQuery();
}

}  // namespace revere::datagen
