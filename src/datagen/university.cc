#include "src/datagen/university.h"

#include <algorithm>
#include <map>

#include "src/common/strings.h"

namespace revere::datagen {

namespace {

/// The canonical domain model every generated school perturbs. Each
/// attribute knows its synonyms, abbreviations, whether it is optional,
/// and which value pool fills it.
struct CanonicalAttribute {
  const char* name;
  std::vector<const char*> synonyms;
  const char* abbreviation;
  bool optional;
  const char* value_kind;  // key into the value pools
};

struct CanonicalRelation {
  const char* name;
  std::vector<const char*> relation_synonyms;
  std::vector<CanonicalAttribute> attributes;
};

const std::vector<CanonicalRelation>& CanonicalModel() {
  static const std::vector<CanonicalRelation>* kModel = new std::vector<
      CanonicalRelation>{
      {"course",
       {"class", "subject", "offering", "lecture"},
       {
           {"number", {"code", "course_no"}, "num", false, "number"},
           {"title", {"name", "label"}, "ttl", false, "title"},
           {"instructor",
            {"teacher", "professor", "lecturer", "faculty"},
            "instr",
            false,
            "person"},
           {"room", {"location", "venue"}, "rm", true, "room"},
           {"time", {"schedule", "meeting_time"}, "tm", true, "time"},
           {"enrollment", {"size", "capacity", "seats"}, "enroll", true,
            "count"},
       }},
      {"ta",
       {"assistant", "grader", "teaching_assistant"},
       {
           {"name", {"fullname"}, "nm", false, "person"},
           {"email", {"mail", "e_mail"}, "em", false, "email"},
           {"course_number", {"course_code"}, "crs_num", false, "number"},
       }},
      {"person",
       {"faculty_member", "staff", "employee"},
       {
           {"name", {"fullname"}, "nm", false, "person"},
           {"email", {"mail", "e_mail"}, "em", false, "email"},
           {"phone", {"telephone", "tel"}, "ph", true, "phone"},
           {"office", {"room", "bureau"}, "off", true, "room"},
       }},
  };
  return *kModel;
}

const std::vector<const char*>& Pool(const std::string& kind) {
  static const std::map<std::string, std::vector<const char*>>* kPools =
      new std::map<std::string, std::vector<const char*>>{
          {"number",
           {"CSE 544", "CSE 403", "HIST 101", "HIST 302", "MATH 126",
            "PHYS 121", "BIO 180", "CHEM 142", "ECON 200", "ART 110"}},
          {"title",
           {"Principles of Database Systems", "Software Engineering",
            "Ancient History", "Medieval Europe", "Calculus I",
            "Mechanics", "Introductory Biology", "General Chemistry",
            "Microeconomics", "Drawing Fundamentals",
            "Distributed Systems", "Machine Learning"}},
          {"person",
           {"Alon Halevy", "Oren Etzioni", "AnHai Doan", "Zack Ives",
            "Luke McDowell", "Igor Tatarinov", "Jayant Madhavan",
            "Dan Suciu", "Maya Rodrig", "Peter Mork", "Hank Levy",
            "Steve Gribble"}},
          {"room",
           {"MGH 241", "CSE 403", "Kane 110", "Smith 205", "Gowen 301",
            "EE1 003", "Loew 101", "Bagley 154"}},
          {"time",
           {"MWF 9:30", "MWF 10:30", "MWF 1:30", "TTh 9:00", "TTh 10:30",
            "TTh 1:30", "TTh 3:00", "MW 2:30"}},
          {"count", {"30", "45", "60", "80", "120", "150", "200", "240"}},
          {"email",
           {"alon@cs.example.edu", "oren@cs.example.edu",
            "anhai@cs.example.edu", "zives@cs.example.edu",
            "luke@cs.example.edu", "igor@cs.example.edu"}},
          {"phone",
           {"206-543-1695", "206-543-9196", "206-543-4755",
            "617-253-0001", "650-723-4671", "510-642-1042"}},
          {"noise", {"n/a", "tbd", "none", "-"}},
      };
  auto it = kPools->find(kind);
  return it == kPools->end() ? kPools->at("noise") : it->second;
}

std::string PickValue(const std::string& kind, Rng* rng) {
  const auto& pool = Pool(kind);
  return pool[rng->Index(pool.size())];
}

// Noise attributes occasionally added by individual schools.
const std::vector<const char*>& NoiseAttributes() {
  static const std::vector<const char*>* kNoise =
      new std::vector<const char*>{"website", "last_updated", "internal_id",
                                   "building_access", "notes"};
  return *kNoise;
}

}  // namespace

GeneratedSchema UniversityGenerator::GenerateSchema(const std::string& id) {
  GeneratedSchema out;
  out.schema.id = id;
  out.schema.domain = "university";

  bool split_ta = rng_.Bernoulli(options_.split_ta_prob);
  for (const auto& canonical_rel : CanonicalModel()) {
    std::string canonical_rel_name = canonical_rel.name;
    if (canonical_rel_name == "ta" && !split_ta) {
      // Inline TA contact info into the course relation instead. The
      // canonical labels stay "ta.*" so DesignAdvisor experiments can
      // detect the structural deviation.
      continue;
    }
    corpus::RelationDecl rel;
    // Perturb the relation name.
    rel.name = canonical_rel_name;
    if (!canonical_rel.relation_synonyms.empty() &&
        rng_.Bernoulli(options_.synonym_prob)) {
      rel.name = canonical_rel.relation_synonyms[rng_.Index(
          canonical_rel.relation_synonyms.size())];
    }
    std::vector<std::string> value_kinds;
    for (const auto& attr : canonical_rel.attributes) {
      if (attr.optional && rng_.Bernoulli(options_.drop_attr_prob)) {
        continue;
      }
      std::string name = attr.name;
      if (!attr.synonyms.empty() && rng_.Bernoulli(options_.synonym_prob)) {
        name = attr.synonyms[rng_.Index(attr.synonyms.size())];
      }
      if (rng_.Bernoulli(options_.abbrev_prob)) {
        name = attr.abbreviation;
      }
      if (!name.empty() && name.back() != 's' &&
          rng_.Bernoulli(options_.pluralize_prob)) {
        name += "s";
      }
      // Avoid duplicate attribute names after perturbation.
      bool duplicate = false;
      for (const auto& existing : rel.attributes) {
        if (existing == name) duplicate = true;
      }
      if (duplicate) name = std::string(attr.name);
      rel.attributes.push_back(name);
      value_kinds.push_back(attr.value_kind);
      out.ground_truth[rel.name + "." + name] =
          std::string(canonical_rel_name) + "." + attr.name;
    }
    if (rng_.Bernoulli(options_.extra_attr_prob)) {
      const auto& noise = NoiseAttributes();
      std::string extra = noise[rng_.Index(noise.size())];
      if (std::find(rel.attributes.begin(), rel.attributes.end(), extra) ==
          rel.attributes.end()) {
        rel.attributes.push_back(extra);
        value_kinds.push_back("noise");
        // Noise attributes have no canonical counterpart.
      }
    }
    // Data rows.
    corpus::DataExample data;
    data.schema_id = id;
    data.relation = rel.name;
    for (size_t r = 0; r < options_.rows_per_relation; ++r) {
      std::vector<std::string> row;
      row.reserve(value_kinds.size());
      for (const auto& kind : value_kinds) {
        row.push_back(PickValue(kind, &rng_));
      }
      data.rows.push_back(std::move(row));
    }
    out.schema.relations.push_back(std::move(rel));
    out.data.push_back(std::move(data));
  }

  if (!split_ta) {
    // Inline TA fields into the (first) course-like relation.
    corpus::RelationDecl& course_rel = out.schema.relations.front();
    corpus::DataExample& course_data = out.data.front();
    const CanonicalRelation& ta = CanonicalModel()[1];
    for (const auto& attr : ta.attributes) {
      if (std::string(attr.value_kind) == "number") continue;  // fk: skip
      std::string name = "ta_" + std::string(attr.name);
      course_rel.attributes.push_back(name);
      out.ground_truth[course_rel.name + "." + name] =
          "ta." + std::string(attr.name);
      for (auto& row : course_data.rows) {
        row.push_back(PickValue(attr.value_kind, &rng_));
      }
    }
  }
  return out;
}

std::vector<GeneratedSchema> UniversityGenerator::PopulateCorpus(
    corpus::Corpus* corpus, size_t n) {
  std::vector<GeneratedSchema> generated;
  for (size_t i = 0; i < n; ++i) {
    GeneratedSchema g = GenerateSchema("school" + std::to_string(i));
    (void)corpus->AddSchema(g.schema);
    for (const auto& d : g.data) (void)corpus->AddDataExample(d);
    generated.push_back(std::move(g));
  }
  // Known mappings from shared ground truth, between consecutive
  // schemas (linear, like a PDMS would accrete them).
  for (size_t i = 1; i < generated.size(); ++i) {
    corpus::KnownMapping mapping;
    mapping.schema_a = generated[i - 1].schema.id;
    mapping.schema_b = generated[i].schema.id;
    for (const auto& [elem_a, canon_a] : generated[i - 1].ground_truth) {
      for (const auto& [elem_b, canon_b] : generated[i].ground_truth) {
        if (canon_a == canon_b) {
          mapping.element_pairs.emplace_back(elem_a, elem_b);
        }
      }
    }
    (void)corpus->AddKnownMapping(std::move(mapping));
  }
  return generated;
}

std::vector<CourseRecord> GenerateCourses(size_t n, Rng* rng) {
  std::vector<CourseRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CourseRecord c;
    c.number = PickValue("number", rng);
    c.id = ToLower(ReplaceAll(c.number, " ", "")) + std::to_string(i);
    c.title = PickValue("title", rng);
    c.instructor = PickValue("person", rng);
    c.room = PickValue("room", rng);
    c.time = PickValue("time", rng);
    out.push_back(std::move(c));
  }
  return out;
}

std::string RenderCoursePage(const CourseRecord& c) {
  return "<html><head><title>" + c.number + "</title></head><body>"
         "<h1>" + c.number + ": " + c.title + "</h1>"
         "<p>Instructor: " + c.instructor + "</p>"
         "<p>Meets " + c.time + " in " + c.room + "</p>"
         "<p>Welcome to the course home page. Homework and readings "
         "will be posted here.</p></body></html>";
}

std::string RenderAnnotatedCoursePage(const CourseRecord& c) {
  return "<html><head><title>" + c.number + "</title></head><body>"
         "<span m=\"course\" m-id=\"" + c.id + "\">"
         "<h1><span m=\"number\">" + c.number + "</span>: "
         "<span m=\"title\">" + c.title + "</span></h1>"
         "<p>Instructor: <span m=\"instructor\">" + c.instructor +
         "</span></p>"
         "<p>Meets <span m=\"time\">" + c.time + "</span> in "
         "<span m=\"room\">" + c.room + "</span></p>"
         "</span>"
         "<p>Welcome to the course home page. Homework and readings "
         "will be posted here.</p></body></html>";
}

}  // namespace revere::datagen
