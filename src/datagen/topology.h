#ifndef REVERE_DATAGEN_TOPOLOGY_H_
#define REVERE_DATAGEN_TOPOLOGY_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/piazza/pdms.h"

namespace revere::datagen {

/// PDMS overlay shapes for the scaling experiments (bench C3/R3) and
/// the Figure-2 reproduction (bench F2).
enum class Topology {
  kChain,      // p0 - p1 - ... - pn-1 (worst-case reformulation depth)
  kStar,       // hub p0 with n-1 spokes (what a mediated schema looks like)
  kRandom,     // random connected graph (spanning tree + extra edges)
  kFigure2,    // the paper's six universities, connected as drawn
  kSmallWorld, // Watts–Strogatz: ring lattice with rewired long links
               // (low diameter at high clustering — the thousand-peer
               // overlay the paper's §3 pruning argument assumes)
  kScaleFree,  // Barabási–Albert preferential attachment (hub-heavy
               // degree distribution, like real P2P overlays)
};

/// The one documented default for kRandom's extra (non-tree) edge
/// probability. Both PdmsGenOptions and the fuzzer's FuzzCaseOptions
/// route through this constant (they used to drift: 0.15 vs a
/// hardcoded 0.25).
inline constexpr double kDefaultExtraEdgeProb = 0.15;

struct PdmsGenOptions {
  Topology topology = Topology::kChain;
  size_t peers = 6;            // ignored for kFigure2 (always 6)
  size_t rows_per_peer = 50;
  uint64_t seed = 1;
  /// kRandom: probability of each extra (non-tree) edge.
  double extra_edge_prob = kDefaultExtraEdgeProb;
  /// Use equality (bidirectional) mappings — like the paper's example
  /// where every university both shares and consumes courses.
  bool bidirectional = true;
  /// kSmallWorld: lattice neighbors per node (k, split k/2 each side;
  /// rounded up to the next even value ≥ 2). The immediate ring is
  /// never rewired, so the graph stays connected by construction.
  size_t small_world_neighbors = 4;
  /// kSmallWorld: probability each non-ring lattice edge is rewired to
  /// a uniform random endpoint (Watts–Strogatz β).
  double rewire_prob = 0.1;
  /// kScaleFree: edges each new node attaches with (Barabási–Albert m);
  /// clamped to the number of existing nodes.
  size_t scale_free_attach = 2;
};

/// The per-peer course-relation vocabulary pool ("course", "subject",
/// "corso", …) BuildUniversityPdms cycles through — exported so other
/// generators (the differential fuzzer) share the same vocabulary.
const std::vector<const char*>& RelationNamePool();

/// The undirected edge list of `options.topology` over `n` peers
/// (kRandom draws its spanning tree and extra edges from `rng`; the
/// other shapes ignore it). Exported so the fuzzer builds networks with
/// the same shapes the benchmarks sweep.
std::vector<std::pair<size_t, size_t>> TopologyEdges(
    const PdmsGenOptions& options, size_t n, Rng* rng);

/// Metadata about a generated network.
struct PdmsGenReport {
  std::vector<std::string> peer_names;
  /// Unqualified course-relation name at each peer (vocabulary varies).
  std::vector<std::string> relation_names;
  size_t total_rows = 0;
  size_t mapping_count = 0;
};

/// Populates `net` with a university PDMS: each peer stores one
/// course-like relation course(id, title, instructor) under a
/// peer-specific name, plus GLAV mappings along the topology's edges.
/// Every course id is globally unique, so a transitively complete
/// reformulation returns exactly `total_rows` answers — the ground
/// truth for completeness measurements.
Result<PdmsGenReport> BuildUniversityPdms(piazza::PdmsNetwork* net,
                                          const PdmsGenOptions& options);

/// The query "all courses, in peer `peer`'s vocabulary" for a network
/// built by BuildUniversityPdms.
query::ConjunctiveQuery AllCoursesQuery(const PdmsGenReport& report,
                                        size_t peer_index);

}  // namespace revere::datagen

#endif  // REVERE_DATAGEN_TOPOLOGY_H_
