#ifndef REVERE_DATAGEN_UNIVERSITY_H_
#define REVERE_DATAGEN_UNIVERSITY_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/corpus/corpus.h"

namespace revere::datagen {

/// Synthetic stand-in for the real-world university course pages and
/// schemas the paper works over (we have no access to 2003 crawls; see
/// DESIGN.md substitution table). The generator perturbs one canonical
/// domain model per school — synonym substitution, abbreviation,
/// attribute drop/add, structural splits — and keeps the ground-truth
/// correspondence so matching experiments can be scored.
struct UniversityGenOptions {
  uint64_t seed = 1;
  /// Probability an attribute name is replaced by a domain synonym.
  double synonym_prob = 0.35;
  /// Probability a (possibly synonym-substituted) name is abbreviated.
  double abbrev_prob = 0.2;
  /// Probability an attribute name is pluralized ("instructor" ->
  /// "instructors") — exercises the stemming normalization axis.
  double pluralize_prob = 0.15;
  /// Probability an optional attribute is dropped entirely.
  double drop_attr_prob = 0.15;
  /// Probability a school-specific noise attribute is added.
  double extra_attr_prob = 0.2;
  /// Probability TA/assistant info is modeled as a separate relation
  /// (the paper's DesignAdvisor example) instead of inlined.
  double split_ta_prob = 0.5;
  /// Example rows generated per relation.
  size_t rows_per_relation = 12;
};

/// A generated schema plus everything needed to score tools against it.
struct GeneratedSchema {
  corpus::SchemaEntry schema;
  std::vector<corpus::DataExample> data;
  /// Qualified generated element ("crs.instr") -> canonical label
  /// ("course.instructor").
  std::map<std::string, std::string> ground_truth;
};

/// Deterministic generator for one-domain corpora of schemas.
class UniversityGenerator {
 public:
  explicit UniversityGenerator(UniversityGenOptions options = {})
      : options_(options), rng_(options.seed) {}

  /// Generates one perturbed university schema (+data +ground truth).
  GeneratedSchema GenerateSchema(const std::string& id);

  /// Fills `corpus` with `n` generated schemas, their data, and the
  /// known mappings implied by shared ground truth. Returns the
  /// generated bundles for external scoring.
  std::vector<GeneratedSchema> PopulateCorpus(corpus::Corpus* corpus,
                                              size_t n);

 private:
  UniversityGenOptions options_;
  Rng rng_;
};

/// One course record for HTML page generation.
struct CourseRecord {
  std::string id;        // "cse544"
  std::string number;    // "CSE 544"
  std::string title;
  std::string instructor;
  std::string room;
  std::string time;
};

/// Deterministic batch of plausible course records.
std::vector<CourseRecord> GenerateCourses(size_t n, Rng* rng);

/// Renders a plain HTML course page (the "before MANGROVE" state).
std::string RenderCoursePage(const CourseRecord& course);

/// Renders the same page with MANGROVE annotations embedded (what the
/// annotation tool would produce).
std::string RenderAnnotatedCoursePage(const CourseRecord& course);

}  // namespace revere::datagen

#endif  // REVERE_DATAGEN_UNIVERSITY_H_
