#ifndef REVERE_PIAZZA_FAULT_H_
#define REVERE_PIAZZA_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace revere::piazza {

/// How an unhealthy peer misbehaves. The paper's PDMS vision (§3.1.2)
/// is a decentralized network where "peers can join and leave at will";
/// this models the three observable shapes of leaving.
enum class FaultMode {
  kHealthy,
  /// Permanently unreachable: every contact fails until Restore().
  kDown,
  /// Transiently unreachable: each contact independently fails with
  /// `failure_probability` (a retry may succeed).
  kFlaky,
  /// Reachable but adds `extra_latency_ms` per contact, which trips the
  /// caller's per-contact deadline when one is set.
  kSlow,
};

/// "healthy", "down", "flaky", or "slow".
const char* FaultModeToString(FaultMode mode);

/// The fault currently injected at one peer.
struct PeerFault {
  FaultMode mode = FaultMode::kHealthy;
  /// kFlaky: per-contact failure probability in [0, 1].
  double failure_probability = 0.0;
  /// kSlow: added round-trip latency, simulated milliseconds.
  double extra_latency_ms = 0.0;
};

/// Outcome of one simulated contact attempt against a peer.
struct ContactOutcome {
  /// Ok, Unavailable (down / dropped contact), or DeadlineExceeded
  /// (slow peer past the per-contact deadline). Error messages name the
  /// peer so failures are diagnosable from the Status alone.
  Status status;
  /// Simulated time the attempt consumed — a full round trip on
  /// success, the deadline on a timed-out failure.
  double elapsed_ms = 0.0;
};

/// Deterministic peer-failure simulator. All randomness flows from the
/// seeded common/rng generator and all time is simulated (charged to
/// the caller's NetworkCostModel accounting), so a run with a given
/// seed is byte-identical — failures included — across machines.
///
/// The injector is *external* to PdmsNetwork: the network stays a pure
/// catalog of peers/mappings/data, and an experiment overlays whatever
/// fault pattern it wants without mutating shared state.
///
/// Thread safety (ISSUE 6): all members are internally synchronized so
/// RevereServer workers can share one injector. Determinism holds for
/// any *sequential* caller sequence (the seeded RNG draw order is the
/// contact order); concurrent contacts interleave their draws in
/// scheduler order, which is exactly the nondeterminism a multi-worker
/// server has anyway — the replay oracles all drive contacts from one
/// thread.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Marks `peer` permanently down.
  void SetDown(const std::string& peer);
  /// Marks `peer` flaky with the given per-contact failure probability.
  void SetFlaky(const std::string& peer, double failure_probability);
  /// Marks `peer` slow, adding `extra_latency_ms` per contact.
  void SetSlow(const std::string& peer, double extra_latency_ms);
  /// Heals `peer`.
  void Restore(const std::string& peer);
  /// Heals every peer (keeps the RNG stream position).
  void RestoreAll();

  /// Current fault at `peer` (kHealthy when none injected).
  PeerFault GetFault(const std::string& peer) const;
  /// Peers currently carrying a non-healthy fault, sorted.
  std::vector<std::string> FaultyPeers() const;

  /// Simulates one contact attempt. A healthy contact consumes
  /// `base_round_trip_ms`; a slow one consumes that plus its extra
  /// latency. When `deadline_ms` > 0 it is a per-contact timeout: a
  /// down or dropped contact is detected after the full deadline, and a
  /// slow contact that would exceed it fails with DeadlineExceeded.
  /// With no deadline, failures are detected after one round trip.
  ContactOutcome Contact(const std::string& peer, double base_round_trip_ms,
                         double deadline_ms = 0.0);

  /// Injects `fault` at each of `peers` independently with probability
  /// `rate` (Bernoulli per peer, drawn from the injector's RNG).
  void InjectUniform(const std::vector<std::string>& peers, double rate,
                     const PeerFault& fault);

  /// Injects `fault` at exactly round(fraction * peers.size()) peers,
  /// chosen uniformly without replacement — a deterministic failure
  /// *count* for monotone sweep experiments.
  void InjectFraction(const std::vector<std::string>& peers, double fraction,
                      const PeerFault& fault);

  /// Total contact attempts simulated (includes retries).
  size_t contacts_attempted() const;

  /// Contact attempts aimed at one specific peer — the denominator of
  /// the circuit-breaker acceptance check ("open breakers cut contact
  /// attempts to dead peers by >= 90%").
  size_t contacts_to(const std::string& peer) const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, PeerFault> faults_;
  std::map<std::string, size_t> per_peer_contacts_;
  size_t contacts_attempted_ = 0;
};

/// Retry knobs for one peer contact, ReformulationOptions-style.
/// All times are simulated milliseconds.
struct RetryPolicy {
  /// Total attempts per peer contact (1 = no retry).
  int max_attempts = 1;
  /// Backoff before the k-th retry is base_backoff_ms * 2^(k-1)
  /// (exponential; see `jitter` — the default configuration stays
  /// deterministic and jitter-free, so replays are bit-identical).
  double base_backoff_ms = 1.0;
  /// Per-contact timeout; 0 disables deadline enforcement.
  double deadline_ms = 0.0;
  /// Backoff jitter (ISSUE 6 bugfix): fraction in [0, 1] of each
  /// backoff wait that is randomly shaved off, so retries against a
  /// recovering peer de-synchronize instead of stampeding it in lock
  /// step. The draw is a stateless hash of (jitter_seed, peer, attempt)
  /// — deterministic per (seed, peer, attempt) on any machine, with no
  /// RNG stream to perturb — so the fault-replay oracle stays exact
  /// even with jitter on. 0 (the default) reproduces the legacy
  /// bit-identical backoff schedule.
  double jitter = 0.0;
  /// Seed for the jitter hash; vary it to decorrelate callers.
  uint64_t jitter_seed = 0;

  /// The backoff wait before retry attempt `attempt` (1-based) of a
  /// contact against `peer`, jitter applied.
  double BackoffMs(const std::string& peer, int attempt) const;
};

/// What Answer() does when a peer stays unreachable after retries.
enum class FailurePolicy {
  /// Propagate kUnavailable / kDeadlineExceeded: no answer is better
  /// than a silently incomplete one.
  kFailFast,
  /// Skip rewritings touching dead peers and return the partial answer;
  /// the CompletenessReport says exactly what was lost.
  kBestEffort,
};

/// Degradation accounting for one Answer() call: which peers could not
/// be reached, how much of the reformulation was dropped because of
/// them, and what the fault handling cost in retries and backoff.
struct CompletenessReport {
  /// Rewritings the reformulator produced (the denominator).
  size_t rewritings_total = 0;
  /// Rewritings dropped because some peer they touch was unreachable
  /// (includes the breaker- and deadline-attributed drops below).
  size_t rewritings_skipped = 0;
  /// Of the skipped rewritings, how many were dropped because the
  /// caller's end-to-end deadline expired before they could run —
  /// "degrade to best-effort partial answers", ISSUE 6.
  size_t rewritings_deadline_skipped = 0;
  /// Individual contact attempts that failed (includes failed retries).
  size_t contacts_failed = 0;
  /// Contacts never attempted because the peer's circuit breaker was
  /// open — load the breaker kept off a known-dead peer.
  size_t breaker_skips = 0;
  /// Retry attempts made (beyond each contact's first attempt).
  size_t retries_attempted = 0;
  /// Retries foregone because the global RetryBudget was exhausted —
  /// the anti-retry-storm valve engaging.
  size_t retries_denied = 0;
  /// Simulated time spent waiting in exponential backoff.
  double backoff_ms = 0.0;
  /// Peers that stayed unreachable after retries.
  std::set<std::string> unreachable_peers;

  /// True when no rewriting was lost to peer failures or deadlines.
  bool complete() const { return rewritings_skipped == 0; }
};

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_FAULT_H_
