#ifndef REVERE_PIAZZA_BREAKER_H_
#define REVERE_PIAZZA_BREAKER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace revere::piazza {

/// Per-peer circuit breakers for the serving front end (ISSUE 6).
///
/// The failure mode this prevents: a dead peer in the fault-tolerant
/// answer path (PR 1) is re-contacted — with full retries and backoff —
/// by *every* query whose reformulation touches it, so one dead peer
/// taxes the whole stream forever. A breaker watches the rolling
/// success/failure window that the existing retry path already
/// produces, opens after enough failures, and then *skips* contacts to
/// that peer outright (the caller drops the rewriting with the same
/// completeness accounting as an unreachable peer). While open, every
/// `probe_after_skips`-th contact is let through as a half-open probe;
/// one probe success closes the breaker again.
///
/// The state machine (DESIGN.md §3.6):
///
///          failures/window >= open_failure_ratio
///   CLOSED ────────────────────────────────────────► OPEN
///     ▲                                               │ skip contacts;
///     │ probe succeeds                                │ every Nth skip
///     │                                               ▼ admits a probe
///     └────────────────────────────────────────── HALF-OPEN
///                     probe fails: back to OPEN, skip counter reset
///
/// Probing is *count-based*, not time-based: an open breaker admits a
/// probe every `probe_after_skips` suppressed contacts. Count-based
/// cadence keeps the whole subsystem deterministic under the simulated
/// clock (there is no real wall clock anywhere in the fault model) and
/// self-scales: the hotter the traffic into a dead peer, the sooner it
/// is re-probed.
struct BreakerOptions {
  /// Rolling outcome window size per peer.
  size_t window = 16;
  /// Never open before this many outcomes are in the window (a single
  /// flake on a cold peer must not blackhole it).
  size_t min_samples = 4;
  /// Open when failures/window_size >= this ratio.
  double open_failure_ratio = 0.5;
  /// While open, admit one half-open probe after this many skips.
  size_t probe_after_skips = 8;
};

/// One peer's breaker. Internally synchronized: server workers share it.
class PeerBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit PeerBreaker(const BreakerOptions& options) : options_(options) {}

  /// True when a contact may proceed (closed, or the half-open probe).
  /// False counts one suppressed contact toward the probe cadence.
  /// Every Allow()==true MUST be followed by exactly one
  /// RecordSuccess/RecordFailure per contact attempt.
  bool Allow();

  /// Feeds one contact outcome from the retry path.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// Contacts suppressed while open (monotone).
  size_t skips() const;
  /// Closed -> open transitions (monotone).
  size_t opens() const;
  /// Half-open probes admitted (monotone).
  size_t probes() const;

 private:
  /// Returns true when the window says "open" (call with mu_ held).
  bool WindowTripped() const;

  const BreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  /// Rolling window ring: outcome bits for the last `window` contacts.
  std::vector<bool> ring_;
  size_t ring_next_ = 0;
  size_t ring_count_ = 0;
  size_t ring_failures_ = 0;
  size_t skips_since_probe_ = 0;
  bool probe_in_flight_ = false;
  size_t total_skips_ = 0;
  size_t total_opens_ = 0;
  size_t total_probes_ = 0;
};

/// The per-network collection of breakers, created on first contact per
/// peer. Handed to Answer* through NetworkCostModel::breakers; nullptr
/// (the default everywhere) means no breaking — bit-identical legacy
/// behavior.
class BreakerSet {
 public:
  explicit BreakerSet(const BreakerOptions& options = {})
      : options_(options) {}
  BreakerSet(const BreakerSet&) = delete;
  BreakerSet& operator=(const BreakerSet&) = delete;

  /// The breaker for `peer`, created closed on first use. The pointer
  /// is stable for the set's lifetime.
  PeerBreaker* Get(const std::string& peer);

  /// Peer -> state snapshot, for SLO reports and tests.
  std::map<std::string, PeerBreaker::State> States() const;
  /// Sum of per-peer suppressed contacts.
  size_t total_skips() const;
  /// Peers currently not closed (open or half-open), sorted.
  std::vector<std::string> OpenPeers() const;

  const BreakerOptions& options() const { return options_; }

 private:
  const BreakerOptions options_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<PeerBreaker>> breakers_;
};

/// A process-wide valve on retry amplification (ISSUE 6): under
/// overload, first attempts keep flowing but *retries* — which multiply
/// offered load exactly when the network is least able to absorb it —
/// draw from a shared token budget. Each successful contact refills a
/// fraction of a token, so a healthy network retries freely while a
/// melting one degrades to single attempts. Same shape as gRPC's retry
/// throttling.
class RetryBudget {
 public:
  /// `capacity` tokens to start (and as the refill ceiling); each
  /// successful contact adds `refill_per_success` tokens.
  explicit RetryBudget(double capacity = 64.0,
                       double refill_per_success = 0.1);

  /// Takes one retry token; false (nothing consumed) when the budget
  /// is exhausted — the caller must skip the retry.
  bool TryAcquire();
  /// Credits one successful contact.
  void RecordSuccess();

  double tokens() const;
  /// Retries denied so far (monotone).
  size_t denied() const;

 private:
  const double capacity_;
  const double refill_per_success_;
  mutable std::mutex mu_;
  double tokens_;
  size_t denied_ = 0;
};

/// "closed", "open", or "half-open".
const char* BreakerStateToString(PeerBreaker::State state);

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_BREAKER_H_
