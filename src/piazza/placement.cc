#include "src/piazza/placement.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/piazza/peer.h"
#include "src/query/containment.h"

namespace revere::piazza {

double EstimateQueryNetworkCost(const PdmsNetwork& network,
                                const std::string& peer,
                                const query::ConjunctiveQuery& query,
                                const NetworkCostModel& cost) {
  auto rewritings = network.Reformulate(query);
  if (!rewritings.ok()) return 0.0;
  double total = 0.0;
  for (const auto& rw : rewritings.value()) {
    std::set<std::string> remote;
    for (const auto& atom : rw.body()) {
      auto [p, rel] = SplitQualifiedName(atom.relation);
      if (!p.empty() && p != peer) remote.insert(p);
    }
    total += static_cast<double>(remote.size()) * cost.per_peer_round_trip_ms;
  }
  return total;
}

PlacementPlan PlanViewPlacement(const PdmsNetwork& network,
                                const std::vector<WorkloadEntry>& workload,
                                const PlacementOptions& options) {
  PlacementPlan plan;

  // Per workload entry: the network cost it pays per execution today.
  struct Candidate {
    size_t workload_index;
    double gross_benefit;  // frequency * per-execution cost
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < workload.size(); ++i) {
    double per_exec = EstimateQueryNetworkCost(
        network, workload[i].peer, workload[i].query, options.cost);
    plan.baseline_cost += workload[i].frequency * per_exec;
    candidates.push_back({i, workload[i].frequency * per_exec});
  }
  plan.optimized_cost = plan.baseline_cost;

  // Greedy: best net benefit first, respecting per-peer budgets. A view
  // materialized at a peer also serves that peer's *equivalent* queries.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.gross_benefit > b.gross_benefit;
            });
  std::map<std::string, size_t> views_at_peer;
  std::vector<size_t> served(workload.size(), 0);

  for (const auto& c : candidates) {
    if (served[c.workload_index]) continue;
    const WorkloadEntry& entry = workload[c.workload_index];
    if (views_at_peer[entry.peer] >= options.max_views_per_peer) continue;

    // This view also serves every other unserved equivalent query posed
    // at the same peer.
    double gross = 0.0;
    std::vector<size_t> covered;
    for (size_t j = 0; j < workload.size(); ++j) {
      if (served[j] || workload[j].peer != entry.peer) continue;
      if (query::Equivalent(workload[j].query, entry.query)) {
        covered.push_back(j);
        double per_exec = EstimateQueryNetworkCost(
            network, workload[j].peer, workload[j].query, options.cost);
        gross += workload[j].frequency * per_exec;
      }
    }
    double net = gross - options.maintenance_cost_per_view;
    if (net <= 0.0) continue;

    ++views_at_peer[entry.peer];
    for (size_t j : covered) served[j] = 1;
    plan.optimized_cost -= gross;
    plan.optimized_cost += options.maintenance_cost_per_view;
    plan.decisions.push_back(
        PlacementDecision{entry.peer, entry.query, net});
  }
  return plan;
}

}  // namespace revere::piazza
