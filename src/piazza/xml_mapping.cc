#include "src/piazza/xml_mapping.h"

#include <vector>

#include "src/common/strings.h"
#include "src/xml/parser.h"
#include "src/xml/path.h"

namespace revere::piazza {

namespace {

using xml::PathExpr;
using xml::XmlNode;

/// A parsed binding annotation: $var = document("name")/path  or
/// $var = $base/path.
struct Binding {
  std::string var;
  std::string document;  // non-empty for document(...) roots
  std::string base_var;  // non-empty for $base/... roots
  std::string path;      // the path expression text (may be empty)
};

/// A parsed value reference: $var/path/text().
struct ValueRef {
  std::string var;
  std::string path;  // includes the trailing text() step
};

// Parses "{$c = document(\"B.xml\")/schedule/college/dept}" (the braces
// already stripped).
Result<Binding> ParseBinding(std::string_view body) {
  Binding b;
  std::string_view t = Trim(body);
  if (t.empty() || t.front() != '$') {
    return Status::ParseError("binding must start with $: " +
                              std::string(body));
  }
  size_t eq = t.find('=');
  if (eq == std::string_view::npos) {
    return Status::ParseError("binding missing '=': " + std::string(body));
  }
  b.var = std::string(Trim(t.substr(1, eq - 1)));
  std::string_view rhs = Trim(t.substr(eq + 1));
  if (StartsWith(rhs, "document(")) {
    size_t close = rhs.find(')');
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated document(): " +
                                std::string(body));
    }
    std::string_view name = Trim(rhs.substr(9, close - 9));
    if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
      name = name.substr(1, name.size() - 2);
    }
    b.document = std::string(name);
    b.path = std::string(Trim(rhs.substr(close + 1)));
  } else if (!rhs.empty() && rhs.front() == '$') {
    size_t slash = rhs.find('/');
    if (slash == std::string_view::npos) {
      b.base_var = std::string(Trim(rhs.substr(1)));
      b.path = "";
    } else {
      b.base_var = std::string(Trim(rhs.substr(1, slash - 1)));
      b.path = std::string(Trim(rhs.substr(slash + 1)));
    }
  } else {
    return Status::ParseError("binding rhs must be document() or $var: " +
                              std::string(body));
  }
  if (b.var.empty()) {
    return Status::ParseError("empty binding variable: " + std::string(body));
  }
  return b;
}

// Recognizes "$s/title/text()" in a text node; returns nullopt for
// ordinary text.
std::optional<ValueRef> ParseValueRef(std::string_view text) {
  std::string_view t = Trim(text);
  if (t.empty() || t.front() != '$') return std::nullopt;
  if (!EndsWith(t, "text()")) return std::nullopt;
  size_t slash = t.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  ValueRef ref;
  ref.var = std::string(Trim(t.substr(1, slash - 1)));
  ref.path = std::string(Trim(t.substr(slash + 1)));
  return ref;
}

// Extracts a leading "{...}" annotation from an element's first text
// child, if present. Returns the annotation body and strips it from the
// working copy during instantiation (parsing happens lazily here).
std::optional<std::string> LeadingAnnotation(const XmlNode& element) {
  for (const auto& child : element.children()) {
    if (child->is_text()) {
      std::string_view t = Trim(child->text());
      if (!t.empty() && t.front() == '{') {
        size_t close = t.find('}');
        if (close != std::string_view::npos) {
          return std::string(t.substr(1, close - 1));
        }
      }
      return std::nullopt;  // first text child is ordinary text
    }
    if (child->is_element()) return std::nullopt;
  }
  return std::nullopt;
}

using Environment = std::map<std::string, const XmlNode*>;

Status InstantiateChildren(
    const XmlNode& template_el, XmlNode* out, const Environment& env,
    const std::map<std::string, const XmlNode*>& documents);

/// Instantiates one template element under `env`, appending results to
/// `parent`. Handles its own binding annotation (possibly fanning out).
Status InstantiateElement(
    const XmlNode& template_el, XmlNode* parent, const Environment& env,
    const std::map<std::string, const XmlNode*>& documents) {
  std::optional<std::string> annotation = LeadingAnnotation(template_el);
  if (!annotation.has_value()) {
    XmlNode* copy = parent->AddChild(XmlNode::Element(template_el.tag()));
    for (const auto& [n, v] : template_el.attributes()) {
      copy->SetAttribute(n, v);
    }
    return InstantiateChildren(template_el, copy, env, documents);
  }

  REVERE_ASSIGN_OR_RETURN(Binding binding, ParseBinding(*annotation));
  // Resolve the node set the binding ranges over.
  std::vector<const XmlNode*> nodes;
  if (!binding.document.empty()) {
    auto doc_it = documents.find(binding.document);
    if (doc_it == documents.end()) {
      return Status::NotFound("mapping references unknown document '" +
                              binding.document + "'");
    }
    if (binding.path.empty()) {
      nodes.push_back(doc_it->second);
    } else {
      REVERE_ASSIGN_OR_RETURN(PathExpr path, PathExpr::Parse(binding.path));
      nodes = path.SelectNodes(*doc_it->second);
    }
  } else {
    auto var_it = env.find(binding.base_var);
    if (var_it == env.end()) {
      return Status::InvalidArgument("unbound variable $" + binding.base_var +
                                     " in mapping");
    }
    if (binding.path.empty()) {
      nodes.push_back(var_it->second);
    } else {
      REVERE_ASSIGN_OR_RETURN(PathExpr path, PathExpr::Parse(binding.path));
      nodes = path.SelectNodes(*var_it->second);
    }
  }

  for (const XmlNode* node : nodes) {
    Environment child_env = env;
    child_env[binding.var] = node;
    XmlNode* copy = parent->AddChild(XmlNode::Element(template_el.tag()));
    for (const auto& [n, v] : template_el.attributes()) {
      copy->SetAttribute(n, v);
    }
    REVERE_RETURN_IF_ERROR(
        InstantiateChildren(template_el, copy, child_env, documents));
  }
  return Status::Ok();
}

Status InstantiateChildren(
    const XmlNode& template_el, XmlNode* out, const Environment& env,
    const std::map<std::string, const XmlNode*>& documents) {
  bool skipped_annotation = false;
  for (const auto& child : template_el.children()) {
    if (child->is_text()) {
      std::string_view raw = Trim(child->text());
      // Drop the binding annotation text itself (first "{...}").
      if (!skipped_annotation && !raw.empty() && raw.front() == '{') {
        size_t close = raw.find('}');
        if (close != std::string_view::npos) {
          skipped_annotation = true;
          std::string_view rest = Trim(raw.substr(close + 1));
          if (rest.empty()) continue;
          raw = rest;  // annotation followed by real content
        }
      }
      auto ref = ParseValueRef(raw);
      if (ref.has_value()) {
        auto var_it = env.find(ref->var);
        if (var_it == env.end()) {
          return Status::InvalidArgument("unbound variable $" + ref->var +
                                         " in value expression");
        }
        REVERE_ASSIGN_OR_RETURN(PathExpr path, PathExpr::Parse(ref->path));
        for (const std::string& text : path.SelectText(*var_it->second)) {
          out->AddText(text);
        }
      } else if (!raw.empty()) {
        out->AddText(std::string(raw));
      }
      continue;
    }
    REVERE_RETURN_IF_ERROR(
        InstantiateElement(*child, out, env, documents));
  }
  return Status::Ok();
}

}  // namespace

Result<XmlMapping> XmlMapping::Parse(std::string_view mapping_text) {
  REVERE_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> doc,
                          xml::ParseXml(mapping_text));
  auto tops = doc->ChildElements();
  if (tops.size() != 1) {
    return Status::ParseError("mapping template must have one root element");
  }
  XmlMapping mapping;
  mapping.template_ = tops[0]->Clone();
  return mapping;
}

Result<std::unique_ptr<XmlNode>> XmlMapping::Translate(
    const std::map<std::string, const XmlNode*>& documents) const {
  auto holder = XmlNode::Element("#document");
  Environment env;
  REVERE_RETURN_IF_ERROR(
      InstantiateElement(*template_, holder.get(), env, documents));
  auto tops = holder->ChildElements();
  if (tops.size() != 1) {
    return Status::Internal("template instantiation produced " +
                            std::to_string(tops.size()) + " roots");
  }
  return tops[0]->Clone();
}

void XmlMappingChain::AddHop(XmlMapping mapping,
                             std::string source_document_name) {
  hops_.push_back(Hop{std::move(mapping), std::move(source_document_name)});
}

Result<std::unique_ptr<XmlNode>> XmlMappingChain::Translate(
    const XmlNode& input) const {
  if (hops_.empty()) {
    return Status::FailedPrecondition("empty mapping chain");
  }
  // Absolute paths inside templates address the *document*, whose root
  // element is one level down — wrap bare elements accordingly.
  auto as_document = [](const XmlNode& node) {
    if (node.tag() == "#document") return node.Clone();
    auto doc = XmlNode::Element("#document");
    doc->AddChild(node.Clone());
    return doc;
  };
  std::unique_ptr<XmlNode> current = as_document(input);
  for (const auto& hop : hops_) {
    REVERE_ASSIGN_OR_RETURN(
        std::unique_ptr<XmlNode> next,
        hop.mapping.Translate(
            {{hop.source_document_name, current.get()}}));
    current = as_document(*next);
  }
  // Return the root element, not the wrapper.
  auto tops = current->ChildElements();
  if (tops.size() != 1) {
    return Status::Internal("chain output has no single root");
  }
  return tops[0]->Clone();
}

}  // namespace revere::piazza
