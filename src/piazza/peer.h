#ifndef REVERE_PIAZZA_PEER_H_
#define REVERE_PIAZZA_PEER_H_

#include <string>
#include <vector>

#include "src/query/glav.h"
#include "src/storage/schema.h"
#include "src/xml/dtd.h"

namespace revere::piazza {

/// Qualifies a peer-local relation name: ("mit", "course") -> "mit:course".
std::string QualifiedName(const std::string& peer,
                          const std::string& relation);
/// Splits "mit:course" into ("mit", "course"); peer is empty when the
/// name is unqualified.
std::pair<std::string, std::string> SplitQualifiedName(
    const std::string& name);

/// One participant in the PDMS (§3.1). A peer contributes any of:
/// stored relations (materialized data), a peer schema (logical
/// relations others may query or map to), and mappings. This object is
/// the peer's *metadata*; the data itself lives in the network's
/// storage catalog under qualified names.
class Peer {
 public:
  explicit Peer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares a logical peer relation (arity only — the XML/relational
  /// duality is resolved by the mapping language).
  void DeclarePeerRelation(const std::string& relation, size_t arity);
  /// All declared logical relations (unqualified names).
  const std::vector<std::pair<std::string, size_t>>& peer_relations() const {
    return peer_relations_;
  }
  bool HasPeerRelation(const std::string& relation) const;

  /// Names (unqualified) of this peer's stored relations.
  void NoteStoredRelation(const std::string& relation);
  const std::vector<std::string>& stored_relations() const {
    return stored_relations_;
  }

  /// Optional XML-side schema (Figure 3 DTD form).
  void SetXmlSchema(xml::Dtd dtd) { xml_schema_ = std::move(dtd); }
  const xml::Dtd& xml_schema() const { return xml_schema_; }

 private:
  std::string name_;
  std::vector<std::pair<std::string, size_t>> peer_relations_;
  std::vector<std::string> stored_relations_;
  xml::Dtd xml_schema_;
};

/// A semantic mapping between two peers: a GLAV inclusion (or equality)
/// whose source side ranges over `source_peer`'s relations and target
/// side over `target_peer`'s. Relation names inside the GLAV queries are
/// fully qualified ("berkeley:course").
struct PeerMapping {
  query::GlavMapping glav;
  std::string source_peer;
  std::string target_peer;
  /// Equality mappings may be used in both directions during
  /// reformulation ("forward or backward", §3.1.1); inclusions only
  /// rewrite target-side atoms into source-side queries.
  bool bidirectional = false;
};

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_PEER_H_
