#ifndef REVERE_PIAZZA_PLACEMENT_H_
#define REVERE_PIAZZA_PLACEMENT_H_

#include <string>
#include <vector>

#include "src/piazza/pdms.h"
#include "src/query/cq.h"

namespace revere::piazza {

/// One recurring query in the network's workload.
struct WorkloadEntry {
  std::string peer;               // where the query is posed
  query::ConjunctiveQuery query;  // over that peer's vocabulary
  double frequency = 1.0;         // executions per unit time
};

struct PlacementOptions {
  /// Storage budget: views materialized per peer.
  size_t max_views_per_peer = 2;
  /// Amortized refresh cost charged per materialized view (updategram
  /// traffic), in the same unit as the network cost model's ms.
  double maintenance_cost_per_view = 10.0;
  NetworkCostModel cost;
};

/// One decision: materialize `view` at `peer`.
struct PlacementDecision {
  std::string peer;
  query::ConjunctiveQuery view;
  double benefit = 0.0;  // saved ms per unit time, net of maintenance
};

struct PlacementPlan {
  std::vector<PlacementDecision> decisions;
  double baseline_cost = 0.0;   // workload network cost with no views
  double optimized_cost = 0.0;  // after materialization
};

/// Greedy view placement (§3.1.2: "Our ultimate goal is to materialize
/// the best views at each peer to allow answering queries most
/// efficiently, given network constraints"). Candidate views are the
/// workload queries themselves; a query whose result is materialized at
/// its posing peer costs nothing at run time but pays the amortized
/// maintenance charge. Greedily picks the highest net-benefit
/// (view, peer) pairs within each peer's budget.
PlacementPlan PlanViewPlacement(const PdmsNetwork& network,
                                const std::vector<WorkloadEntry>& workload,
                                const PlacementOptions& options = {});

/// Simulated network cost of running `query` once at `peer` with no
/// materialized views: round trips to every remote peer named in any
/// rewriting (the same model PdmsNetwork::Answer charges).
double EstimateQueryNetworkCost(const PdmsNetwork& network,
                                const std::string& peer,
                                const query::ConjunctiveQuery& query,
                                const NetworkCostModel& cost);

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_PLACEMENT_H_
