#include "src/piazza/breaker.h"

#include <algorithm>

namespace revere::piazza {

const char* BreakerStateToString(PeerBreaker::State state) {
  switch (state) {
    case PeerBreaker::State::kClosed:
      return "closed";
    case PeerBreaker::State::kOpen:
      return "open";
    case PeerBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool PeerBreaker::WindowTripped() const {
  if (ring_count_ < options_.min_samples) return false;
  return static_cast<double>(ring_failures_) >=
         options_.open_failure_ratio * static_cast<double>(ring_count_);
}

bool PeerBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      // One probe at a time: concurrent contacts while the probe is in
      // flight are suppressed, so a dead peer sees exactly one contact
      // per probe cadence even under a fan-out burst.
      if (probe_in_flight_) {
        ++total_skips_;
        return false;
      }
      probe_in_flight_ = true;
      ++total_probes_;
      return true;
    case State::kOpen:
      ++total_skips_;
      if (++skips_since_probe_ >= options_.probe_after_skips) {
        skips_since_probe_ = 0;
        state_ = State::kHalfOpen;
        // This contact becomes the probe: admit it instead of skipping.
        // (The skip above is kept in the count — the *next* caller
        // would have been suppressed either way; keeping the counter
        // monotone with admissions simplifies the accounting.)
        --total_skips_;
        probe_in_flight_ = true;
        ++total_probes_;
        return true;
      }
      return false;
  }
  return true;
}

void PeerBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kClosed) {
    // Probe succeeded (or an in-flight contact admitted before the
    // breaker opened came back fine): the peer is back. Forget the
    // failure history — a recovered peer starts with a clean window.
    state_ = State::kClosed;
    probe_in_flight_ = false;
    std::fill(ring_.begin(), ring_.end(), false);
    ring_next_ = 0;
    ring_count_ = 0;
    ring_failures_ = 0;
    skips_since_probe_ = 0;
    return;
  }
  if (ring_.size() < options_.window) ring_.resize(options_.window, false);
  if (ring_count_ == options_.window && ring_[ring_next_]) --ring_failures_;
  ring_[ring_next_] = false;
  ring_next_ = (ring_next_ + 1) % options_.window;
  ring_count_ = std::min(ring_count_ + 1, options_.window);
}

void PeerBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // Probe failed: back to open, restart the cadence.
    state_ = State::kOpen;
    probe_in_flight_ = false;
    skips_since_probe_ = 0;
    return;
  }
  if (ring_.size() < options_.window) ring_.resize(options_.window, false);
  if (ring_count_ == options_.window && ring_[ring_next_]) --ring_failures_;
  ring_[ring_next_] = true;
  ++ring_failures_;
  ring_next_ = (ring_next_ + 1) % options_.window;
  ring_count_ = std::min(ring_count_ + 1, options_.window);
  if (state_ == State::kClosed && WindowTripped()) {
    state_ = State::kOpen;
    skips_since_probe_ = 0;
    ++total_opens_;
  }
}

PeerBreaker::State PeerBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

size_t PeerBreaker::skips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_skips_;
}

size_t PeerBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_opens_;
}

size_t PeerBreaker::probes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_probes_;
}

PeerBreaker* BreakerSet::Get(const std::string& peer) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = breakers_.find(peer);
    if (it != breakers_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] =
      breakers_.try_emplace(peer, std::make_unique<PeerBreaker>(options_));
  return it->second.get();
}

std::map<std::string, PeerBreaker::State> BreakerSet::States() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::map<std::string, PeerBreaker::State> out;
  for (const auto& [peer, breaker] : breakers_) {
    out[peer] = breaker->state();
  }
  return out;
}

size_t BreakerSet::total_skips() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [peer, breaker] : breakers_) total += breaker->skips();
  return total;
}

std::vector<std::string> BreakerSet::OpenPeers() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [peer, breaker] : breakers_) {
    if (breaker->state() != PeerBreaker::State::kClosed) out.push_back(peer);
  }
  return out;
}

RetryBudget::RetryBudget(double capacity, double refill_per_success)
    : capacity_(std::max(0.0, capacity)),
      refill_per_success_(std::max(0.0, refill_per_success)),
      tokens_(capacity_) {}

bool RetryBudget::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++denied_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(capacity_, tokens_ + refill_per_success_);
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

size_t RetryBudget::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

}  // namespace revere::piazza
