#include "src/piazza/plan_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace revere::piazza {

PlanCache::PlanCache(size_t capacity, size_t shards) : capacity_(capacity) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  registry_hits_ = metrics.GetCounter("plan_cache.hits");
  registry_misses_ = metrics.GetCounter("plan_cache.misses");
  registry_evictions_ = metrics.GetCounter("plan_cache.evictions");
  registry_insertions_ = metrics.GetCounter("plan_cache.insertions");
  size_t shard_count =
      capacity_ == 0 ? 1 : std::max<size_t>(1, std::min(shards, capacity_));
  per_shard_capacity_ =
      capacity_ == 0 ? 0 : (capacity_ + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    uint64_t fingerprint, const std::string& key, uint64_t generation,
    const std::function<bool(const CachedPlan&)>& validator) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_enabled()) registry_misses_->Increment();
    return nullptr;
  }
  Shard& shard = ShardFor(fingerprint);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second->generation != generation ||
      (validator != nullptr && !validator(*it->second->plan))) {
    // Absent, written under an older network generation, or rejected by
    // the caller's scope validator: a stale plan is never served. The
    // stale entry is purged on the next insert into this shard (or
    // replaced on re-insert; erasing here would need the write lock).
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_enabled()) registry_misses_->Increment();
    return nullptr;
  }
  it->second->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                              std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) registry_hits_->Increment();
  return it->second->plan;
}

void PlanCache::Insert(uint64_t fingerprint, std::string key,
                       uint64_t generation,
                       std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(fingerprint);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second->plan = std::move(plan);
    it->second->generation = generation;
    it->second->last_used.store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_enabled()) registry_insertions_->Increment();
    return;
  }
  if (shard.entries.size() >= per_shard_capacity_) {
    // Make room: drop every stale-generation entry first (free wins),
    // then the least-recently-used live one.
    for (auto e = shard.entries.begin(); e != shard.entries.end();) {
      if (shard.entries.size() < per_shard_capacity_) break;
      if (e->second->generation != generation) {
        e = shard.entries.erase(e);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_enabled()) registry_evictions_->Increment();
      } else {
        ++e;
      }
    }
    while (shard.entries.size() >= per_shard_capacity_) {
      auto victim = shard.entries.begin();
      for (auto e = shard.entries.begin(); e != shard.entries.end(); ++e) {
        if (e->second->last_used.load(std::memory_order_relaxed) <
            victim->second->last_used.load(std::memory_order_relaxed)) {
          victim = e;
        }
      }
      shard.entries.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled()) registry_evictions_->Increment();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->plan = std::move(plan);
  entry->generation = generation;
  entry->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  shard.entries.emplace(std::move(key), std::move(entry));
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) registry_insertions_->Increment();
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    shard->entries.clear();
  }
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    stats.entries += shard->entries.size();
  }
  return stats;
}

}  // namespace revere::piazza
