#ifndef REVERE_PIAZZA_PDMS_H_
#define REVERE_PIAZZA_PDMS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace.h"
#include "src/piazza/breaker.h"
#include "src/piazza/fault.h"
#include "src/piazza/peer.h"
#include "src/piazza/plan_cache.h"
#include "src/piazza/reformulation.h"
#include "src/piazza/views.h"
#include "src/piazza/xml_mapping.h"
#include "src/query/cq.h"
#include "src/query/evaluate.h"
#include "src/route/route_table.h"
#include "src/storage/catalog.h"
#include "src/xml/node.h"

namespace revere::piazza {

/// How a rewriting executes across peers (§3.1.2: "distribute each
/// query in the PDMS to the peer that will provide the best
/// performance").
enum class ExecutionStrategy {
  /// Ship the (sub)query to each remote peer; only result rows cross
  /// the wire.
  kShipQuery,
  /// Ship every referenced remote base table to the querying peer and
  /// evaluate locally — the naive baseline.
  kShipData,
};

/// Simple network cost model for the simulated distributed execution:
/// contacting a peer costs a round trip; shipping a row costs transfer
/// time.
struct NetworkCostModel {
  double per_peer_round_trip_ms = 5.0;
  double per_row_ms = 0.01;
  ExecutionStrategy strategy = ExecutionStrategy::kShipQuery;

  // ---- Fault tolerance (peers "join and leave at will", §3.1.2) ----

  /// Optional failure simulator; nullptr models a perfect network.
  /// Non-owning — the injector outlives the Answer() call and is
  /// mutated by it (contacts draw from its seeded RNG).
  FaultInjector* faults = nullptr;
  /// What to do when a peer stays unreachable after retries.
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
  /// Per-peer-contact timeout / bounded retry / backoff knobs.
  RetryPolicy retry;

  // ---- Overload safety (ISSUE 6) ----

  /// Absolute wall-clock deadline for the whole Answer* call;
  /// time_point::max() (the default) disables every check. When set,
  /// the deadline is honored *end to end*: before reformulation, before
  /// each rewriting's evaluation, and before each peer contact. Under
  /// kBestEffort an expired deadline degrades to the partial answer
  /// accumulated so far, with the dropped rewritings itemized in
  /// `completeness` (rewritings_deadline_skipped); under kFailFast it
  /// returns kDeadlineExceeded. RevereServer fills this from each
  /// request's deadline budget.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Per-peer circuit breakers. Non-owning; nullptr (default) disables
  /// breaking. When a peer's breaker is open, contacts to it are
  /// skipped without touching the injector (no RNG draw, no simulated
  /// time) and the rewriting is dropped like an unreachable peer, with
  /// the skip counted in `completeness.breaker_skips`.
  BreakerSet* breakers = nullptr;
  /// Global retry-amplification valve. Non-owning; nullptr (default)
  /// allows every retry the RetryPolicy permits. When exhausted,
  /// further retries are skipped (completeness.retries_denied).
  RetryBudget* retry_budget = nullptr;

  // ---- Scale-aware routing (ISSUE 9) --------------------------------

  /// When set, every real peer-contact outcome (elapsed simulated time
  /// + success/failure) feeds this route table's EWMA estimates, so the
  /// cost-bounded reformulation search learns from live traffic.
  /// Non-owning; nullptr (the default) keeps contacts feedback-free —
  /// point it at PdmsNetwork::route_table() to close the loop.
  /// Breaker-suppressed contacts are NOT fed (they carry no new signal;
  /// the breaker state itself seeds reachability via
  /// route::SeedFromBreakers).
  route::RouteTable* route_feedback = nullptr;

  // ---- Local evaluation (ISSUE 2: parallel, allocation-lean) ----

  /// How each rewriting is evaluated against local storage. Setting
  /// `eval.pool` evaluates rewritings in parallel; results (and all
  /// fault-injection contact accounting, which stays sequential in
  /// rewriting order) are byte-identical for any worker count. Under
  /// kFailFast with a pool, rewritings past the failing one may have
  /// been evaluated speculatively — wasted work, never wrong answers.
  query::EvalOptions eval;

  // ---- Observability (ISSUE 4) ----

  /// When set, every Answer*/AnswerBatch call builds a span tree under
  /// this tracer: `answer` → `reformulate` (→ `plan_cache`) +
  /// per-rewriting `evaluate` → per-peer `contact` (→ `retry`).
  /// Non-owning; nullptr (the default) costs one branch per site.
  /// Answers never depend on the tracer.
  obs::Tracer* tracer = nullptr;
  /// Span id the per-query `answer` span attaches under (0 = top
  /// level); AnswerBatch parents its queries' spans to its own `batch`
  /// span through this.
  uint64_t parent_span = 0;
};

/// Instrumentation from answering a query end to end — the per-call
/// thin view (ISSUE 4): the same events also stream into the
/// process-wide obs::MetricsRegistry as `pdms.*` counters/histograms
/// (gated by PdmsNetwork::set_metrics_enabled, the `metrics on|off`
/// config directive), so deployments read one registry while callers
/// keep this exact per-answer accounting.
struct ExecutionStats {
  ReformulationStats reformulation;
  size_t rewritings_evaluated = 0;
  /// Distinct remote peers successfully contacted by *evaluated*
  /// rewritings (skipped or unanswerable rewritings charge nothing
  /// here; their peers show up in `completeness` instead).
  size_t peers_contacted = 0;
  size_t rows_shipped = 0;
  /// Simulated wall clock: round trips + row transfer + failed-contact
  /// timeouts + retry backoff. Never real time.
  double simulated_network_ms = 0.0;
  /// Degradation accounting when a FaultInjector is present.
  CompletenessReport completeness;
  /// Plan-cache outcome of this answer's reformulation (mirrors
  /// `reformulation.plan_cache_*`; both zero when the cache was off).
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
};

/// The Piazza peer data management system (§3): an overlay of peers
/// connected by local GLAV mappings. "The PDMS will find all data
/// sources related through this schema via the transitive closure of
/// mappings, and it will use these sources to answer the query in the
/// user's schema."
///
/// Data model note: stored relations live in one storage::Catalog under
/// qualified names ("mit:course"); this models each peer's local store
/// while letting the reformulation engine speak one vocabulary.
class PdmsNetwork {
 public:
  PdmsNetwork() = default;
  PdmsNetwork(const PdmsNetwork&) = delete;
  PdmsNetwork& operator=(const PdmsNetwork&) = delete;

  /// Adds a peer; AlreadyExists on duplicate names.
  Result<Peer*> AddPeer(const std::string& name);
  Result<Peer*> GetPeer(const std::string& name);
  bool HasPeer(const std::string& name) const;
  size_t peer_count() const { return peers_.size(); }
  /// All peer names, sorted.
  std::vector<std::string> PeerNames() const;

  /// Creates a stored relation at `peer`; the schema's name must be the
  /// unqualified relation name.
  Result<storage::Table*> AddStoredRelation(const std::string& peer,
                                            storage::TableSchema schema);

  /// Registers a mapping; validates both sides and peer existence.
  Status AddMapping(PeerMapping mapping);
  const std::vector<PeerMapping>& mappings() const { return mappings_; }

  /// Rewrites `query` (posed in some peer's vocabulary, atoms use
  /// qualified names) into a union of conjunctive queries over *stored*
  /// relations only, chasing mappings transitively.
  Result<std::vector<query::ConjunctiveQuery>> Reformulate(
      const query::ConjunctiveQuery& query,
      const ReformulationOptions& options = {},
      ReformulationStats* stats = nullptr) const;

  /// Reformulates, evaluates every rewriting, unions the answers, and
  /// charges the simulated network cost model. When `cost.faults` is
  /// set, every remote peer named in a rewriting must be contacted
  /// first (with `cost.retry` timeout/retry/backoff, all in simulated
  /// time); an unreachable peer either aborts the whole answer
  /// (kFailFast) or drops just the rewritings touching it
  /// (kBestEffort), with the loss itemized in `stats->completeness`.
  /// On a fail-fast error `stats` is still populated, so callers can
  /// see the retries and backoff spent before giving up.
  Result<std::vector<storage::Row>> Answer(
      const query::ConjunctiveQuery& query,
      const ReformulationOptions& options = {},
      ExecutionStats* stats = nullptr,
      const NetworkCostModel& cost = {}) const;

  /// An answer row together with the peers whose data derived it — the
  /// PDMS analogue of MANGROVE's per-triple source URL (§2.3):
  /// applications can scope trust by origin.
  struct ProvenancedRow {
    storage::Row row;
    std::set<std::string> peers;
  };

  /// Like Answer, but each row carries the set of peers that contribute
  /// it (union across the rewritings that derive it).
  Result<std::vector<ProvenancedRow>> AnswerWithProvenance(
      const query::ConjunctiveQuery& query,
      const ReformulationOptions& options = {},
      ExecutionStats* stats = nullptr,
      const NetworkCostModel& cost = {}) const;

  /// Sustained-throughput serving path: answers a mixed query stream,
  /// sharing the plan cache (and on-demand indexes) across the whole
  /// batch. Results (and `stats` entries, when non-null) line up with
  /// `queries` by index; a per-query failure is that slot's Status and
  /// never aborts the rest of the batch. With `cost.eval.pool` set and
  /// no fault injector, queries fan out across the pool's workers (each
  /// evaluated single-threaded — parallelism comes from the stream);
  /// each query's answer is byte-identical to a standalone `Answer`
  /// call. With `cost.faults` set the batch runs sequentially in input
  /// order, because the injector's seeded RNG draw sequence — and so
  /// every completeness counter — is defined by that order.
  std::vector<Result<std::vector<storage::Row>>> AnswerBatch(
      const std::vector<query::ConjunctiveQuery>& queries,
      const ReformulationOptions& options = {},
      std::vector<ExecutionStats>* stats = nullptr,
      const NetworkCostModel& cost = {}) const;

  // ---- Reformulation plan cache (ISSUE 3) ----------------------------

  /// Resizes the plan cache (0 disables it), dropping every entry.
  /// Deployments size it via the `plan_cache <capacity>` config
  /// directive.
  void SetPlanCacheCapacity(size_t capacity);
  size_t plan_cache_capacity() const { return plan_cache_->capacity(); }
  /// Drops all cached plans (capacity and counters unchanged).
  void ClearPlanCache() { plan_cache_->Clear(); }
  /// Hit/miss/eviction counters for benches and tests.
  PlanCache::Stats PlanCacheStats() const { return plan_cache_->GetStats(); }
  /// The mutation clock: bumped whenever mappings, stored relations,
  /// views, or topology change. Under scoped invalidation (the default)
  /// it is the fast-path freshness check cached plans memoize against;
  /// under `set_scoped_invalidation(false)` it is the sole invalidation
  /// key — cached plans from older generations are never served.
  uint64_t plan_generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  // ---- Scoped plan invalidation (ISSUE 9) ---------------------------

  /// Scoped (per-peer) invalidation, on by default: a structural change
  /// invalidates only the cached plans whose search touched a changed
  /// peer, so an `AddPeer` on a 1k-peer network leaves the other 999
  /// peers' warm plans servable. `false` restores the pre-route global
  /// behavior — every mutation drops every plan — as a safety escape
  /// hatch and the bench's comparison arm. Switching modes clears the
  /// cache (entries from the two modes carry incompatible stamps).
  void set_scoped_invalidation(bool enabled);
  bool scoped_invalidation() const {
    return scoped_invalidation_.load(std::memory_order_relaxed);
  }
  /// The per-peer invalidation stamp (0 until the peer's first
  /// structural change — including its own join). For tests.
  uint64_t peer_generation(const std::string& peer) const;

  // ---- Scale-aware routing (ISSUE 9) --------------------------------

  /// This network's route table: per-peer cost estimates driving the
  /// cost-bounded reformulation search
  /// (ReformulationOptions::use_route_search). Seed it via
  /// route::SeedFrom* or SetStaticCost, or wire live feedback with
  /// NetworkCostModel::route_feedback. With no estimates every peer
  /// costs RouteTable::kDefaultCost, making route-mode search order
  /// identical to the legacy breadth-first expansion.
  route::RouteTable* route_table() const { return route_table_.get(); }

  /// Declarative overlay-shape metadata from the `topology` config
  /// directive ("small_world", "scale_free", …) plus the declared peer
  /// count (0 = unspecified). Carried for tooling and benches —
  /// regenerating a deployment at scale — never interpreted by the
  /// engine, so it round-trips through Save/Load without constraining
  /// the explicit peer/mapping lines.
  void set_topology_hint(std::string shape, size_t declared_peers) {
    topology_hint_ = std::move(shape);
    declared_peers_ = declared_peers;
  }
  const std::string& topology_hint() const { return topology_hint_; }
  size_t declared_peers() const { return declared_peers_; }

  // ---- Observability (ISSUE 4) ----------------------------------------

  /// Gates this network's reporting into the process-wide
  /// obs::MetricsRegistry (`pdms.*`, `reformulate.*`, and the plan
  /// cache's `plan_cache.*`). On by default; the `metrics off` config
  /// directive disables it for deployments that want zero registry
  /// traffic. Tracing (NetworkCostModel::tracer) is independent.
  void set_metrics_enabled(bool enabled) {
    metrics_enabled_.store(enabled, std::memory_order_relaxed);
    plan_cache_->SetMetricsEnabled(enabled);
  }
  bool metrics_enabled() const {
    return metrics_enabled_.load(std::memory_order_relaxed);
  }

  const storage::Catalog& storage() const { return storage_; }
  storage::Catalog* mutable_storage() { return &storage_; }

  // ---- XML document side (§3.1: "Piazza assumes an XML data model") --

  /// Registers a Figure-4-style template mapping that translates
  /// documents in `source_peer`'s schema into `target_peer`'s. The
  /// template reads its input as document(`source_doc_name`).
  Status AddXmlMapping(const std::string& source_peer,
                       const std::string& target_peer, XmlMapping mapping,
                       std::string source_doc_name);

  /// Translates `input` (a document in `source_peer`'s XML schema) into
  /// `target_peer`'s schema by composing registered XML mappings along
  /// the shortest mapping path (BFS) — the transitive-reuse story of
  /// Example 3.1. NotFound when no path exists.
  Result<std::unique_ptr<xml::XmlNode>> TranslateDocument(
      const std::string& source_peer, const std::string& target_peer,
      const xml::XmlNode& input) const;

  /// True when a qualified relation is materialized somewhere.
  bool IsStored(const std::string& qualified_relation) const {
    return storage_.HasTable(qualified_relation);
  }

  // ---- Materialized views and updategram propagation (§3.1.2) ----

  /// Materializes `definition` (over qualified stored relations) at
  /// `peer` and registers it for updategram-driven maintenance.
  /// Returns the view's registry index.
  Result<size_t> RegisterView(const std::string& peer,
                              query::ConjunctiveQuery definition);

  /// Registered view by index.
  Result<const MaterializedView*> GetView(size_t index) const;
  size_t view_count() const { return views_.size(); }

  /// Outcome of one propagation (drives tests and benches).
  struct PropagationStats {
    size_t views_touched = 0;
    size_t incremental_refreshes = 0;
    size_t full_recomputes = 0;
  };

  /// Applies `update` to its base relation, then refreshes every
  /// registered view that depends on it, choosing incrementally-vs-
  /// recompute per view via the cost model ("the query optimizer
  /// decides which updategrams to use in a cost-based fashion").
  Result<PropagationStats> PropagateUpdategram(const Updategram& update);

 private:
  /// Relations from which stored data is reachable via mapping chains
  /// (fixpoint; recomputed when mappings change).
  void RecomputeProductive();

  /// Marks a change to mappings/topology/views: bumps the mutation
  /// clock so every previously cached plan reads as stale (legacy mode)
  /// or gets its scope re-validated (scoped mode).
  void InvalidatePlans() {
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Scoped invalidation: bumps the mutation clock AND the per-peer
  /// stamp of every peer in `peers`, so only plans whose search touched
  /// one of them fail scope validation. Callers pass the peers a
  /// mutation structurally affects (endpoints of a new mapping, the
  /// peer gaining storage, plus every peer whose relations changed
  /// productivity — see ProductivityDiffPeers).
  void InvalidatePlansTouching(const std::set<std::string>& peers);

  /// Peers owning a relation whose `productive_` status differs from
  /// `before` — the ripple a storage/mapping change sends through the
  /// reachability fixpoint. A plan pruned by prune_unreachable at a
  /// node mentioning such a relation records that node's peers in its
  /// touched set, so bumping these peers keeps scoped invalidation
  /// sound for dead-path-pruned plans too.
  std::set<std::string> ProductivityDiffPeers(
      const std::map<std::string, bool>& before) const;

  /// Reformulate through the plan cache. The returned plan is shared
  /// with the cache (never mutated); `stats` reports the computing
  /// run's counters plus the hit/miss flag. When `tracer` is set, a
  /// `reformulate` span (with a `plan_cache` child when the cache is
  /// consulted) opens under `parent_span`.
  Result<std::shared_ptr<const CachedPlan>> ReformulateCached(
      const query::ConjunctiveQuery& query,
      const ReformulationOptions& options, ReformulationStats* stats,
      obs::Tracer* tracer = nullptr, uint64_t parent_span = 0) const;

  struct XmlEdge {
    std::string source_peer;
    std::string target_peer;
    XmlMapping mapping;
    std::string source_doc_name;
  };

  struct RegisteredView {
    std::string peer;
    MaterializedView view;
  };

  std::map<std::string, std::unique_ptr<Peer>> peers_;
  std::vector<PeerMapping> mappings_;
  /// Route-mode expansion index: qualified relation name → the mappings
  /// (and application direction) that can rewrite an atom of that
  /// relation. Rebuilt alongside `mappings_`; lets the best-first
  /// search touch only the mappings incident to a node's atoms instead
  /// of scanning all of them — the O(edges-at-node) vs O(all-mappings)
  /// difference that makes 1k-peer reformulation interactive.
  struct MappingUse {
    size_t index = 0;   // into mappings_
    bool forward = true;  // target→source application (else backward)
  };
  std::map<std::string, std::vector<MappingUse>> mapping_index_;
  std::vector<XmlEdge> xml_edges_;
  std::vector<RegisteredView> views_;
  storage::Catalog storage_;
  std::map<std::string, bool> productive_;
  /// Plan-cache mutation clock (see plan_generation()).
  std::atomic<uint64_t> generation_{0};
  /// Per-peer invalidation stamps for scoped invalidation; a peer
  /// absent here reads as stamp 0 (matching plans that recorded it as
  /// unknown). Guarded by gen_mu_ — lock order is plan-cache shard lock
  /// first (the validator runs inside Lookup), then gen_mu_; mutators
  /// take gen_mu_ alone.
  mutable std::shared_mutex gen_mu_;
  std::map<std::string, uint64_t> peer_generations_;
  /// See set_scoped_invalidation().
  std::atomic<bool> scoped_invalidation_{true};
  /// See set_topology_hint().
  std::string topology_hint_;
  size_t declared_peers_ = 0;
  /// Per-network route table (see route_table()).
  mutable std::unique_ptr<route::RouteTable> route_table_ =
      std::make_unique<route::RouteTable>();
  /// Registry-reporting gate (see set_metrics_enabled()).
  std::atomic<bool> metrics_enabled_{true};
  /// The reformulation plan cache. `mutable` because Answer/Reformulate
  /// are logically const reads of the network; unique_ptr so
  /// SetPlanCacheCapacity can rebuild the shard array.
  mutable std::unique_ptr<PlanCache> plan_cache_ =
      std::make_unique<PlanCache>();
};

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_PDMS_H_
