#ifndef REVERE_PIAZZA_NETWORK_CONFIG_H_
#define REVERE_PIAZZA_NETWORK_CONFIG_H_

#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/piazza/fault.h"
#include "src/piazza/pdms.h"

namespace revere::piazza {

/// Loads a PDMS deployment from a line-oriented config — the shape a
/// real federation would check into version control. Directives:
///
///   peer <name>
///   stored <peer> <relation> <col1> <col2> ...
///   row <peer> <relation> <v1> | <v2> | ...
///   mapping <name> <source_peer> <target_peer> [bidirectional]
///       <glav: source_cq => target_cq>      (one following line)
///   fault <peer> down
///   fault <peer> flaky <failure_probability>
///   fault <peer> slow <extra_latency_ms>
///   plan_cache <capacity>
///   metrics <on|off>
///   topology <chain|star|random|small_world|scale_free> [peers]
///
/// '#' starts a comment; blank lines are ignored. Values in `row` are
/// separated by " | " so they may contain spaces. `fault` directives
/// (known-degraded peers in a deployment) are applied to `faults` and
/// are an error when no injector is supplied. `plan_cache` sizes the
/// network's reformulation plan cache in entries (0 disables it; the
/// directive is optional — the default is kDefaultPlanCacheCapacity).
/// `metrics` gates this network's mirroring into the process-wide
/// obs::MetricsRegistry (default on; per-call ExecutionStats always
/// run). `topology` records the deployment's declared overlay shape
/// (and optionally its peer count) as metadata on the network — see
/// PdmsNetwork::topology_hint(); it does not generate peers.
Status LoadNetworkConfig(std::string_view config, PdmsNetwork* network,
                         FaultInjector* faults = nullptr);

/// Serializes the network's peers, stored relations (with data), and
/// mappings back into the config format — plus `faults`'s injected
/// faults when given. Round-trips with LoadNetworkConfig.
std::string SaveNetworkConfig(const PdmsNetwork& network,
                              const FaultInjector* faults = nullptr);

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_NETWORK_CONFIG_H_
