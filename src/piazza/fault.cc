#include "src/piazza/fault.h"

#include <algorithm>

#include "src/common/hash.h"

namespace revere::piazza {

const char* FaultModeToString(FaultMode mode) {
  switch (mode) {
    case FaultMode::kHealthy:
      return "healthy";
    case FaultMode::kDown:
      return "down";
    case FaultMode::kFlaky:
      return "flaky";
    case FaultMode::kSlow:
      return "slow";
  }
  return "unknown";
}

void FaultInjector::SetDown(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_[peer] = PeerFault{FaultMode::kDown, 0.0, 0.0};
}

void FaultInjector::SetFlaky(const std::string& peer,
                             double failure_probability) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_[peer] =
      PeerFault{FaultMode::kFlaky, std::clamp(failure_probability, 0.0, 1.0),
                0.0};
}

void FaultInjector::SetSlow(const std::string& peer, double extra_latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_[peer] =
      PeerFault{FaultMode::kSlow, 0.0, std::max(0.0, extra_latency_ms)};
}

void FaultInjector::Restore(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.erase(peer);
}

void FaultInjector::RestoreAll() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

PeerFault FaultInjector::GetFault(const std::string& peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = faults_.find(peer);
  return it == faults_.end() ? PeerFault{} : it->second;
}

std::vector<std::string> FaultInjector::FaultyPeers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(faults_.size());
  for (const auto& [peer, fault] : faults_) {
    if (fault.mode != FaultMode::kHealthy) out.push_back(peer);
  }
  return out;
}

size_t FaultInjector::contacts_attempted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contacts_attempted_;
}

size_t FaultInjector::contacts_to(const std::string& peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_peer_contacts_.find(peer);
  return it == per_peer_contacts_.end() ? 0 : it->second;
}

ContactOutcome FaultInjector::Contact(const std::string& peer,
                                      double base_round_trip_ms,
                                      double deadline_ms) {
  // One lock for the whole attempt: the accounting, the fault lookup,
  // and the RNG draw must be atomic so concurrent server workers see a
  // consistent injector (each contact is one indivisible draw).
  std::lock_guard<std::mutex> lock(mu_);
  ++contacts_attempted_;
  ++per_peer_contacts_[peer];
  // A failed contact is only *detected* once the caller stops waiting:
  // after the per-contact deadline when one is set, else after the time
  // a healthy round trip would have taken.
  double failure_cost = deadline_ms > 0.0 ? deadline_ms : base_round_trip_ms;
  auto fault_it = faults_.find(peer);
  PeerFault fault = fault_it == faults_.end() ? PeerFault{} : fault_it->second;
  switch (fault.mode) {
    case FaultMode::kDown:
      return {Status::Unavailable("peer '" + peer + "' is down"),
              failure_cost};
    case FaultMode::kFlaky:
      if (rng_.Bernoulli(fault.failure_probability)) {
        return {Status::Unavailable("peer '" + peer + "' dropped the contact"),
                failure_cost};
      }
      break;
    case FaultMode::kSlow: {
      double total = base_round_trip_ms + fault.extra_latency_ms;
      if (deadline_ms > 0.0 && total > deadline_ms) {
        return {Status::DeadlineExceeded(
                    "peer '" + peer + "' answered too slowly (" +
                    std::to_string(total) + "ms > " +
                    std::to_string(deadline_ms) + "ms deadline)"),
                deadline_ms};
      }
      return {Status::Ok(), total};
    }
    case FaultMode::kHealthy:
      break;
  }
  if (deadline_ms > 0.0 && base_round_trip_ms > deadline_ms) {
    return {Status::DeadlineExceeded("peer '" + peer +
                                     "' cannot answer within the deadline"),
            deadline_ms};
  }
  return {Status::Ok(), base_round_trip_ms};
}

void FaultInjector::InjectUniform(const std::vector<std::string>& peers,
                                  double rate, const PeerFault& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& peer : peers) {
    if (rng_.Bernoulli(rate)) faults_[peer] = fault;
  }
}

void FaultInjector::InjectFraction(const std::vector<std::string>& peers,
                                   double fraction, const PeerFault& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = static_cast<size_t>(
      fraction * static_cast<double>(peers.size()) + 0.5);
  count = std::min(count, peers.size());
  std::vector<std::string> pool = peers;
  rng_.Shuffle(&pool);
  for (size_t i = 0; i < count; ++i) faults_[pool[i]] = fault;
}

double RetryPolicy::BackoffMs(const std::string& peer, int attempt) const {
  double backoff =
      base_backoff_ms * static_cast<double>(uint64_t{1} << (attempt - 1));
  if (jitter <= 0.0) return backoff;
  // Stateless seeded jitter: hash (seed, peer, attempt) to a uniform
  // u in [0, 1) and shave off up to `jitter` of the wait. Different
  // peers and attempts decorrelate; equal inputs replay identically.
  uint64_t h = Fnv1a64(peer, jitter_seed ^ 0x9e3779b97f4a7c15ULL);
  h ^= static_cast<uint64_t>(attempt) * 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return backoff * (1.0 - std::clamp(jitter, 0.0, 1.0) * u);
}

}  // namespace revere::piazza
