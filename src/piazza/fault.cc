#include "src/piazza/fault.h"

#include <algorithm>

namespace revere::piazza {

const char* FaultModeToString(FaultMode mode) {
  switch (mode) {
    case FaultMode::kHealthy:
      return "healthy";
    case FaultMode::kDown:
      return "down";
    case FaultMode::kFlaky:
      return "flaky";
    case FaultMode::kSlow:
      return "slow";
  }
  return "unknown";
}

void FaultInjector::SetDown(const std::string& peer) {
  faults_[peer] = PeerFault{FaultMode::kDown, 0.0, 0.0};
}

void FaultInjector::SetFlaky(const std::string& peer,
                             double failure_probability) {
  faults_[peer] =
      PeerFault{FaultMode::kFlaky, std::clamp(failure_probability, 0.0, 1.0),
                0.0};
}

void FaultInjector::SetSlow(const std::string& peer, double extra_latency_ms) {
  faults_[peer] =
      PeerFault{FaultMode::kSlow, 0.0, std::max(0.0, extra_latency_ms)};
}

void FaultInjector::Restore(const std::string& peer) { faults_.erase(peer); }

void FaultInjector::RestoreAll() { faults_.clear(); }

PeerFault FaultInjector::GetFault(const std::string& peer) const {
  auto it = faults_.find(peer);
  return it == faults_.end() ? PeerFault{} : it->second;
}

std::vector<std::string> FaultInjector::FaultyPeers() const {
  std::vector<std::string> out;
  out.reserve(faults_.size());
  for (const auto& [peer, fault] : faults_) {
    if (fault.mode != FaultMode::kHealthy) out.push_back(peer);
  }
  return out;
}

ContactOutcome FaultInjector::Contact(const std::string& peer,
                                      double base_round_trip_ms,
                                      double deadline_ms) {
  ++contacts_attempted_;
  // A failed contact is only *detected* once the caller stops waiting:
  // after the per-contact deadline when one is set, else after the time
  // a healthy round trip would have taken.
  double failure_cost = deadline_ms > 0.0 ? deadline_ms : base_round_trip_ms;
  PeerFault fault = GetFault(peer);
  switch (fault.mode) {
    case FaultMode::kDown:
      return {Status::Unavailable("peer '" + peer + "' is down"),
              failure_cost};
    case FaultMode::kFlaky:
      if (rng_.Bernoulli(fault.failure_probability)) {
        return {Status::Unavailable("peer '" + peer + "' dropped the contact"),
                failure_cost};
      }
      break;
    case FaultMode::kSlow: {
      double total = base_round_trip_ms + fault.extra_latency_ms;
      if (deadline_ms > 0.0 && total > deadline_ms) {
        return {Status::DeadlineExceeded(
                    "peer '" + peer + "' answered too slowly (" +
                    std::to_string(total) + "ms > " +
                    std::to_string(deadline_ms) + "ms deadline)"),
                deadline_ms};
      }
      return {Status::Ok(), total};
    }
    case FaultMode::kHealthy:
      break;
  }
  if (deadline_ms > 0.0 && base_round_trip_ms > deadline_ms) {
    return {Status::DeadlineExceeded("peer '" + peer +
                                     "' cannot answer within the deadline"),
            deadline_ms};
  }
  return {Status::Ok(), base_round_trip_ms};
}

void FaultInjector::InjectUniform(const std::vector<std::string>& peers,
                                  double rate, const PeerFault& fault) {
  for (const auto& peer : peers) {
    if (rng_.Bernoulli(rate)) faults_[peer] = fault;
  }
}

void FaultInjector::InjectFraction(const std::vector<std::string>& peers,
                                   double fraction, const PeerFault& fault) {
  size_t count = static_cast<size_t>(
      fraction * static_cast<double>(peers.size()) + 0.5);
  count = std::min(count, peers.size());
  std::vector<std::string> pool = peers;
  rng_.Shuffle(&pool);
  for (size_t i = 0; i < count; ++i) faults_[pool[i]] = fault;
}

}  // namespace revere::piazza
