#include "src/piazza/network_config.h"

#include <cstdlib>
#include <optional>

#include "src/common/strings.h"
#include "src/piazza/peer.h"
#include "src/query/glav.h"

namespace revere::piazza {

namespace {

struct PendingMapping {
  std::string name;
  std::string source_peer;
  std::string target_peer;
  bool bidirectional = false;
};

}  // namespace

Status LoadNetworkConfig(std::string_view config, PdmsNetwork* network,
                         FaultInjector* faults) {
  std::optional<PendingMapping> pending;
  size_t line_number = 0;
  for (const std::string& raw : Split(config, '\n')) {
    ++line_number;
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') continue;
    auto fail = [&](const std::string& why) {
      return Status::ParseError("network config line " +
                                std::to_string(line_number) + ": " + why);
    };

    if (pending.has_value()) {
      // This line must be the pending mapping's GLAV text.
      REVERE_ASSIGN_OR_RETURN(query::GlavMapping glav,
                              query::GlavMapping::Parse(line, pending->name));
      REVERE_RETURN_IF_ERROR(network->AddMapping(
          PeerMapping{std::move(glav), pending->source_peer,
                      pending->target_peer, pending->bidirectional}));
      pending.reset();
      continue;
    }

    std::vector<std::string> fields = SplitAny(line, " \t");
    const std::string& kind = fields[0];
    if (kind == "peer") {
      if (fields.size() != 2) return fail("peer needs a name");
      REVERE_RETURN_IF_ERROR(network->AddPeer(fields[1]).status());
    } else if (kind == "stored") {
      if (fields.size() < 4) {
        return fail("stored needs peer, relation, and columns");
      }
      storage::TableSchema schema = storage::TableSchema::AllStrings(
          fields[2],
          std::vector<std::string>(fields.begin() + 3, fields.end()));
      REVERE_RETURN_IF_ERROR(
          network->AddStoredRelation(fields[1], std::move(schema)).status());
    } else if (kind == "row") {
      if (fields.size() < 3) return fail("row needs peer and relation");
      std::string qualified = QualifiedName(fields[1], fields[2]);
      REVERE_ASSIGN_OR_RETURN(storage::Table * table,
                              network->mutable_storage()->GetTable(
                                  qualified));
      // Values follow after "<peer> <relation> ", separated by " | ".
      size_t peer_pos = line.find(fields[1], 3);  // after "row"
      size_t rel_pos = line.find(fields[2], peer_pos + fields[1].size());
      size_t prefix = rel_pos + fields[2].size();
      std::string values_part(Trim(line.substr(prefix)));
      storage::Row row;
      if (!values_part.empty()) {
        for (const std::string& v : Split(values_part, '|')) {
          row.push_back(storage::Value(std::string(Trim(v))));
        }
      }
      REVERE_RETURN_IF_ERROR(table->Insert(std::move(row)));
    } else if (kind == "mapping") {
      if (fields.size() < 4) {
        return fail("mapping needs name, source peer, target peer");
      }
      PendingMapping p;
      p.name = fields[1];
      p.source_peer = fields[2];
      p.target_peer = fields[3];
      p.bidirectional = fields.size() > 4 && fields[4] == "bidirectional";
      pending = std::move(p);
    } else if (kind == "fault") {
      if (fields.size() < 3) return fail("fault needs peer and mode");
      if (faults == nullptr) {
        return fail("fault directive but no FaultInjector supplied");
      }
      if (!network->HasPeer(fields[1])) {
        return fail("fault names unknown peer '" + fields[1] + "'");
      }
      const std::string& mode = fields[2];
      // down takes no parameter; flaky/slow take one numeric parameter.
      if (mode == "down") {
        if (fields.size() != 3) return fail("fault ... down takes no value");
        faults->SetDown(fields[1]);
        continue;
      }
      if (fields.size() != 4) {
        return fail("fault ... " + mode + " needs a numeric value");
      }
      char* end = nullptr;
      double value = std::strtod(fields[3].c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return fail("bad fault value '" + fields[3] + "'");
      }
      if (mode == "flaky") {
        faults->SetFlaky(fields[1], value);
      } else if (mode == "slow") {
        faults->SetSlow(fields[1], value);
      } else {
        return fail("unknown fault mode '" + mode + "'");
      }
    } else if (kind == "topology") {
      // Declarative overlay-shape metadata (ISSUE 9): validated here,
      // stored on the network as a hint, round-tripped by Save.
      if (fields.size() != 2 && fields.size() != 3) {
        return fail("topology needs a shape and an optional peer count");
      }
      const std::string& shape = fields[1];
      if (shape != "chain" && shape != "star" && shape != "random" &&
          shape != "small_world" && shape != "scale_free") {
        return fail("unknown topology '" + shape +
                    "' (chain|star|random|small_world|scale_free)");
      }
      size_t declared = 0;
      if (fields.size() == 3) {
        char* end = nullptr;
        unsigned long long value =  // NOLINT(runtime/int) — strtoull API
            std::strtoull(fields[2].c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || fields[2].empty() ||
            fields[2][0] == '-' || value == 0) {
          return fail("bad topology peer count '" + fields[2] + "'");
        }
        declared = static_cast<size_t>(value);
      }
      network->set_topology_hint(shape, declared);
    } else if (kind == "plan_cache") {
      if (fields.size() != 2) return fail("plan_cache needs a capacity");
      char* end = nullptr;
      unsigned long long value =  // NOLINT(runtime/int) — strtoull API
          std::strtoull(fields[1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || fields[1].empty() ||
          fields[1][0] == '-') {
        return fail("bad plan_cache capacity '" + fields[1] + "'");
      }
      network->SetPlanCacheCapacity(static_cast<size_t>(value));
    } else if (kind == "metrics") {
      if (fields.size() != 2 ||
          (fields[1] != "on" && fields[1] != "off")) {
        return fail("metrics needs 'on' or 'off'");
      }
      network->set_metrics_enabled(fields[1] == "on");
    } else {
      return fail("unknown directive '" + kind + "'");
    }
  }
  if (pending.has_value()) {
    return Status::ParseError("mapping '" + pending->name +
                              "' is missing its GLAV line");
  }
  return Status::Ok();
}

std::string SaveNetworkConfig(const PdmsNetwork& network,
                              const FaultInjector* faults) {
  std::string out = "# REVERE network config v1\n";
  if (network.plan_cache_capacity() != kDefaultPlanCacheCapacity) {
    out += "plan_cache " + std::to_string(network.plan_cache_capacity()) +
           "\n";
  }
  if (!network.metrics_enabled()) out += "metrics off\n";
  if (!network.topology_hint().empty()) {
    out += "topology " + network.topology_hint();
    if (network.declared_peers() > 0) {
      out += " " + std::to_string(network.declared_peers());
    }
    out += "\n";
  }
  for (const auto& name : network.PeerNames()) {
    out += "peer " + name + "\n";
  }
  for (const auto& table_name : network.storage().TableNames()) {
    auto table = network.storage().GetTable(table_name);
    if (!table.ok()) continue;
    auto [peer, relation] = SplitQualifiedName(table_name);
    out += "stored " + peer + " " + relation;
    for (const auto& col : table.value()->schema().columns()) {
      out += " " + col.name;
    }
    out += "\n";
    // Serialize from one pinned snapshot per table: a save racing a
    // writer emits a complete point-in-time version, never a torn row
    // (the pre-fix code iterated rows() unlocked).
    auto snap = table.value()->Snapshot();
    for (size_t r = 0; r < snap->size(); ++r) {
      const storage::Row& row = snap->row(r);
      out += "row " + peer + " " + relation + " ";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += " | ";
        out += row[i].ToString();
      }
      out += "\n";
    }
  }
  for (const auto& m : network.mappings()) {
    out += "mapping " + m.glav.name + " " + m.source_peer + " " +
           m.target_peer + (m.bidirectional ? " bidirectional" : "") + "\n";
    out += "  " + m.glav.source.ToString() + " => " +
           m.glav.target.ToString() + "\n";
  }
  if (faults != nullptr) {
    for (const auto& peer : faults->FaultyPeers()) {
      PeerFault fault = faults->GetFault(peer);
      out += "fault " + peer + " " + FaultModeToString(fault.mode);
      if (fault.mode == FaultMode::kFlaky) {
        out += " " + std::to_string(fault.failure_probability);
      } else if (fault.mode == FaultMode::kSlow) {
        out += " " + std::to_string(fault.extra_latency_ms);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace revere::piazza
