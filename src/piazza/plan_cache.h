#ifndef REVERE_PIAZZA_PLAN_CACHE_H_
#define REVERE_PIAZZA_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/piazza/reformulation.h"
#include "src/query/cq.h"

namespace revere::piazza {

/// Default PdmsNetwork plan-cache capacity (entries); override per
/// deployment with the `plan_cache <capacity>` network-config directive
/// or PdmsNetwork::SetPlanCacheCapacity.
inline constexpr size_t kDefaultPlanCacheCapacity = 1024;

/// One cached reformulation: the full rewriting set `Reformulate`
/// produced for a canonical (query, options) key, plus the stats of the
/// run that computed it, so cache hits can report real search counters
/// instead of zeros. Immutable once published (shared across threads) —
/// except `valid_through`, a monotone validation memo.
struct CachedPlan {
  std::vector<query::ConjunctiveQuery> rewritings;
  ReformulationStats stats;

  // ---- Scoped invalidation (ISSUE 9) --------------------------------

  /// Every peer this plan's search touched (root query + every expanded
  /// node), with the per-peer generation stamp read when the search
  /// started. A plan is scope-valid while each touched peer still
  /// carries its recorded stamp — mutations at peers outside this set
  /// leave the plan servable. Peers unknown at build time are recorded
  /// at stamp 0, so they invalidate the plan if they later join.
  std::vector<std::pair<std::string, uint64_t>> touched;
  /// Global mutation-clock value when the search ran.
  uint64_t built_generation = 0;
  /// Validation memo: the highest global generation at which the
  /// per-peer scope check is known to have passed. When the network's
  /// clock still reads this value the O(|touched|) re-check is skipped
  /// — warm hits on a 1k-peer network stay O(1). Atomic (and mutable
  /// through shared_ptr<const>) because concurrent lookups race to
  /// advance it; monotonicity makes any winner correct.
  mutable std::atomic<uint64_t> valid_through{0};

  CachedPlan() = default;
  CachedPlan(const CachedPlan&) = delete;
  CachedPlan& operator=(const CachedPlan&) = delete;
};

/// A bounded, sharded LRU cache for reformulation plans.
///
/// Rewritings depend only on the query, the reformulation options, and
/// the network's mappings/topology — the answering-queries-using-views
/// observation that makes them perfect cache candidates. Staleness is
/// handled by a *generation* number: the owning network bumps its
/// generation whenever mappings, stored relations, views, or topology
/// change, and an entry stored under an older generation is treated as
/// a miss (and purged lazily), so no stale plan is ever served.
///
/// Concurrency: shards are independent, each guarded by its own
/// std::shared_mutex. Lookups take the shared lock (many concurrent
/// readers on the hot serving path) and record recency through a
/// per-entry atomic tick; only inserts take the exclusive lock. Plans
/// are handed out as shared_ptr<const CachedPlan>, so a reader keeps a
/// consistent plan even if the entry is evicted mid-use.
///
/// Eviction: least-recently-used within the insert's shard, stale
/// generations first. Capacity is split evenly across shards (per-shard
/// ceil(capacity / shards)), so the bound is approximate by at most
/// shards-1 entries; construct with `shards = 1` for exact LRU
/// semantics (tests do).
class PlanCache {
 public:
  /// Cumulative counters plus a point-in-time size — a thin per-cache
  /// view over the same events the process-wide obs::MetricsRegistry
  /// sees as `plan_cache.hits` / `.misses` / `.evictions` /
  /// `.insertions` (ISSUE 4). The registry aggregates across every
  /// PlanCache in the process; this struct stays per-instance, which is
  /// what tests and per-network benches want.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
    size_t entries = 0;
  };

  /// `capacity` = 0 disables the cache (every lookup misses, inserts
  /// are dropped). `shards` is clamped to [1, capacity] when nonzero.
  explicit PlanCache(size_t capacity = kDefaultPlanCacheCapacity,
                     size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan stored under `key` at `generation`, or nullptr on
  /// a miss (absent, stale generation, rejected by `validator`, or
  /// cache disabled). `fingerprint` must be a hash of `key` (it selects
  /// the shard, so the same key must always carry the same
  /// fingerprint).
  ///
  /// `validator`, when set, runs under the shard's shared lock on a
  /// generation-matching entry; returning false turns the lookup into a
  /// counted miss (scoped invalidation passes a per-peer stamp check
  /// here with generation pinned to 0, so the entry's own generation
  /// field stays inert and freshness is the validator's call alone).
  std::shared_ptr<const CachedPlan> Lookup(
      uint64_t fingerprint, const std::string& key, uint64_t generation,
      const std::function<bool(const CachedPlan&)>& validator = nullptr);

  /// Stores `plan` under `key` at `generation`, evicting stale-then-LRU
  /// entries to stay within the shard's capacity. Re-inserting an
  /// existing key replaces its plan.
  void Insert(uint64_t fingerprint, std::string key, uint64_t generation,
              std::shared_ptr<const CachedPlan> plan);

  /// Drops every entry (counters survive).
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

  Stats GetStats() const;

  /// Gates mirroring into the process-wide registry (the per-instance
  /// counters behind GetStats always run). PdmsNetwork forwards its
  /// `metrics on|off` deployment knob here.
  void SetMetricsEnabled(bool enabled) {
    metrics_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool metrics_enabled() const {
    return metrics_enabled_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    uint64_t generation = 0;
    /// Recency tick; atomic so Lookup can bump it under the shared lock.
    std::atomic<uint64_t> last_used{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    /// unique_ptr keeps Entry (with its atomic) stable across rehash.
    std::unordered_map<std::string, std::unique_ptr<Entry>> entries;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return *shards_[fingerprint % shards_.size()];
  }

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  /// Registry mirror gate + handles (resolved once at construction).
  std::atomic<bool> metrics_enabled_{true};
  obs::Counter* registry_hits_ = nullptr;
  obs::Counter* registry_misses_ = nullptr;
  obs::Counter* registry_evictions_ = nullptr;
  obs::Counter* registry_insertions_ = nullptr;
};

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_PLAN_CACHE_H_
