#include "src/piazza/pdms.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <set>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/query/containment.h"
#include "src/query/evaluate.h"

namespace revere::piazza {

namespace {

using query::Atom;
using query::ConjunctiveQuery;
using query::QTerm;
using query::Substitution;

/// Canonical form of a CQ for duplicate pruning: α-renamed via
/// query::Canonicalize, then body atoms sorted (reformulation dedup
/// wants atom order ignored, unlike the order-preserving plan-cache
/// key).
std::string CanonicalKey(const ConjunctiveQuery& q) {
  ConjunctiveQuery n = query::Canonicalize(q).query;
  std::vector<std::string> atoms;
  atoms.reserve(n.body().size());
  for (const auto& a : n.body()) atoms.push_back(a.ToString());
  std::sort(atoms.begin(), atoms.end());
  std::string key = n.HeadAtom().ToString() + "|";
  for (const auto& a : atoms) {
    key += a;
    key += ";";
  }
  return key;
}

/// Plan-cache key: the order-preserving canonical query text plus every
/// option that shapes the rewriting set. Two α-equivalent queries with
/// equal options share one entry; anything else never collides (the
/// full text is compared, not just the fingerprint). Route-mode keys
/// additionally carry the cost budget, the redundancy knob, and the
/// route table's epoch (bulk cost changes re-key; per-contact EWMA
/// drift deliberately does not, so warm keys stay stable under
/// feedback). Legacy-mode keys keep the exact pre-route format.
std::string PlanKeyText(const ConjunctiveQuery& query,
                        const ReformulationOptions& options,
                        uint64_t route_epoch) {
  std::string key = query::Canonicalize(query).text;
  key += "|d";
  key += std::to_string(options.max_depth);
  key += "|r";
  key += std::to_string(options.max_rewritings);
  key += "|f";
  key += options.prune_duplicates ? '1' : '0';
  key += options.prune_unreachable ? '1' : '0';
  key += options.prune_contained ? '1' : '0';
  if (options.use_route_search) {
    key += "|route";
    key += options.prune_redundant_paths ? '1' : '0';
    key += "|b";
    key += std::to_string(options.max_path_cost);
    key += "|e";
    key += std::to_string(route_epoch);
  }
  return key;
}

struct WorkItem {
  ConjunctiveQuery query;
  int depth = 0;
};

/// Route-mode search node: a rewriting-in-progress plus the cost and
/// peer path accumulated reaching it. Ordered by (cost, seq) in the
/// best-first queue; `seq` is the monotone push order, so with uniform
/// edge costs the pop order is exactly the legacy BFS's FIFO order —
/// the invariant the `pruned_vs_exhaustive` fuzz oracle leans on.
struct RouteItem {
  ConjunctiveQuery query;
  int depth = 0;
  double cost = 0.0;
  uint64_t seq = 0;
  /// Peers entered along this path (mapping applications), for
  /// cycle elimination under prune_redundant_paths.
  std::vector<std::string> peer_path;
};

/// True when the caller's end-to-end deadline has already passed. The
/// default (time_point::max()) short-circuits to false without reading
/// the clock, so the no-deadline hot path pays one comparison.
bool DeadlineExpired(const NetworkCostModel& cost) {
  return cost.deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= cost.deadline;
}

/// Contacts `peer` through the fault injector with bounded retries and
/// exponential backoff, charging every attempt, timeout, and backoff
/// wait to the simulated clock in `stats`. Returns the last failure
/// when the peer stays unreachable. With a tracer, each retry (attempt
/// beyond the first) opens a `retry` span under `parent` carrying its
/// backoff and simulated elapsed time; the RNG draw sequence — and so
/// every answer — is identical with tracing on or off.
///
/// Overload safety (ISSUE 6), all default-off: an open circuit breaker
/// skips the contact entirely (no injector call, no RNG draw — the
/// point is to stop paying for dead peers); the global retry budget
/// gates each retry; the end-to-end deadline stops the retry loop; and
/// every real outcome feeds the peer's breaker window.
Status ContactPeerWithRetry(FaultInjector* faults, const std::string& peer,
                            const NetworkCostModel& cost,
                            ExecutionStats* stats, obs::Tracer* tracer,
                            uint64_t parent) {
  PeerBreaker* breaker =
      cost.breakers != nullptr ? cost.breakers->Get(peer) : nullptr;
  if (breaker != nullptr && !breaker->Allow()) {
    ++stats->completeness.breaker_skips;
    return Status::Unavailable("circuit breaker open for peer '" + peer +
                               "'");
  }
  int max_attempts = std::max(1, cost.retry.max_attempts);
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    obs::Span retry_span;
    if (attempt > 0) {
      if (DeadlineExpired(cost)) {
        return Status::DeadlineExceeded("deadline expired retrying peer '" +
                                        peer + "'");
      }
      if (cost.retry_budget != nullptr && !cost.retry_budget->TryAcquire()) {
        ++stats->completeness.retries_denied;
        return last;  // budget exhausted: no retry storm, surface the
                      // last real failure
      }
      double backoff = cost.retry.BackoffMs(peer, attempt);
      stats->completeness.backoff_ms += backoff;
      stats->simulated_network_ms += backoff;
      ++stats->completeness.retries_attempted;
      retry_span = obs::StartSpan(tracer, "retry", parent);
      retry_span.AddAttr("attempt", attempt);
      retry_span.AddAttr("backoff_simulated_ms", backoff);
    }
    ContactOutcome outcome = faults->Contact(peer, cost.per_peer_round_trip_ms,
                                             cost.retry.deadline_ms);
    stats->simulated_network_ms += outcome.elapsed_ms;
    if (cost.route_feedback != nullptr) {
      // Live routing signal (ISSUE 9): every real contact outcome folds
      // into the route table's latency/reachability EWMAs.
      cost.route_feedback->ObservedContact(peer, outcome.elapsed_ms,
                                           outcome.status.ok());
    }
    if (retry_span.active()) {
      retry_span.AddAttr("elapsed_simulated_ms", outcome.elapsed_ms);
      retry_span.AddAttr("ok", outcome.status.ok() ? 1 : 0);
    }
    if (outcome.status.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
      if (cost.retry_budget != nullptr) cost.retry_budget->RecordSuccess();
      return Status::Ok();
    }
    if (breaker != nullptr) breaker->RecordFailure();
    ++stats->completeness.contacts_failed;
    last = outcome.status;
  }
  return last;
}

}  // namespace

Result<Peer*> PdmsNetwork::AddPeer(const std::string& name) {
  if (peers_.count(name) > 0) {
    return Status::AlreadyExists("peer '" + name + "' already in network");
  }
  auto peer = std::make_unique<Peer>(name);
  Peer* ptr = peer.get();
  peers_[name] = std::move(peer);
  // Scoped invalidation: a join moves the new peer's stamp off 0, so
  // only plans that recorded it as unknown (stamp 0) re-plan; every
  // other warm plan survives — the 1k-peer churn win.
  InvalidatePlansTouching({name});
  return ptr;
}

Result<Peer*> PdmsNetwork::GetPeer(const std::string& name) {
  auto it = peers_.find(name);
  if (it == peers_.end()) return Status::NotFound("no peer '" + name + "'");
  return it->second.get();
}

bool PdmsNetwork::HasPeer(const std::string& name) const {
  return peers_.count(name) > 0;
}

std::vector<std::string> PdmsNetwork::PeerNames() const {
  std::vector<std::string> names;
  names.reserve(peers_.size());
  for (const auto& [name, peer] : peers_) names.push_back(name);
  return names;
}

Result<storage::Table*> PdmsNetwork::AddStoredRelation(
    const std::string& peer, storage::TableSchema schema) {
  auto peer_it = peers_.find(peer);
  if (peer_it == peers_.end()) {
    return Status::NotFound("no peer '" + peer + "'");
  }
  std::string unqualified = schema.name();
  storage::TableSchema qualified(QualifiedName(peer, unqualified),
                                 schema.columns());
  REVERE_ASSIGN_OR_RETURN(storage::Table * table,
                          storage_.CreateTable(std::move(qualified)));
  peer_it->second->NoteStoredRelation(unqualified);
  std::map<std::string, bool> before = productive_;
  RecomputeProductive();
  std::set<std::string> touched = ProductivityDiffPeers(before);
  touched.insert(peer);
  InvalidatePlansTouching(touched);
  return table;
}

Status PdmsNetwork::AddMapping(PeerMapping mapping) {
  REVERE_RETURN_IF_ERROR(mapping.glav.Validate());
  if (!HasPeer(mapping.source_peer)) {
    return Status::NotFound("no peer '" + mapping.source_peer + "'");
  }
  if (!HasPeer(mapping.target_peer)) {
    return Status::NotFound("no peer '" + mapping.target_peer + "'");
  }
  mappings_.push_back(std::move(mapping));
  const PeerMapping& added = mappings_.back();
  // Route-mode expansion index: a forward application rewrites an atom
  // matching any target-body relation; a backward application (equality
  // mappings only) rewrites any source-body relation. One entry per
  // distinct relation per direction, appended in mapping order so the
  // indexed expansion enumerates candidates in exactly the order the
  // legacy all-mappings scan does.
  size_t idx = mappings_.size() - 1;
  std::set<std::string> fwd_rels;
  for (const auto& a : added.glav.target.body()) {
    if (fwd_rels.insert(a.relation).second) {
      mapping_index_[a.relation].push_back(MappingUse{idx, true});
    }
  }
  if (added.bidirectional) {
    std::set<std::string> bwd_rels;
    for (const auto& a : added.glav.source.body()) {
      if (bwd_rels.insert(a.relation).second) {
        mapping_index_[a.relation].push_back(MappingUse{idx, false});
      }
    }
  }
  std::map<std::string, bool> before = productive_;
  RecomputeProductive();
  std::set<std::string> touched = ProductivityDiffPeers(before);
  touched.insert(added.source_peer);
  touched.insert(added.target_peer);
  InvalidatePlansTouching(touched);
  return Status::Ok();
}

void PdmsNetwork::InvalidatePlansTouching(const std::set<std::string>& peers) {
  {
    std::unique_lock<std::shared_mutex> lock(gen_mu_);
    for (const auto& p : peers) ++peer_generations_[p];
  }
  InvalidatePlans();  // the mutation clock always moves
}

std::set<std::string> PdmsNetwork::ProductivityDiffPeers(
    const std::map<std::string, bool>& before) const {
  std::set<std::string> peers;
  auto note = [&peers](const std::string& relation) {
    auto [peer, rel] = SplitQualifiedName(relation);
    if (!peer.empty()) peers.insert(peer);
  };
  for (const auto& [relation, productive] : productive_) {
    auto it = before.find(relation);
    if (it == before.end() || it->second != productive) note(relation);
  }
  for (const auto& [relation, productive] : before) {
    if (productive_.find(relation) == productive_.end()) note(relation);
  }
  return peers;
}

uint64_t PdmsNetwork::peer_generation(const std::string& peer) const {
  std::shared_lock<std::shared_mutex> lock(gen_mu_);
  auto it = peer_generations_.find(peer);
  return it == peer_generations_.end() ? 0 : it->second;
}

void PdmsNetwork::set_scoped_invalidation(bool enabled) {
  bool was = scoped_invalidation_.exchange(enabled, std::memory_order_relaxed);
  // Entries written in one mode carry stamps the other mode cannot
  // interpret (scoped pins the entry generation to 0); drop them.
  if (was != enabled) plan_cache_->Clear();
}

void PdmsNetwork::RecomputeProductive() {
  productive_.clear();
  for (const auto& name : storage_.TableNames()) productive_[name] = true;
  // Fixpoint: a relation R is productive when some mapping can rewrite
  // an R-atom into a source body whose relations are all productive.
  bool changed = true;
  auto body_productive = [this](const ConjunctiveQuery& q) {
    for (const auto& a : q.body()) {
      auto it = productive_.find(a.relation);
      if (it == productive_.end() || !it->second) return false;
    }
    return true;
  };
  while (changed) {
    changed = false;
    for (const auto& m : mappings_) {
      // Forward use: target atoms rewrite into the source body.
      if (body_productive(m.glav.source)) {
        for (const auto& a : m.glav.target.body()) {
          if (!productive_[a.relation]) {
            productive_[a.relation] = true;
            changed = true;
          }
        }
      }
      // Backward use for equality mappings.
      if (m.bidirectional && body_productive(m.glav.target)) {
        for (const auto& a : m.glav.source.body()) {
          if (!productive_[a.relation]) {
            productive_[a.relation] = true;
            changed = true;
          }
        }
      }
    }
  }
}

namespace {

/// Attempts to rewrite atom `goal_idx` of `q` using one (source→target)
/// mapping application: unify the goal with a target-body atom, check
/// that needed variables are exported through the target head, and
/// splice in the instantiated source body. Appends each successful
/// rewriting to `out`.
void ApplyMappingToGoal(const ConjunctiveQuery& q, size_t goal_idx,
                        const ConjunctiveQuery& map_source,
                        const ConjunctiveQuery& map_target, int fresh_id,
                        std::vector<ConjunctiveQuery>* out) {
  const Atom& goal = q.body()[goal_idx];
  std::string prefix = "_m" + std::to_string(fresh_id) + "_";
  ConjunctiveQuery target = map_target.RenameVars(prefix + "t_");
  ConjunctiveQuery source = map_source.RenameVars(prefix + "s_");

  // Query variables that must survive: head vars and vars shared with
  // other atoms.
  std::set<std::string> needed = q.HeadVars();
  for (size_t i = 0; i < q.body().size(); ++i) {
    if (i == goal_idx) continue;
    for (const auto& t : q.body()[i].args) {
      if (t.is_var()) needed.insert(t.var());
    }
  }
  std::set<std::string> target_head_vars = target.HeadVars();

  for (const auto& target_atom : target.body()) {
    Substitution sub;
    if (!query::UnifyAtoms(target_atom, goal, &sub)) continue;
    sub = query::ResolveSubstitution(sub);

    // Export check: a goal variable the query still needs must bind a
    // *distinguished* target variable, else its value is lost.
    bool exportable = true;
    for (size_t i = 0; i < goal.args.size() && exportable; ++i) {
      const QTerm& goal_term = goal.args[i];
      if (!goal_term.is_var() || needed.count(goal_term.var()) == 0) {
        continue;
      }
      const QTerm& raw = target_atom.args[i];
      if (!raw.is_var()) continue;  // constant position: value is known
      if (target_head_vars.count(raw.var()) == 0) exportable = false;
    }
    if (!exportable) continue;

    // Head correspondence: target.head[j] -> source.head[j].
    Substitution source_binding;   // source head var -> query-level term
    Substitution query_binding;    // query var -> constant (specialization)
    bool consistent = true;
    int fresh_counter = 0;
    for (size_t j = 0; j < target.head().size() && consistent; ++j) {
      QTerm exported = query::Apply(sub, target.head()[j]);
      if (exported.is_var() && exported.var().rfind(prefix, 0) == 0) {
        // Unconstrained by the goal: fresh variable on the query side.
        exported = QTerm::Var(prefix + "f" +
                              std::to_string(fresh_counter++));
      }
      const QTerm& source_head = source.head()[j];
      if (source_head.is_var()) {
        auto it = source_binding.find(source_head.var());
        if (it == source_binding.end()) {
          source_binding[source_head.var()] = exported;
        } else if (!(it->second == exported)) {
          // Repeated source head var must export one value; equate by
          // substituting one query term for the other when possible.
          if (exported.is_var()) {
            query_binding[exported.var()] = it->second;
          } else if (it->second.is_var()) {
            query_binding[it->second.var()] = exported;
          } else {
            consistent = false;
          }
        }
      } else {
        // Source head constant: the exported term must equal it.
        if (exported.is_var()) {
          query_binding[exported.var()] = source_head;
        } else if (!(exported == source_head)) {
          consistent = false;
        }
      }
    }
    if (!consistent) continue;

    // Also apply any bindings UnifyAtoms imposed on query variables
    // (target-side constants specializing the goal).
    for (const auto& [var, term] : sub) {
      if (var.rfind(prefix, 0) != 0) query_binding[var] = term;
    }

    std::vector<Atom> new_body;
    new_body.reserve(q.body().size() - 1 + source.body().size());
    for (size_t i = 0; i < q.body().size(); ++i) {
      if (i == goal_idx) {
        for (const auto& a : source.body()) {
          new_body.push_back(query::Apply(source_binding, a));
        }
      } else {
        new_body.push_back(q.body()[i]);
      }
    }
    ConjunctiveQuery rewritten(q.name(), q.head(), new_body);
    if (!query_binding.empty()) {
      rewritten = rewritten.Substitute(query_binding);
    }
    // Dedupe atoms introduced twice.
    std::vector<Atom> dedup;
    for (const auto& a : rewritten.body()) {
      if (std::find(dedup.begin(), dedup.end(), a) == dedup.end()) {
        dedup.push_back(a);
      }
    }
    out->push_back(
        ConjunctiveQuery(rewritten.name(), rewritten.head(), dedup));
  }
}

}  // namespace

Result<size_t> PdmsNetwork::RegisterView(const std::string& peer,
                                         query::ConjunctiveQuery definition) {
  if (!HasPeer(peer)) return Status::NotFound("no peer '" + peer + "'");
  RegisteredView entry{peer, MaterializedView(std::move(definition))};
  REVERE_RETURN_IF_ERROR(entry.view.Recompute(storage_));
  views_.push_back(std::move(entry));
  InvalidatePlansTouching({peer});
  return views_.size() - 1;
}

Result<const MaterializedView*> PdmsNetwork::GetView(size_t index) const {
  if (index >= views_.size()) {
    return Status::OutOfRange("no view #" + std::to_string(index));
  }
  return &views_[index].view;
}

Result<PdmsNetwork::PropagationStats> PdmsNetwork::PropagateUpdategram(
    const Updategram& update) {
  PropagationStats stats;
  REVERE_RETURN_IF_ERROR(ApplyToBase(&storage_, update));
  for (auto& entry : views_) {
    if (!entry.view.DependsOn(update.relation)) continue;
    ++stats.views_touched;
    RefreshCostEstimate estimate =
        EstimateRefreshCost(storage_, entry.view.definition(), update);
    if (estimate.choice == RefreshChoice::kIncremental) {
      REVERE_RETURN_IF_ERROR(entry.view.ApplyUpdategram(storage_, update));
      ++stats.incremental_refreshes;
    } else {
      REVERE_RETURN_IF_ERROR(entry.view.Recompute(storage_));
      ++stats.full_recomputes;
    }
  }
  return stats;
}

Status PdmsNetwork::AddXmlMapping(const std::string& source_peer,
                                  const std::string& target_peer,
                                  XmlMapping mapping,
                                  std::string source_doc_name) {
  if (!HasPeer(source_peer)) {
    return Status::NotFound("no peer '" + source_peer + "'");
  }
  if (!HasPeer(target_peer)) {
    return Status::NotFound("no peer '" + target_peer + "'");
  }
  xml_edges_.push_back(XmlEdge{source_peer, target_peer, std::move(mapping),
                               std::move(source_doc_name)});
  InvalidatePlansTouching({source_peer, target_peer});
  return Status::Ok();
}

Result<std::unique_ptr<xml::XmlNode>> PdmsNetwork::TranslateDocument(
    const std::string& source_peer, const std::string& target_peer,
    const xml::XmlNode& input) const {
  if (source_peer == target_peer) return input.Clone();
  // BFS over directed XML mapping edges for the shortest hop path.
  std::map<std::string, size_t> via_edge;  // peer -> incoming edge index
  std::deque<std::string> frontier{source_peer};
  std::set<std::string> visited{source_peer};
  while (!frontier.empty() && visited.count(target_peer) == 0) {
    std::string current = frontier.front();
    frontier.pop_front();
    for (size_t i = 0; i < xml_edges_.size(); ++i) {
      if (xml_edges_[i].source_peer != current) continue;
      const std::string& next = xml_edges_[i].target_peer;
      if (visited.insert(next).second) {
        via_edge[next] = i;
        frontier.push_back(next);
      }
    }
  }
  if (visited.count(target_peer) == 0) {
    return Status::NotFound("no XML mapping path from '" + source_peer +
                            "' to '" + target_peer + "'");
  }
  // Reconstruct the path backwards, then run the chain.
  std::vector<size_t> path;
  for (std::string at = target_peer; at != source_peer;
       at = xml_edges_[via_edge[at]].source_peer) {
    path.push_back(via_edge[at]);
  }
  std::reverse(path.begin(), path.end());
  XmlMappingChain chain;
  for (size_t edge : path) {
    // Re-parse the template to copy the move-only mapping.
    chain.AddHop(xml_edges_[edge].mapping.CloneMapping(),
                 xml_edges_[edge].source_doc_name);
  }
  REVERE_ASSIGN_OR_RETURN(std::unique_ptr<xml::XmlNode> result,
                          chain.Translate(input));
  // When the target peer declares an XML schema (Figure 3 DTD), the
  // translated document must conform to it.
  auto peer_it = peers_.find(target_peer);
  if (peer_it != peers_.end() &&
      !peer_it->second->xml_schema().root().empty()) {
    REVERE_RETURN_IF_ERROR(peer_it->second->xml_schema().Validate(*result));
  }
  return result;
}

void PdmsNetwork::SetPlanCacheCapacity(size_t capacity) {
  plan_cache_ = std::make_unique<PlanCache>(capacity);
  plan_cache_->SetMetricsEnabled(metrics_enabled());
}

/// The uncached transitive-closure search, plus the cache consultation
/// wrapped around it. The plan depends only on (canonical query,
/// options, mappings/topology, and — in route mode — the route table's
/// epoch), so a hit is exact: the same rewriting vector the search
/// would produce, in the same order — and the stats of the run that
/// produced it, so instrumentation never reads zeros on the warm path.
///
/// Two search strategies share the emission/pruning skeleton:
///  - legacy (default): breadth-first FIFO over a linear scan of every
///    mapping at every node — kept bit-for-bit so pre-route behavior is
///    reproducible (`use_route_search = false`);
///  - route mode (ISSUE 9): best-first by accumulated RouteTable path
///    cost through the relation→mapping index, with an optional cost
///    budget (`max_path_cost` → pruned_cost) and redundant-path
///    elimination (`prune_redundant_paths` → pruned_redundant). With
///    uniform costs and no budget its pop order equals the FIFO order,
///    so the rewriting sets coincide (fuzz oracle 11).
///
/// Scoped invalidation (default): plans record every peer their search
/// touched with that peer's stamp; Lookup revalidates through a scope
/// check instead of the global generation, so structural changes at
/// untouched peers leave warm plans servable. Structural mutations are
/// externally synchronized with queries (the repo-wide contract — the
/// mapping list itself is not locked); concurrent *answers* are fine.
Result<std::shared_ptr<const CachedPlan>> PdmsNetwork::ReformulateCached(
    const ConjunctiveQuery& query, const ReformulationOptions& options,
    ReformulationStats* stats, obs::Tracer* tracer,
    uint64_t parent_span) const {
  obs::Span reformulate_span =
      obs::StartSpan(tracer, "reformulate", parent_span);
  const bool use_cache =
      options.use_plan_cache && plan_cache_->capacity() > 0;
  const bool scoped = scoped_invalidation();
  std::string key;
  uint64_t fingerprint = 0;
  uint64_t generation = 0;
  if (use_cache) {
    obs::Span cache_span =
        obs::StartSpan(tracer, "plan_cache", reformulate_span.id());
    key = PlanKeyText(query, options, route_table_->epoch());
    fingerprint = Fnv1a64(key);
    std::function<bool(const CachedPlan&)> validator;
    if (scoped) {
      // Scope check, O(1) warm: the mutation clock hasn't moved past
      // the last validation → still good. Otherwise compare each
      // touched peer's recorded stamp; all equal → advance the memo.
      validator = [this](const CachedPlan& plan) {
        uint64_t now = generation_.load(std::memory_order_acquire);
        if (plan.valid_through.load(std::memory_order_relaxed) >= now) {
          return true;
        }
        {
          std::shared_lock<std::shared_mutex> lock(gen_mu_);
          for (const auto& [peer, stamp] : plan.touched) {
            auto it = peer_generations_.find(peer);
            uint64_t current =
                it == peer_generations_.end() ? 0 : it->second;
            if (current != stamp) return false;
          }
        }
        uint64_t prev = plan.valid_through.load(std::memory_order_relaxed);
        while (prev < now && !plan.valid_through.compare_exchange_weak(
                                 prev, now, std::memory_order_relaxed)) {
        }
        return true;
      };
    } else {
      generation = generation_.load(std::memory_order_relaxed);
    }
    if (std::shared_ptr<const CachedPlan> plan =
            plan_cache_->Lookup(fingerprint, key, generation, validator)) {
      cache_span.AddAttr("hit", 1);
      reformulate_span.AddAttr("rewritings", plan->rewritings.size());
      if (stats != nullptr) {
        *stats = plan->stats;
        stats->plan_cache_hits = 1;
      }
      return plan;
    }
    cache_span.AddAttr("hit", 0);
  }
  // Peers this search reads, for the plan's invalidation scope.
  const bool record_touched = use_cache && scoped;
  std::set<std::string> touched_peers;
  auto touch = [&](const ConjunctiveQuery& q) {
    if (!record_touched) return;
    for (const auto& a : q.body()) {
      auto [peer, rel] = SplitQualifiedName(a.relation);
      if (!peer.empty()) touched_peers.insert(peer);
    }
  };

  ReformulationStats local;
  std::vector<ConjunctiveQuery> results;
  std::set<std::string> seen;
  seen.insert(CanonicalKey(query));
  int fresh_id = 0;

  // Shared emission/pruning skeleton for both strategies. Returns false
  // when the node is dead (pruned or past its depth); `emitted` is set
  // when the node produced a rewriting.
  auto prune_unreachable_node = [&](const ConjunctiveQuery& q) {
    if (!options.prune_unreachable) return false;
    for (const auto& a : q.body()) {
      if (IsStored(a.relation)) continue;  // live storage is productive
      auto it = productive_.find(a.relation);
      if (it == productive_.end() || !it->second) return true;
    }
    return false;
  };
  auto is_all_stored = [&](const ConjunctiveQuery& q) {
    for (const auto& a : q.body()) {
      if (!IsStored(a.relation)) return false;
    }
    return true;
  };
  auto contained_in_results = [&](const ConjunctiveQuery& q) {
    if (!options.prune_contained) return false;
    for (const auto& prior : results) {
      if (query::Contains(prior, q)) {
        ++local.pruned_contained;
        return true;
      }
    }
    return false;
  };

  if (!options.use_route_search) {
    // ---- Legacy breadth-first search (pre-route, bit-identical) ----
    std::deque<WorkItem> worklist;
    worklist.push_back({query, 0});
    while (!worklist.empty() && results.size() < options.max_rewritings) {
      WorkItem item = std::move(worklist.front());
      worklist.pop_front();
      ++local.nodes_expanded;
      touch(item.query);

      // Irrelevant-path pruning: some atom can never reach stored data.
      if (prune_unreachable_node(item.query)) {
        ++local.pruned_unreachable;
        continue;
      }

      // A query fully grounded in stored relations is an answerable
      // rewriting — emit it. A peer relation may be stored *and* mapped
      // (every peer in the paper's example both holds courses and
      // imports them), so we keep expanding either way.
      bool all_stored = is_all_stored(item.query);
      if (all_stored && !contained_in_results(item.query)) {
        results.push_back(item.query);
        if (results.size() >= options.max_rewritings) break;
      }
      if (item.depth >= options.max_depth) {
        if (!all_stored) ++local.pruned_depth;
        continue;
      }

      std::vector<ConjunctiveQuery> expansions;
      for (size_t goal_idx = 0; goal_idx < item.query.body().size();
           ++goal_idx) {
        for (const auto& m : mappings_) {
          ApplyMappingToGoal(item.query, goal_idx, m.glav.source,
                             m.glav.target, fresh_id++, &expansions);
          if (m.bidirectional) {
            ApplyMappingToGoal(item.query, goal_idx, m.glav.target,
                               m.glav.source, fresh_id++, &expansions);
          }
        }
      }
      for (auto& e : expansions) {
        std::string ckey = CanonicalKey(e);
        if (options.prune_duplicates) {
          if (!seen.insert(ckey).second) {
            ++local.pruned_duplicates;
            continue;
          }
        }
        worklist.push_back({std::move(e), item.depth + 1});
      }
    }
  } else {
    // ---- Route mode: cost-ordered best-first over the mapping index --
    // Nodes live in a stable arena; the heap orders (cost, seq) where
    // seq is the arena index (== push order), so equal-cost nodes pop
    // FIFO and uniform costs reproduce the legacy BFS order exactly.
    std::deque<RouteItem> arena;
    struct HeapEntry {
      double cost;
      uint64_t seq;
    };
    auto heap_after = [](const HeapEntry& a, const HeapEntry& b) {
      if (a.cost != b.cost) return a.cost > b.cost;
      return a.seq > b.seq;
    };
    std::vector<HeapEntry> heap;
    auto push_node = [&](RouteItem item) {
      item.seq = arena.size();
      heap.push_back(HeapEntry{item.cost, item.seq});
      arena.push_back(std::move(item));
      std::push_heap(heap.begin(), heap.end(), heap_after);
    };
    // Emitted-rewriting fingerprints for redundant-path elimination
    // (only observable with prune_duplicates off — the seen set already
    // guarantees distinct search nodes).
    std::set<std::string> kept_keys;
    RouteItem root;
    root.query = query;
    // Seed the cycle-elimination path with the root's own peers, so a
    // path that detours and returns to the origin counts as a cycle.
    if (options.prune_redundant_paths) {
      std::set<std::string> root_peers;
      for (const auto& a : query.body()) {
        auto [peer, rel] = SplitQualifiedName(a.relation);
        if (!peer.empty() && root_peers.insert(peer).second) {
          root.peer_path.push_back(peer);
        }
      }
    }
    push_node(std::move(root));

    while (!heap.empty() && results.size() < options.max_rewritings) {
      std::pop_heap(heap.begin(), heap.end(), heap_after);
      RouteItem item = std::move(arena[heap.back().seq]);
      heap.pop_back();
      ++local.nodes_expanded;
      touch(item.query);

      if (prune_unreachable_node(item.query)) {
        ++local.pruned_unreachable;
        continue;
      }

      bool all_stored = is_all_stored(item.query);
      if (all_stored && !contained_in_results(item.query)) {
        bool redundant = false;
        if (options.prune_redundant_paths &&
            !kept_keys.insert(CanonicalKey(item.query)).second) {
          ++local.pruned_redundant;
          redundant = true;
        }
        if (!redundant) {
          results.push_back(item.query);
          if (results.size() >= options.max_rewritings) break;
        }
      }
      if (item.depth >= options.max_depth) {
        if (!all_stored) ++local.pruned_depth;
        continue;
      }

      for (size_t goal_idx = 0; goal_idx < item.query.body().size();
           ++goal_idx) {
        auto idx_it = mapping_index_.find(item.query.body()[goal_idx].relation);
        if (idx_it == mapping_index_.end()) continue;
        for (const MappingUse& use : idx_it->second) {
          const PeerMapping& m = mappings_[use.index];
          const ConjunctiveQuery& map_source =
              use.forward ? m.glav.source : m.glav.target;
          const ConjunctiveQuery& map_target =
              use.forward ? m.glav.target : m.glav.source;
          const std::string& entered =
              use.forward ? m.source_peer : m.target_peer;
          if (options.prune_redundant_paths &&
              std::find(item.peer_path.begin(), item.peer_path.end(),
                        entered) != item.peer_path.end()) {
            // Cycle elimination: this application re-enters a peer
            // already on the path.
            ++local.pruned_redundant;
            continue;
          }
          double child_cost = item.cost + route_table_->CostOf(entered);
          if (options.max_path_cost > 0.0 &&
              child_cost > options.max_path_cost) {
            ++local.pruned_cost;
            continue;
          }
          std::vector<ConjunctiveQuery> expansions;
          ApplyMappingToGoal(item.query, goal_idx, map_source, map_target,
                             fresh_id++, &expansions);
          for (auto& e : expansions) {
            std::string ckey = CanonicalKey(e);
            if (options.prune_duplicates) {
              if (!seen.insert(ckey).second) {
                ++local.pruned_duplicates;
                continue;
              }
            }
            RouteItem child;
            child.query = std::move(e);
            child.depth = item.depth + 1;
            child.cost = child_cost;
            child.peer_path = item.peer_path;
            if (options.prune_redundant_paths) {
              child.peer_path.push_back(entered);
            }
            push_node(std::move(child));
          }
        }
      }
    }
  }
  local.rewritings = results.size();
  auto built = std::make_shared<CachedPlan>();
  built->rewritings = std::move(results);
  built->stats = local;
  if (record_touched) {
    built->built_generation = generation_.load(std::memory_order_relaxed);
    built->valid_through.store(built->built_generation,
                               std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> lock(gen_mu_);
    built->touched.reserve(touched_peers.size());
    for (const auto& peer : touched_peers) {
      auto it = peer_generations_.find(peer);
      built->touched.emplace_back(
          peer, it == peer_generations_.end() ? 0 : it->second);
    }
  }
  std::shared_ptr<const CachedPlan> plan = std::move(built);
  if (use_cache) {
    // Scoped mode pins the entry generation to 0 (freshness is the
    // validator's call); Insert's stale-generation purge goes inert and
    // scope-stale entries are replaced on re-insert or LRU-evicted.
    plan_cache_->Insert(fingerprint, std::move(key), generation, plan);
    local.plan_cache_misses = 1;
  }
  // Mirror the search counters into the process-wide registry — only
  // when the search actually ran. Hits return above with a *copy* of
  // the original run's stats; re-mirroring those would double-count.
  if (metrics_enabled()) {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
    static obs::Counter* searches = metrics.GetCounter("reformulate.searches");
    static obs::Counter* nodes =
        metrics.GetCounter("reformulate.nodes_expanded");
    static obs::Counter* rewritings =
        metrics.GetCounter("reformulate.rewritings");
    static obs::Counter* pruned = metrics.GetCounter("reformulate.pruned");
    searches->Increment();
    nodes->Increment(local.nodes_expanded);
    rewritings->Increment(local.rewritings);
    pruned->Increment(local.pruned_duplicates + local.pruned_unreachable +
                      local.pruned_contained + local.pruned_depth +
                      local.pruned_cost + local.pruned_redundant);
  }
  reformulate_span.AddAttr("rewritings", local.rewritings);
  reformulate_span.AddAttr("nodes_expanded", local.nodes_expanded);
  if (stats != nullptr) *stats = local;
  return plan;
}

Result<std::vector<ConjunctiveQuery>> PdmsNetwork::Reformulate(
    const ConjunctiveQuery& query, const ReformulationOptions& options,
    ReformulationStats* stats) const {
  REVERE_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> plan,
                          ReformulateCached(query, options, stats));
  return plan->rewritings;
}

Result<std::vector<storage::Row>> PdmsNetwork::Answer(
    const ConjunctiveQuery& query, const ReformulationOptions& options,
    ExecutionStats* stats, const NetworkCostModel& cost) const {
  REVERE_ASSIGN_OR_RETURN(std::vector<ProvenancedRow> provenanced,
                          AnswerWithProvenance(query, options, stats, cost));
  std::vector<storage::Row> out;
  out.reserve(provenanced.size());
  for (auto& p : provenanced) out.push_back(std::move(p.row));
  return out;
}

Result<std::vector<PdmsNetwork::ProvenancedRow>>
PdmsNetwork::AnswerWithProvenance(const ConjunctiveQuery& query,
                                  const ReformulationOptions& options,
                                  ExecutionStats* stats,
                                  const NetworkCostModel& cost) const {
  const bool record_metrics = metrics_enabled();
  const auto start_time = record_metrics
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  obs::Span answer_span;
  if (cost.tracer != nullptr) {  // guard: don't copy the name when off
    answer_span =
        cost.tracer->StartSpan("answer", cost.parent_span, query.name());
  }
  ExecutionStats local;
  // Deadline gate #1 (ISSUE 6): a request that arrives already past its
  // deadline must not start the reformulation search. Nothing partial
  // exists yet, so this is an error under either failure policy.
  if (DeadlineExpired(cost)) {
    if (stats != nullptr) *stats = local;
    return Status::DeadlineExceeded("deadline expired before reformulation");
  }
  REVERE_ASSIGN_OR_RETURN(
      std::shared_ptr<const CachedPlan> plan,
      ReformulateCached(query, options, &local.reformulation, cost.tracer,
                        answer_span.id()));
  const std::vector<ConjunctiveQuery>& rewritings = plan->rewritings;
  local.plan_cache_hits = local.reformulation.plan_cache_hits;
  local.plan_cache_misses = local.reformulation.plan_cache_misses;

  auto [query_peer, rel] = SplitQualifiedName(
      query.body().empty() ? "" : query.body().front().relation);

  // Rewritings are independent conjunctive queries; with a pool they
  // evaluate concurrently here. Everything order-sensitive — fault
  // contacts (seeded RNG draws), cost accounting, dedup — happens in
  // the sequential merge loop below, in rewriting order, so answers
  // and stats are byte-identical to the serial path.
  query::EvalOptions eval = cost.eval;
  eval.pool = nullptr;
  // One MVCC pin scope for the entire answer: every rewriting —
  // speculative pool evaluation and the sequential merge loop alike —
  // and the ship-data row accounting below read each table at the
  // version pinned on first touch, so a query races concurrent
  // updategrams as one consistent point-in-time view end-to-end.
  storage::SnapshotSet answer_pins;
  if (eval.snapshots == nullptr) eval.snapshots = &answer_pins;
  // Per-rewriting `evaluate` span ids, kept so the merge loop below can
  // parent each rewriting's `contact` spans under the span that
  // evaluated it — parent links, not temporal nesting, carry the tree,
  // so a contact may attach to a span that already finished on a pool
  // worker.
  std::vector<uint64_t> eval_span_ids(rewritings.size(), 0);
  std::vector<std::optional<Result<std::vector<storage::Row>>>> evaluated(
      rewritings.size());
  if (cost.eval.pool != nullptr && rewritings.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(rewritings.size());
    for (size_t i = 0; i < rewritings.size(); ++i) {
      futures.push_back(cost.eval.pool->Submit([&, i] {
        // Deadline gate (work avoidance): a speculative evaluation that
        // cannot be merged anymore is skipped; the merge loop's own
        // deadline check does the authoritative accounting.
        if (DeadlineExpired(cost)) return;
        obs::Span span;
        if (cost.tracer != nullptr) {  // guard: detail string allocates
          span = cost.tracer->StartSpan("evaluate", answer_span.id(),
                                        "rw" + std::to_string(i));
          eval_span_ids[i] = span.id();
        }
        evaluated[i].emplace(query::EvaluateCQ(storage_, rewritings[i], eval));
        if (span.active() && evaluated[i]->ok()) {
          span.AddAttr("rows", evaluated[i]->value().size());
        }
      }));
    }
    for (auto& f : futures) f.wait();
  }

  std::vector<ProvenancedRow> out;
  std::unordered_map<storage::Row, size_t, storage::RowHash> row_index;
  std::set<std::string> all_peers;
  local.completeness.rewritings_total = rewritings.size();
  for (size_t rw_index = 0; rw_index < rewritings.size(); ++rw_index) {
    // Deadline gate #2: checked before every rewriting's evaluation.
    // Best-effort degrades to the partial answer accumulated so far,
    // with the loss itemized; fail-fast surfaces the deadline.
    if (DeadlineExpired(cost)) {
      size_t remaining = rewritings.size() - rw_index;
      if (cost.failure_policy == FailurePolicy::kFailFast) {
        if (stats != nullptr) *stats = local;
        return Status::DeadlineExceeded(
            "deadline expired with " + std::to_string(remaining) +
            " rewritings unevaluated");
      }
      local.completeness.rewritings_skipped += remaining;
      local.completeness.rewritings_deadline_skipped += remaining;
      break;
    }
    const ConjunctiveQuery& rw = rewritings[rw_index];
    Result<std::vector<storage::Row>> rows = [&] {
      if (evaluated[rw_index].has_value()) {
        return std::move(*evaluated[rw_index]);
      }
      obs::Span span;
      if (cost.tracer != nullptr) {  // guard: detail string allocates
        span = cost.tracer->StartSpan("evaluate", answer_span.id(),
                                      "rw" + std::to_string(rw_index));
        eval_span_ids[rw_index] = span.id();
      }
      auto result = query::EvaluateCQ(storage_, rw, eval);
      if (span.active() && result.ok()) {
        span.AddAttr("rows", result.value().size());
      }
      return result;
    }();
    if (!rows.ok()) continue;  // a rewriting over a missing table: skip
    // Peers whose data this rewriting reads (including the query peer's
    // own storage when referenced).
    std::set<std::string> rewriting_peers;
    for (const auto& a : rw.body()) {
      auto [peer, r] = SplitQualifiedName(a.relation);
      if (!peer.empty()) rewriting_peers.insert(peer);
    }
    // Simulated distribution: every remote peer named in the rewriting
    // is contacted once. What crosses the wire depends on strategy —
    // result rows (ship-query) or whole remote base tables (ship-data).
    std::set<std::string> peers;
    size_t remote_base_rows = 0;
    for (const auto& a : rw.body()) {
      auto [peer, r] = SplitQualifiedName(a.relation);
      if (!peer.empty() && peer != query_peer) {
        peers.insert(peer);
        auto table = storage_.GetTable(a.relation);
        if (table.ok()) {
          // Count rows at the same pinned version the evaluation read.
          remote_base_rows += eval.snapshots->Pin(*table.value())->size();
        }
      }
    }
    if (cost.faults == nullptr) {
      // Perfect network: every contact succeeds at one round trip.
      local.simulated_network_ms +=
          static_cast<double>(peers.size()) * cost.per_peer_round_trip_ms;
      if (cost.route_feedback != nullptr) {
        for (const auto& peer : peers) {
          cost.route_feedback->ObservedContact(
              peer, cost.per_peer_round_trip_ms, true);
        }
      }
      if (cost.tracer != nullptr) {  // guard: detail string allocates
        for (const auto& peer : peers) {
          obs::Span contact_span = cost.tracer->StartSpan(
              "contact", eval_span_ids[rw_index], peer);
          contact_span.AddAttr("ok", 1);
          contact_span.AddAttr("simulated_ms", cost.per_peer_round_trip_ms);
        }
      }
    } else {
      // Contact peers in sorted order (std::set iteration) so the RNG
      // draw sequence — and thus the whole run — is deterministic.
      bool unreachable = false;
      bool deadline_hit = false;
      for (const auto& peer : peers) {
        // Deadline gate #3: per peer contact.
        if (DeadlineExpired(cost)) {
          deadline_hit = true;
          break;
        }
        obs::Span contact_span =
            obs::StartSpan(cost.tracer, "contact", eval_span_ids[rw_index]);
        if (contact_span.active()) contact_span.SetDetail(peer);
        Status contact = ContactPeerWithRetry(cost.faults, peer, cost, &local,
                                              cost.tracer, contact_span.id());
        if (contact_span.active()) {
          contact_span.AddAttr("ok", contact.ok() ? 1 : 0);
        }
        if (contact.ok()) continue;
        local.completeness.unreachable_peers.insert(peer);
        if (cost.failure_policy == FailurePolicy::kFailFast) {
          if (record_metrics) {
            static obs::Counter* answers_failed =
                obs::MetricsRegistry::Default().GetCounter(
                    "pdms.answers_failed");
            answers_failed->Increment();
          }
          if (stats != nullptr) *stats = local;
          return contact;
        }
        unreachable = true;
        break;  // best-effort: drop this rewriting, spare the remaining
                // contacts' cost
      }
      if (deadline_hit) {
        if (cost.failure_policy == FailurePolicy::kFailFast) {
          if (stats != nullptr) *stats = local;
          return Status::DeadlineExceeded(
              "deadline expired mid-contact for a rewriting");
        }
        ++local.completeness.rewritings_skipped;
        ++local.completeness.rewritings_deadline_skipped;
        continue;  // the next iteration's gate drops the rest
      }
      if (unreachable) {
        ++local.completeness.rewritings_skipped;
        continue;
      }
    }
    ++local.rewritings_evaluated;
    all_peers.insert(peers.begin(), peers.end());
    size_t shipped = cost.strategy == ExecutionStrategy::kShipQuery
                         ? rows.value().size()
                         : remote_base_rows;
    local.simulated_network_ms +=
        static_cast<double>(shipped) * cost.per_row_ms;
    local.rows_shipped += shipped;
    for (auto& r : rows.value()) {
      auto [it, inserted] = row_index.emplace(r, out.size());
      if (inserted) {
        out.push_back(ProvenancedRow{std::move(r), rewriting_peers});
      } else {
        out[it->second].peers.insert(rewriting_peers.begin(),
                                     rewriting_peers.end());
      }
    }
  }
  local.peers_contacted = all_peers.size();
  if (answer_span.active()) {
    answer_span.AddAttr("rows", out.size());
    answer_span.AddAttr("rewritings_evaluated", local.rewritings_evaluated);
  }
  if (record_metrics) {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
    static obs::Counter* answers = metrics.GetCounter("pdms.answers");
    static obs::Counter* rewritings_evaluated =
        metrics.GetCounter("pdms.rewritings_evaluated");
    static obs::Counter* rewritings_skipped =
        metrics.GetCounter("pdms.rewritings_skipped");
    static obs::Counter* rows_shipped = metrics.GetCounter("pdms.rows_shipped");
    static obs::Counter* peers_contacted =
        metrics.GetCounter("pdms.peers_contacted");
    static obs::Counter* contacts_failed =
        metrics.GetCounter("pdms.contacts_failed");
    static obs::Counter* retries = metrics.GetCounter("pdms.retries");
    static obs::Histogram* latency =
        metrics.GetHistogram("pdms.answer_latency_us");
    answers->Increment();
    rewritings_evaluated->Increment(local.rewritings_evaluated);
    rewritings_skipped->Increment(local.completeness.rewritings_skipped);
    rows_shipped->Increment(local.rows_shipped);
    peers_contacted->Increment(local.peers_contacted);
    contacts_failed->Increment(local.completeness.contacts_failed);
    retries->Increment(local.completeness.retries_attempted);
    latency->Record(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - start_time)
            .count());
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<Result<std::vector<storage::Row>>> PdmsNetwork::AnswerBatch(
    const std::vector<query::ConjunctiveQuery>& queries,
    const ReformulationOptions& options, std::vector<ExecutionStats>* stats,
    const NetworkCostModel& cost) const {
  std::vector<Result<std::vector<storage::Row>>> out;
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    out.emplace_back(std::vector<storage::Row>{});
  }
  if (stats != nullptr) stats->assign(queries.size(), ExecutionStats{});

  obs::Span batch_span =
      obs::StartSpan(cost.tracer, "batch", cost.parent_span);
  batch_span.AddAttr("queries", queries.size());
  if (metrics_enabled()) {
    static obs::Counter* batches =
        obs::MetricsRegistry::Default().GetCounter("pdms.batches");
    batches->Increment();
  }

  ThreadPool* pool = cost.eval.pool;
  if (pool != nullptr && cost.faults == nullptr && queries.size() > 1) {
    // Fan the stream out across workers. Each query evaluates with its
    // own single-threaded cost model (a worker blocking on nested pool
    // futures could deadlock behind its own queue) and writes only its
    // slot, so the batch needs no further synchronization beyond the
    // plan cache and table-index locks, which are already thread-safe.
    NetworkCostModel per_query = cost;
    per_query.eval.pool = nullptr;
    per_query.parent_span = batch_span.id();
    // Bounded fan-out (ISSUE 6): submissions go through TrySubmit with
    // a small queue cap, and a refused task runs inline on the calling
    // thread — the caller becomes the backpressure, so a million-query
    // batch holds a bounded task queue instead of materializing every
    // closure up front.
    const size_t max_queued = 4 * pool->worker_count();
    std::vector<std::future<void>> futures;
    futures.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto task = [&, i] {
        out[i] = Answer(queries[i], options,
                        stats != nullptr ? &(*stats)[i] : nullptr, per_query);
      };
      if (auto future = pool->TrySubmit(task, max_queued)) {
        futures.push_back(std::move(*future));
      } else {
        task();
      }
    }
    for (auto& f : futures) f.wait();
    return out;
  }

  // Sequential path: required under fault injection (the injector's
  // seeded RNG draws must happen in input order for determinism), and
  // the trivial fallback otherwise. Per-query inner parallelism via
  // cost.eval.pool still applies.
  NetworkCostModel per_query = cost;
  per_query.parent_span = batch_span.id();
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = Answer(queries[i], options,
                    stats != nullptr ? &(*stats)[i] : nullptr, per_query);
  }
  return out;
}

}  // namespace revere::piazza
