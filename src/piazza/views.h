#ifndef REVERE_PIAZZA_VIEWS_H_
#define REVERE_PIAZZA_VIEWS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/catalog.h"

namespace revere::piazza {

/// An updategram (§3.1.2, [36]): a first-class description of a change
/// to one base relation — inserted and deleted tuples. "Updategrams on
/// base data can be combined to create updategrams for views."
struct Updategram {
  std::string relation;
  std::vector<storage::Row> inserts;
  std::vector<storage::Row> deletes;

  size_t size() const { return inserts.size() + deletes.size(); }
};

/// Applies an updategram to its base table in `catalog`.
Status ApplyToBase(storage::Catalog* catalog, const Updategram& update);

/// A view materialized at a peer "to replicate data for performance or
/// reliability" (§3.1). Maintains tuple multiplicities (the counting
/// algorithm) so deletions are handled exactly without recomputation.
class MaterializedView {
 public:
  /// Defines the view; call Recompute() to populate.
  MaterializedView(query::ConjunctiveQuery definition);

  const query::ConjunctiveQuery& definition() const { return definition_; }

  /// Full refresh: re-evaluates the definition over `catalog`.
  Status Recompute(const storage::Catalog& catalog);

  /// Incremental refresh: folds one base updategram into the view using
  /// delta rules (semi-naive): for each body atom over the updated
  /// relation, join the delta with the rest of the body. `catalog` must
  /// reflect the state *after* the updategram has been applied to base
  /// tables.
  Status ApplyUpdategram(const storage::Catalog& catalog,
                         const Updategram& update);

  /// Derives the view-level updategram a base updategram would cause,
  /// without applying it (used to propagate deltas onward to other
  /// peers). Same post-state convention as ApplyUpdategram.
  Result<Updategram> DeriveViewDelta(const storage::Catalog& catalog,
                                     const Updategram& update) const;

  /// Visible view contents (rows with positive multiplicity).
  std::vector<storage::Row> Contents() const;
  size_t size() const;

  /// True if the view's definition references `relation` — i.e. the
  /// updategram is relevant to it at all.
  bool DependsOn(const std::string& relation) const;

 private:
  query::ConjunctiveQuery definition_;
  std::unordered_map<storage::Row, int64_t, storage::RowHash> counts_;
};

/// The cost-based refresh decision (§3.1.2: "the query optimizer decides
/// which updategrams to use in a cost-based fashion"): estimates whether
/// folding `update` in incrementally beats recomputing from scratch.
enum class RefreshChoice { kIncremental, kRecompute };

struct RefreshCostEstimate {
  double incremental_cost = 0.0;  // ~ delta size × join work per delta row
  double recompute_cost = 0.0;    // ~ full join work
  RefreshChoice choice = RefreshChoice::kIncremental;
};

RefreshCostEstimate EstimateRefreshCost(const storage::Catalog& catalog,
                                        const query::ConjunctiveQuery& view,
                                        const Updategram& update);

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_VIEWS_H_
