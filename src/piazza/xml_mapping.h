#ifndef REVERE_PIAZZA_XML_MAPPING_H_
#define REVERE_PIAZZA_XML_MAPPING_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/xml/node.h"

namespace revere::piazza {

/// Piazza's XML mapping language (§3.1.1, Figure 4): "a 'template'
/// defined from a peer's schema; the peer's database administrator will
/// annotate portions of this template with query information defining
/// how to extract the required data".
///
/// Syntax (exactly the paper's):
///
///   <catalog>
///     <course> {$c = document("Berkeley.xml")/schedule/college/dept}
///       <name> $c/name/text() </name>
///       <subject> {$s = $c/course}
///         <title> $s/title/text() </title>
///         <enrollment> $s/size/text() </enrollment>
///       </subject>
///     </course>
///   </catalog>
///
/// Semantics: an element carrying a brace annotation {$v = expr} is
/// instantiated once per node `expr` selects, with $v bound to that node
/// in its subtree; a text occurrence `$v/path/text()` is replaced by the
/// selected text. `document("name")` roots a path in a named source
/// document; `$v/path` is relative to a bound variable.
class XmlMapping {
 public:
  /// Parses the mapping text. ParseError on malformed markup or
  /// annotations.
  static Result<XmlMapping> Parse(std::string_view mapping_text);

  /// Instantiates the template against the given source documents
  /// (name -> document root, e.g. {"Berkeley.xml", <doc>}).
  Result<std::unique_ptr<xml::XmlNode>> Translate(
      const std::map<std::string, const xml::XmlNode*>& documents) const;

  /// The parsed template (for inspection/tests).
  const xml::XmlNode& template_root() const { return *template_; }

  /// Deep copy (the class is move-only by default because of the owned
  /// template tree; chains over shared mappings need explicit copies).
  XmlMapping CloneMapping() const {
    XmlMapping copy;
    copy.template_ = template_->Clone();
    return copy;
  }

 private:
  XmlMapping() = default;
  std::unique_ptr<xml::XmlNode> template_;
};

/// Transitive mapping composition — the reuse argument of Example 3.1:
/// "It would be much easier for Trento to provide a mapping to the Rome
/// schema and leverage their previous mapping efforts." A chain holds
/// the hops (Trento→Rome, Rome→mediated, ...); Translate() feeds each
/// hop's output to the next as its named source document.
class XmlMappingChain {
 public:
  XmlMappingChain() = default;

  /// Appends a hop. `source_document_name` is the document() name the
  /// hop's template reads, to be satisfied by the previous hop's output
  /// (or by the initial input for the first hop).
  void AddHop(XmlMapping mapping, std::string source_document_name);

  size_t size() const { return hops_.size(); }

  /// Runs the chain: `input` satisfies hop 0's document name; each
  /// subsequent hop reads the previous output.
  Result<std::unique_ptr<xml::XmlNode>> Translate(
      const xml::XmlNode& input) const;

 private:
  struct Hop {
    XmlMapping mapping;
    std::string source_document_name;
  };
  std::vector<Hop> hops_;
};

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_XML_MAPPING_H_
