#include "src/piazza/views.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace revere::piazza {

namespace {

using query::Atom;
using query::ConjunctiveQuery;
using query::QTerm;
using storage::Row;
using storage::Table;
using storage::Value;

/// Enumerates every derivation (complete body binding) of `cq` over
/// `catalog`, invoking `emit` with the head row once per derivation —
/// bag semantics, which the counting maintenance algorithm needs.
Status EnumerateDerivations(const storage::Catalog& catalog,
                            const ConjunctiveQuery& cq,
                            const std::function<void(const Row&)>& emit) {
  // One pin set for the whole enumeration: every atom over a relation
  // reads the same immutable version, and a writer racing this loop can
  // neither tear a row nor shift indices mid-recursion.
  storage::SnapshotSet pins;
  std::vector<std::shared_ptr<const storage::TableVersion>> tables;
  for (const auto& atom : cq.body()) {
    REVERE_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(atom.relation));
    if (t->schema().arity() != atom.args.size()) {
      return Status::InvalidArgument("arity mismatch on " + atom.relation);
    }
    tables.push_back(pins.Pin(*t));
  }
  std::map<std::string, Value> binding;
  std::function<void(size_t)> recurse = [&](size_t i) {
    if (i == cq.body().size()) {
      Row head;
      head.reserve(cq.head().size());
      for (const auto& t : cq.head()) {
        if (t.is_var()) {
          auto it = binding.find(t.var());
          head.push_back(it == binding.end() ? Value() : it->second);
        } else {
          head.push_back(t.value());
        }
      }
      emit(head);
      return;
    }
    const Atom& atom = cq.body()[i];
    for (size_t r = 0; r < tables[i]->size(); ++r) {
      const Row& row = tables[i]->row(r);
      // Try to extend the binding with this row.
      std::vector<std::pair<std::string, Value>> added;
      bool ok = true;
      for (size_t p = 0; p < atom.args.size() && ok; ++p) {
        const QTerm& t = atom.args[p];
        if (t.is_var()) {
          auto it = binding.find(t.var());
          if (it == binding.end()) {
            binding.emplace(t.var(), row[p]);
            added.emplace_back(t.var(), row[p]);
          } else if (!(it->second == row[p])) {
            ok = false;
          }
        } else if (!(t.value() == row[p])) {
          ok = false;
        }
      }
      if (ok) recurse(i + 1);
      for (const auto& [var, v] : added) binding.erase(var);
    }
  };
  recurse(0);
  return Status::Ok();
}

/// Builds a scratch catalog exposing, for the updated relation R:
///   R#old — the pre-update state, R#ins — inserted rows, R#del —
///   deleted rows; every other relation aliases the live (post-update)
///   table contents.
Status BuildDeltaCatalog(const storage::Catalog& catalog,
                         const ConjunctiveQuery& view,
                         const Updategram& update,
                         storage::Catalog* scratch) {
  // One pin set for the whole delta catalog: the copy of each live
  // relation and the R#old reconstruction below must come from the SAME
  // immutable version — the pre-fix code read live->rows() twice with no
  // lock, so a concurrent writer could tear a row or leave the copy and
  // R#old disagreeing about the base state.
  storage::SnapshotSet pins;
  std::set<std::string> relations;
  for (const auto& a : view.body()) relations.insert(a.relation);
  for (const auto& rel : relations) {
    REVERE_ASSIGN_OR_RETURN(const Table* live, catalog.GetTable(rel));
    REVERE_ASSIGN_OR_RETURN(Table * copy,
                            scratch->CreateTable(live->schema()));
    REVERE_RETURN_IF_ERROR(copy->InsertAll(pins.Pin(*live)->CopyRows()));
  }
  REVERE_ASSIGN_OR_RETURN(const Table* live,
                          catalog.GetTable(update.relation));
  // R#old = live − inserts + deletes (bag arithmetic).
  storage::TableSchema old_schema(update.relation + "#old",
                                  live->schema().columns());
  REVERE_ASSIGN_OR_RETURN(Table * old_table,
                          scratch->CreateTable(std::move(old_schema)));
  std::vector<Row> old_rows = pins.Pin(*live)->CopyRows();
  for (const auto& ins : update.inserts) {
    auto it = std::find(old_rows.begin(), old_rows.end(), ins);
    if (it != old_rows.end()) old_rows.erase(it);
  }
  for (const auto& del : update.deletes) old_rows.push_back(del);
  REVERE_RETURN_IF_ERROR(old_table->InsertAll(old_rows));

  storage::TableSchema ins_schema(update.relation + "#ins",
                                  live->schema().columns());
  REVERE_ASSIGN_OR_RETURN(Table * ins_table,
                          scratch->CreateTable(std::move(ins_schema)));
  REVERE_RETURN_IF_ERROR(ins_table->InsertAll(update.inserts));

  storage::TableSchema del_schema(update.relation + "#del",
                                  live->schema().columns());
  REVERE_ASSIGN_OR_RETURN(Table * del_table,
                          scratch->CreateTable(std::move(del_schema)));
  REVERE_RETURN_IF_ERROR(del_table->InsertAll(update.deletes));
  return Status::Ok();
}

/// Computes the per-derivation view delta of `update` on `view`: calls
/// `emit(row, +1)` / `emit(row, -1)` once per gained / lost derivation.
Status ComputeDelta(const storage::Catalog& catalog,
                    const ConjunctiveQuery& view, const Updategram& update,
                    const std::function<void(const Row&, int)>& emit) {
  storage::Catalog scratch;
  REVERE_RETURN_IF_ERROR(BuildDeltaCatalog(catalog, view, update, &scratch));
  // Delta rule: for each occurrence p of the updated relation,
  //   Δ = old(<p) ⋈ δ(p) ⋈ new(>p)
  // summed over p; inserts contribute +, deletes −.
  for (size_t p = 0; p < view.body().size(); ++p) {
    if (view.body()[p].relation != update.relation) continue;
    for (bool is_insert : {true, false}) {
      std::vector<Atom> body = view.body();
      for (size_t i = 0; i < body.size(); ++i) {
        if (body[i].relation != update.relation) continue;
        if (i < p) {
          body[i].relation = update.relation + "#old";
        } else if (i == p) {
          body[i].relation =
              update.relation + (is_insert ? "#ins" : "#del");
        }  // i > p keeps the live (new) relation
      }
      ConjunctiveQuery delta_query(view.name(), view.head(), body);
      REVERE_RETURN_IF_ERROR(EnumerateDerivations(
          scratch, delta_query, [&](const Row& row) {
            emit(row, is_insert ? 1 : -1);
          }));
    }
  }
  return Status::Ok();
}

}  // namespace

Status ApplyToBase(storage::Catalog* catalog, const Updategram& update) {
  REVERE_ASSIGN_OR_RETURN(Table * table,
                          catalog->GetTable(update.relation));
  for (const auto& del : update.deletes) {
    REVERE_RETURN_IF_ERROR(table->Delete(del));
  }
  return table->InsertAll(update.inserts);
}

MaterializedView::MaterializedView(ConjunctiveQuery definition)
    : definition_(std::move(definition)) {}

Status MaterializedView::Recompute(const storage::Catalog& catalog) {
  counts_.clear();
  return EnumerateDerivations(catalog, definition_, [this](const Row& row) {
    ++counts_[row];
  });
}

Status MaterializedView::ApplyUpdategram(const storage::Catalog& catalog,
                                         const Updategram& update) {
  if (!DependsOn(update.relation)) return Status::Ok();
  return ComputeDelta(catalog, definition_, update,
                      [this](const Row& row, int delta) {
                        int64_t& c = counts_[row];
                        c += delta;
                        if (c <= 0) counts_.erase(row);
                      });
}

Result<Updategram> MaterializedView::DeriveViewDelta(
    const storage::Catalog& catalog, const Updategram& update) const {
  Updategram out;
  out.relation = definition_.name();
  if (!DependsOn(update.relation)) return out;
  // Track multiplicity transitions: a row enters the view when its count
  // crosses 0 -> positive and leaves on positive -> 0.
  std::unordered_map<Row, int64_t, storage::RowHash> delta_counts;
  REVERE_RETURN_IF_ERROR(
      ComputeDelta(catalog, definition_, update,
                   [&](const Row& row, int delta) {
                     delta_counts[row] += delta;
                   }));
  for (const auto& [row, delta] : delta_counts) {
    auto it = counts_.find(row);
    int64_t before = it == counts_.end() ? 0 : it->second;
    int64_t after = before + delta;
    if (before <= 0 && after > 0) out.inserts.push_back(row);
    if (before > 0 && after <= 0) out.deletes.push_back(row);
  }
  return out;
}

std::vector<Row> MaterializedView::Contents() const {
  std::vector<Row> out;
  out.reserve(counts_.size());
  for (const auto& [row, count] : counts_) {
    if (count > 0) out.push_back(row);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t MaterializedView::size() const {
  size_t n = 0;
  for (const auto& [row, count] : counts_) {
    if (count > 0) ++n;
  }
  return n;
}

bool MaterializedView::DependsOn(const std::string& relation) const {
  for (const auto& a : definition_.body()) {
    if (a.relation == relation) return true;
  }
  return false;
}

RefreshCostEstimate EstimateRefreshCost(const storage::Catalog& catalog,
                                        const ConjunctiveQuery& view,
                                        const Updategram& update) {
  RefreshCostEstimate est;
  size_t max_table = 0;
  size_t occurrences = 0;
  for (const auto& a : view.body()) {
    auto t = catalog.GetTable(a.relation);
    size_t n = t.ok() ? t.value()->size() : 0;
    max_table = std::max(max_table, n);
    if (a.relation == update.relation) ++occurrences;
  }
  double body = static_cast<double>(view.body().size());
  // Incremental: each delta row drives one join probe chain, once per
  // occurrence of the updated relation.
  est.incremental_cost = static_cast<double>(update.size()) *
                         static_cast<double>(occurrences) * body;
  // Recompute: re-join everything, driven by the largest relation.
  est.recompute_cost = static_cast<double>(max_table) * body;
  est.choice = est.incremental_cost <= est.recompute_cost
                   ? RefreshChoice::kIncremental
                   : RefreshChoice::kRecompute;
  return est;
}

}  // namespace revere::piazza
