#ifndef REVERE_PIAZZA_REFORMULATION_H_
#define REVERE_PIAZZA_REFORMULATION_H_

#include <cstddef>

namespace revere::piazza {

/// Knobs for transitive-closure query reformulation (§3.1.1). Every
/// field participates in the plan-cache key (two calls with different
/// options never share a cached plan) except `use_plan_cache` itself.
struct ReformulationOptions {
  /// Maximum mapping-application depth along any path.
  int max_depth = 12;
  /// Cap on emitted rewritings.
  size_t max_rewritings = 512;
  /// Heuristic: drop reformulations syntactically identical (up to
  /// variable renaming) to ones already seen — "prune redundant paths".
  bool prune_duplicates = true;
  /// Heuristic: drop reformulations containing a relation that cannot
  /// reach stored data through any mapping chain — "prune irrelevant
  /// paths".
  bool prune_unreachable = true;
  /// Stronger (and costlier) redundancy pruning: drop an emitted
  /// rewriting when it is *semantically contained* in one already
  /// emitted (Chandra-Merlin check per pair) — evaluating it cannot add
  /// answers. Off by default; syntactic dedup usually suffices.
  bool prune_contained = false;
  /// Consult (and fill) the network's reformulation plan cache. The
  /// cache is exact — answers are byte-identical either way — so this
  /// exists for differential tests and cold-path benchmarks.
  bool use_plan_cache = true;

  // ---- Scale-aware routing (ISSUE 9) --------------------------------

  /// Route-mode search: best-first expansion ordered by accumulated
  /// peer-path cost from the network's RouteTable, expanding candidates
  /// through a relation→mapping index instead of scanning every mapping
  /// at every node. With every budget below unlimited (max_path_cost
  /// = 0, prune_redundant_paths = false) the rewriting set is identical
  /// to the legacy breadth-first search — uniform edge costs make the
  /// priority queue pop in exact BFS order — which the eleventh fuzz
  /// oracle (`pruned_vs_exhaustive`) checks case by case.
  bool use_route_search = false;
  /// Cost budget: a search path whose accumulated RouteTable edge cost
  /// exceeds this is not expanded (counted in `pruned_cost`). 0 means
  /// unlimited. Only meaningful with use_route_search.
  double max_path_cost = 0.0;
  /// Redundant-path elimination beyond syntactic dedup: skip expansions
  /// that re-enter a peer already on the path (cycle elimination) and
  /// drop emitted rewritings whose canonical fingerprint was already
  /// kept (counted in `pruned_redundant`). Only meaningful with
  /// use_route_search.
  bool prune_redundant_paths = false;
};

/// Instrumentation from one reformulation (drives bench C3 and P2).
/// On a plan-cache hit the search counters (`nodes_expanded`,
/// `pruned_*`, `rewritings`) report the *cached run's* work — what it
/// cost to build the plan being reused — never zeros; only the
/// `plan_cache_*` flags tell the two apart.
struct ReformulationStats {
  size_t nodes_expanded = 0;
  size_t pruned_duplicates = 0;
  size_t pruned_unreachable = 0;
  size_t pruned_depth = 0;
  size_t pruned_contained = 0;
  /// Route mode (ISSUE 9): expansions dropped because their accumulated
  /// peer-path cost exceeded `max_path_cost` — the honest completeness
  /// ledger for cost-bounded search (a nonzero value means the
  /// rewriting set may be a subset of the exhaustive one). Reported as
  /// `rewritings_pruned_cost` in docs/benches.
  size_t pruned_cost = 0;
  /// Route mode: expansions/emissions dropped by redundant-path
  /// elimination (peer-path cycles, subsumed canonical fingerprints).
  /// Reported as `rewritings_pruned_redundant` in docs/benches.
  size_t pruned_redundant = 0;
  size_t rewritings = 0;
  /// 1 when this reformulation was served from the plan cache.
  size_t plan_cache_hits = 0;
  /// 1 when the cache was consulted and missed (computed + inserted).
  /// Both zero means the cache was disabled or bypassed.
  size_t plan_cache_misses = 0;
};

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_REFORMULATION_H_
