#ifndef REVERE_PIAZZA_REFORMULATION_H_
#define REVERE_PIAZZA_REFORMULATION_H_

#include <cstddef>

namespace revere::piazza {

/// Knobs for transitive-closure query reformulation (§3.1.1). Every
/// field participates in the plan-cache key (two calls with different
/// options never share a cached plan) except `use_plan_cache` itself.
struct ReformulationOptions {
  /// Maximum mapping-application depth along any path.
  int max_depth = 12;
  /// Cap on emitted rewritings.
  size_t max_rewritings = 512;
  /// Heuristic: drop reformulations syntactically identical (up to
  /// variable renaming) to ones already seen — "prune redundant paths".
  bool prune_duplicates = true;
  /// Heuristic: drop reformulations containing a relation that cannot
  /// reach stored data through any mapping chain — "prune irrelevant
  /// paths".
  bool prune_unreachable = true;
  /// Stronger (and costlier) redundancy pruning: drop an emitted
  /// rewriting when it is *semantically contained* in one already
  /// emitted (Chandra-Merlin check per pair) — evaluating it cannot add
  /// answers. Off by default; syntactic dedup usually suffices.
  bool prune_contained = false;
  /// Consult (and fill) the network's reformulation plan cache. The
  /// cache is exact — answers are byte-identical either way — so this
  /// exists for differential tests and cold-path benchmarks.
  bool use_plan_cache = true;
};

/// Instrumentation from one reformulation (drives bench C3 and P2).
/// On a plan-cache hit the search counters (`nodes_expanded`,
/// `pruned_*`, `rewritings`) report the *cached run's* work — what it
/// cost to build the plan being reused — never zeros; only the
/// `plan_cache_*` flags tell the two apart.
struct ReformulationStats {
  size_t nodes_expanded = 0;
  size_t pruned_duplicates = 0;
  size_t pruned_unreachable = 0;
  size_t pruned_depth = 0;
  size_t pruned_contained = 0;
  size_t rewritings = 0;
  /// 1 when this reformulation was served from the plan cache.
  size_t plan_cache_hits = 0;
  /// 1 when the cache was consulted and missed (computed + inserted).
  /// Both zero means the cache was disabled or bypassed.
  size_t plan_cache_misses = 0;
};

}  // namespace revere::piazza

#endif  // REVERE_PIAZZA_REFORMULATION_H_
