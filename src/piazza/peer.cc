#include "src/piazza/peer.h"

namespace revere::piazza {

std::string QualifiedName(const std::string& peer,
                          const std::string& relation) {
  return peer + ":" + relation;
}

std::pair<std::string, std::string> SplitQualifiedName(
    const std::string& name) {
  size_t colon = name.find(':');
  if (colon == std::string::npos) return {"", name};
  return {name.substr(0, colon), name.substr(colon + 1)};
}

void Peer::DeclarePeerRelation(const std::string& relation, size_t arity) {
  peer_relations_.emplace_back(relation, arity);
}

bool Peer::HasPeerRelation(const std::string& relation) const {
  for (const auto& [name, arity] : peer_relations_) {
    if (name == relation) return true;
  }
  return false;
}

void Peer::NoteStoredRelation(const std::string& relation) {
  stored_relations_.push_back(relation);
}

}  // namespace revere::piazza
