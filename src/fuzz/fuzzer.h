#ifndef REVERE_FUZZ_FUZZER_H_
#define REVERE_FUZZ_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/datagen/topology.h"
#include "src/piazza/fault.h"
#include "src/piazza/pdms.h"
#include "src/piazza/reformulation.h"
#include "src/query/cq.h"
#include "src/storage/value.h"

namespace revere::fuzz {

/// Differential fuzz harness for the whole answer pipeline (ISSUE 5).
///
/// A FuzzCase is a fully *explicit* PDMS scenario — peers, stored
/// relations, rows, GLAV mappings, conjunctive queries, a fault plan,
/// and execution knobs — generated deterministically from a seed but
/// stored as data so it can be shrunk element-by-element and written to
/// a replayable seed file. CheckCase() drives each case through every
/// engine configuration the seed semantics has grown fast paths for and
/// asserts the invariants that make those paths exact:
///
///   slots_vs_map      slot-compiled evaluation == legacy map engine
///   index_vs_scan     on-demand/pre-built indexes == pure scans
///   plan_cache        cache off == cold miss == warm hit (hit flagged)
///   workers           pool-parallel Answer/EvaluateUnion == serial
///   fault_replay      same fault seed => byte-identical run (rows,
///                     completeness accounting, simulated clock), and
///                     best-effort answers are a subset of fault-free
///   batch_vs_answer   AnswerBatch slots == standalone Answer calls
///   trace             tracing changes no answer; the span tree is
///                     well-formed (parents exist, names nest per the
///                     answer-path schema)
///   serve_vs_answer   RevereServer with an infinite deadline, no
///                     breakers, and an unlimited retry budget ==
///                     direct Answer calls, byte for byte (rows,
///                     statuses, completeness accounting) — the
///                     overload machinery costs nothing when off
///   columnar_vs_slots the columnar vectorized engine == the slot
///                     engine byte for byte (rows, statuses, stats) in
///                     every configuration — serial and pooled, fault-
///                     free and faulted — and its answer digest matches
///                     the map-engine oracle's
///   columnar_simd_vs_scalar
///                     the columnar engine's vector kernel backend ==
///                     the forced-scalar fallback (EvalOptions::
///                     use_simd=false) byte for byte, fault-free and
///                     faulted, digest-pinned to the map engine
///   pruned_vs_exhaustive
///                     the route-mode best-first search (ISSUE 9) with
///                     an unlimited budget == the legacy exhaustive BFS
///                     byte for byte (rows, statuses, stats, zero
///                     pruning counters); with a bounded max_path_cost
///                     it may only *remove* answers — every returned
///                     row is in the exhaustive answer — with sane
///                     pruning accounting, fault-free and faulted
///   snapshot_vs_quiesced
///                     MVCC (ISSUE 10): answers computed while a writer
///                     thread churns every stored relation == the same
///                     queries re-run over the SAME pinned versions
///                     after the writer quiesces, byte for byte (rows,
///                     statuses, stats, digest) — readers never observe
///                     a torn or shifting table, and under TSan the
///                     whole Snapshot/Publish protocol is race-checked
///
/// plus cross-cutting stats invariants (peers_contacted bounds,
/// completeness arithmetic, plan-cache hit/miss flags).

/// One stored relation in a case: all-string columns, bag semantics.
struct FuzzTable {
  std::string peer;
  std::string relation;  // unqualified
  size_t arity = 3;
  std::vector<storage::Row> rows;  // string values only
  std::vector<size_t> indexed_columns;  // pre-built at network build
};

/// One GLAV edge. Source/target bodies are over qualified names.
struct FuzzMapping {
  std::string source_peer;
  std::string target_peer;
  bool bidirectional = true;
  query::GlavMapping glav;
};

/// One injected peer fault.
struct FuzzFault {
  std::string peer;
  piazza::PeerFault fault;
};

/// A complete, self-contained fuzz scenario.
struct FuzzCase {
  uint64_t seed = 0;  // seeds the fault injectors; labels the case
  std::vector<FuzzTable> tables;
  std::vector<FuzzMapping> mappings;
  std::vector<query::ConjunctiveQuery> queries;
  std::vector<FuzzFault> faults;
  piazza::ReformulationOptions reform;  // use_plan_cache varied per oracle
  piazza::RetryPolicy retry;
  piazza::FailurePolicy policy = piazza::FailurePolicy::kBestEffort;
  size_t workers = 3;  // pool size for the parallel oracles
};

/// Shape knobs for GenerateCase. Defaults keep cases small enough that
/// a full CheckCase (a dozen network builds) stays in the hundreds of
/// microseconds, so CI fuzz passes clear hundreds of cases per second.
struct FuzzCaseOptions {
  size_t min_peers = 2;
  size_t max_peers = 5;
  size_t max_rows_per_peer = 8;
  size_t max_queries = 3;
  size_t max_extra_atoms = 2;  // join atoms beyond each query's first
  double constant_prob = 0.25;  // per atom argument
  double duplicate_row_prob = 0.15;  // bag-semantics pressure
  double index_prob = 0.3;  // per (table, column) pre-built index
  double fault_case_prob = 0.5;  // chance a case has any faults
  double fault_peer_prob = 0.4;  // per peer, within a faulty case
  double bidirectional_prob = 0.75;  // per mapping edge
  /// Random-topology chord probability — the one documented default,
  /// shared with datagen::PdmsGenOptions (they used to drift).
  double extra_edge_prob = datagen::kDefaultExtraEdgeProb;
  double route_case_prob = 0.3;  // chance a case runs route-mode search
};

/// Deterministically generates the case for `seed` (same seed, same
/// options => identical case, any machine). Reuses src/datagen: course
/// rows come from datagen::GenerateCourses, topology shapes and the
/// relation vocabulary from datagen::TopologyEdges/RelationNamePool.
FuzzCase GenerateCase(uint64_t seed, const FuzzCaseOptions& options = {});

/// Materializes the case's network (peers, tables, rows, pre-built
/// indexes, mappings) into `net`.
Status BuildNetwork(const FuzzCase& c, piazza::PdmsNetwork* net);

/// One violated invariant.
struct OracleFailure {
  std::string oracle;  // "slots_vs_map", "fault_replay", ...
  std::string detail;  // human-readable: query index, counts, values
};

/// Outcome of running every oracle over one case.
struct CaseReport {
  std::vector<OracleFailure> failures;
  size_t oracle_checks = 0;  // individual comparisons performed
  /// FNV-1a-64 over the baseline answers (rows and statuses, in query
  /// order) — two runs of the same case must produce equal digests,
  /// the bit-identical-replay acceptance check.
  uint64_t answer_digest = 0;
  bool ok() const { return failures.empty(); }
};

/// Runs all differential oracles + invariants over `c`.
CaseReport CheckCase(const FuzzCase& c);

/// Greedy structural shrinking: repeatedly tries removing one element —
/// a query, a query atom (with the head re-projected to surviving
/// variables), a fault, a mapping, a row, a pre-built index — keeping
/// any removal for which `still_fails` returns true, until a fixpoint
/// or `max_probes` predicate evaluations. The predicate form lets tests
/// shrink against synthetic failures; production callers pass
/// [](const FuzzCase& c) { return !CheckCase(c).ok(); }.
using FailurePredicate = std::function<bool(const FuzzCase&)>;
FuzzCase ShrinkCase(FuzzCase c, const FailurePredicate& still_fails,
                    size_t max_probes = 600);

/// Replayable seed-file format: a line-oriented text serialization that
/// round-trips every field of FuzzCase (queries and mappings through
/// the datalog parser, row values with quote/backslash escaping).
std::string SerializeCase(const FuzzCase& c);
Result<FuzzCase> ParseCase(std::string_view text);
Status SaveCase(const FuzzCase& c, const std::string& path);
Result<FuzzCase> LoadCase(const std::string& path);

/// One bounded fuzz campaign.
struct FuzzRunOptions {
  uint64_t seed = 1;       // campaign seed; case seeds derive from it
  size_t cases = 100;      // generated cases to check
  double max_seconds = 0;  // wall-clock time box; 0 = no box
  std::string failure_dir;  // where shrunken seed files land ("" = skip)
  FuzzCaseOptions gen;
};

struct FuzzRunReport {
  size_t cases_run = 0;
  size_t oracle_checks = 0;
  size_t mismatches = 0;  // cases with >= 1 failing oracle
  bool time_boxed = false;  // stopped by max_seconds, not by cases
  std::vector<std::string> failure_files;  // saved shrunken seed files
  /// First failing case, shrunk (empty tables+queries when none).
  FuzzCase first_failure;
  std::vector<OracleFailure> first_failure_details;
};

/// Generates and checks cases until the budget runs out; shrinks and
/// (when failure_dir is set) saves every mismatching case.
FuzzRunReport RunFuzz(const FuzzRunOptions& options);

}  // namespace revere::fuzz

#endif  // REVERE_FUZZ_FUZZER_H_
