// fuzz_answer: differential fuzzing of the PDMS answer pipeline.
//
//   fuzz_answer --cases 500 --seed 7 --out fuzz-failures
//       Generate and check 500 cases; shrink + save any mismatch.
//   fuzz_answer --max-seconds 30
//       Time-boxed campaign (CI mode): stop after ~30s of wall clock.
//   fuzz_answer --replay fuzz-failures/fuzz_case_123.txt
//       Re-run one saved seed file and print its oracle verdicts and
//       baseline answer digest (bit-identical across runs/machines).
//
// Exit status: 0 when every oracle held, 1 on any mismatch or usage
// error — so CI can gate on it directly.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/fuzz/fuzzer.h"

namespace {

using revere::fuzz::CaseReport;
using revere::fuzz::CheckCase;
using revere::fuzz::FuzzCase;
using revere::fuzz::FuzzRunOptions;
using revere::fuzz::FuzzRunReport;
using revere::fuzz::LoadCase;
using revere::fuzz::OracleFailure;
using revere::fuzz::RunFuzz;
using revere::fuzz::SerializeCase;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--cases N] [--max-seconds S]\n"
               "          [--out DIR] [--replay FILE] [--verbose]\n",
               argv0);
  return 1;
}

int Replay(const std::string& path, bool verbose) {
  revere::Result<FuzzCase> loaded = LoadCase(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "fuzz_answer: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const FuzzCase& c = loaded.value();
  if (verbose) std::fputs(SerializeCase(c).c_str(), stdout);
  CaseReport report = CheckCase(c);
  std::printf("replay %s: seed=%llu checks=%zu digest=%016llx\n",
              path.c_str(), static_cast<unsigned long long>(c.seed),
              report.oracle_checks,
              static_cast<unsigned long long>(report.answer_digest));
  for (const OracleFailure& f : report.failures) {
    std::printf("  FAIL [%s] %s\n", f.oracle.c_str(), f.detail.c_str());
  }
  if (report.ok()) {
    std::printf("  all oracles held\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzRunOptions options;
  options.cases = 200;
  std::string replay_path;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_answer: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--cases") == 0) {
      options.cases = std::strtoull(next("--cases"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-seconds") == 0) {
      options.max_seconds = std::strtod(next("--max-seconds"), nullptr);
      // A time box without a case cap still needs a finite loop bound.
      if (options.cases == 0) options.cases = SIZE_MAX;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      options.failure_dir = next("--out");
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = next("--replay");
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!replay_path.empty()) return Replay(replay_path, verbose);

  FuzzRunReport report = RunFuzz(options);
  std::printf(
      "fuzz_answer: %zu cases, %zu oracle checks, %zu mismatches%s\n",
      report.cases_run, report.oracle_checks, report.mismatches,
      report.time_boxed ? " (time-boxed)" : "");
  for (const std::string& f : report.failure_files) {
    std::printf("  saved failing case: %s\n", f.c_str());
  }
  if (report.mismatches > 0) {
    std::printf("first failure (shrunk, seed %llu):\n",
                static_cast<unsigned long long>(report.first_failure.seed));
    for (const OracleFailure& f : report.first_failure_details) {
      std::printf("  FAIL [%s] %s\n", f.oracle.c_str(), f.detail.c_str());
    }
    if (verbose) std::fputs(SerializeCase(report.first_failure).c_str(), stdout);
    return 1;
  }
  return 0;
}
